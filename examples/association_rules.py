"""Association rules and closed itemsets over an uncertain market-basket database.

Frequent itemsets are usually an intermediate product; this example shows the
post-processing layer built on top of the miners: expected-confidence
association rules and closed-itemset compression, both defined over the
expected support exactly as the deterministic notions are defined over the
plain support.

Run with::

    python examples/association_rules.py
"""

from __future__ import annotations

import random

import repro
from repro.core import closed_itemsets, derive_rules
from repro.db import DatabaseBuilder


def build_grocery_database(n_baskets: int = 800, seed: int = 5) -> repro.UncertainDatabase:
    """Noisy grocery baskets with a few planted purchase patterns."""
    rng = random.Random(seed)
    patterns = [
        (("bread", "butter"), 0.35),
        (("pasta", "tomato-sauce", "parmesan"), 0.25),
        (("coffee", "milk"), 0.30),
    ]
    fillers = ("apples", "bananas", "rice", "chocolate", "water", "yogurt")
    builder = DatabaseBuilder(name="groceries")
    for _ in range(n_baskets):
        units = []
        for items, rate in patterns:
            if rng.random() < rate:
                for item in items:
                    units.append((item, rng.uniform(0.75, 0.98)))
        for item in fillers:
            if rng.random() < 0.12:
                units.append((item, rng.uniform(0.4, 0.95)))
        if units:
            builder.add_transaction(units)
    return builder.build()


def main() -> None:
    database = build_grocery_database()
    vocabulary = database.vocabulary
    stats = database.stats()
    print(f"{stats.n_transactions} baskets, {stats.n_items} products, "
          f"average {stats.average_length:.1f} items per basket")

    result = repro.mine(database, algorithm="uh-mine", min_esup=0.05)
    print(f"\nFrequent itemsets at min_esup=0.05: {len(result)}")

    closed = closed_itemsets(result)
    print(f"Closed frequent itemsets: {len(closed)} "
          f"({len(result) - len(closed)} absorbed by supersets with equal expected support)")

    rules = derive_rules(result, database, min_confidence=0.7)
    print(f"\nAssociation rules with expected confidence >= 0.7: {len(rules)}")
    for rule in rules[:10]:
        antecedent = " + ".join(vocabulary.labels_of(rule.antecedent.items))
        consequent = " + ".join(vocabulary.labels_of(rule.consequent.items))
        print(f"  {antecedent:28s} -> {consequent:22s} "
              f"conf={rule.expected_confidence:.2f} lift={rule.lift:5.1f}")

    print("\nThe planted patterns (bread+butter, pasta+sauce+parmesan, coffee+milk) "
          "surface as the highest-confidence, highest-lift rules despite every "
          "individual purchase being uncertain.")


if __name__ == "__main__":
    main()
