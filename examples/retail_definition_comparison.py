"""Retail basket analysis: comparing the two frequent-itemset definitions.

The paper's central message is that the *expected-support* definition and
the *probabilistic* definition are tightly connected: once the variance of
the support is tracked next to its expectation, the Normal approximation
turns one into the other with negligible error on large databases.

This example makes that concrete on a market-basket scenario.  Purchase
records come from a loyalty-card pipeline whose entity resolution is noisy,
so every item in a basket carries a confidence value.  We mine the same
database under both definitions, across the whole range of algorithm
families, and report:

* how the result sets overlap,
* how close the approximate frequent probabilities are to the exact ones,
* how much cheaper the approximate algorithms are than the exact ones.

Run with::

    python examples/retail_definition_comparison.py
"""

from __future__ import annotations

import time

import repro
from repro.datasets import GaussianProbabilityModel, QuestGenerator
from repro.eval import compare_results


def build_purchase_database(n_baskets: int = 1500) -> repro.UncertainDatabase:
    """Simulate noisy retail baskets with correlated products."""
    generator = QuestGenerator(
        n_items=300,
        avg_transaction_length=12,
        avg_pattern_length=6,
        n_patterns=80,
        seed=21,
    )
    confidence = GaussianProbabilityModel(mean=0.85, variance=0.08, seed=22)
    return generator.generate(n_baskets, confidence, name="retail-baskets")


def main() -> None:
    database = build_purchase_database()
    stats = database.stats()
    print(f"Baskets: {stats.n_transactions}, products: {stats.n_items}, "
          f"average basket size: {stats.average_length:.1f}, "
          f"mean confidence: {stats.average_probability:.2f}")

    min_sup = 0.1
    pft = 0.9

    # Definition 2: expected-support frequent itemsets at min_esup = min_sup.
    expected = repro.mine(database, algorithm="uh-mine", min_esup=min_sup)

    # Definition 4 exactly (DCB) and approximately (NDUH-Mine, PDUApriori).
    runs = {}
    for algorithm in ("dcb", "nduh-mine", "ndu-apriori", "pdu-apriori"):
        start = time.perf_counter()
        runs[algorithm] = repro.mine(
            database, algorithm=algorithm, min_sup=min_sup, pft=pft
        )
        elapsed = time.perf_counter() - start
        print(f"  {algorithm:12s}: {len(runs[algorithm]):4d} itemsets in {elapsed:6.2f}s")

    exact = runs["dcb"]
    print(f"\nExpected-support frequent itemsets (min_esup={min_sup}): {len(expected)}")
    print(f"Probabilistic frequent itemsets (min_sup={min_sup}, pft={pft}):  {len(exact)}")
    shared = expected.itemset_keys() & exact.itemset_keys()
    print(f"Overlap between the two definitions: {len(shared)} itemsets "
          f"({100 * len(shared) / max(len(exact), 1):.0f}% of the probabilistic result)")

    print("\nApproximation quality against the exact probabilistic result:")
    for algorithm in ("nduh-mine", "ndu-apriori", "pdu-apriori"):
        report = compare_results(runs[algorithm], exact)
        error = (
            f"max |Pr error| = {report.max_probability_error:.4f}"
            if report.max_probability_error is not None
            else "(no probabilities reported)"
        )
        print(f"  {algorithm:12s}: precision={report.precision:.3f} "
              f"recall={report.recall:.3f}  {error}")

    speedup = (
        exact.statistics.elapsed_seconds
        / max(runs["nduh-mine"].statistics.elapsed_seconds, 1e-9)
    )
    print(f"\nNDUH-Mine answered the probabilistic question "
          f"{speedup:.1f}x faster than the exact DCB miner — the paper's point "
          f"that expected-support machinery (plus variance) is all you need on "
          f"large databases.")


if __name__ == "__main__":
    main()
