"""Sensor-network monitoring: mining co-occurring events from noisy readings.

The paper motivates uncertain frequent itemset mining with wireless sensor
networks: readings are inherently noisy, so each detected event only
*probably* happened.  This example simulates a small building-monitoring
deployment, turns the noisy readings into an uncertain database, and asks
which groups of events tend to fire together — under both frequent-itemset
definitions.

Scenario
--------
Ten rooms each host sensors for ``motion``, ``temperature-spike``, ``co2-high``
and ``door-open``.  Hidden "occupancy episodes" cause correlated events
(motion + co2 + door), while sensor noise adds spurious low-confidence
detections.  The detection confidence reported by a sensor becomes the
existence probability of the event in that epoch's transaction.

Run with::

    python examples/sensor_network_monitoring.py
"""

from __future__ import annotations

import random

import repro
from repro.db import DatabaseBuilder
from repro.eval import compare_results


EVENT_TYPES = ("motion", "temp-spike", "co2-high", "door-open")
N_ROOMS = 4
N_EPOCHS = 400


def simulate_readings(seed: int = 7) -> repro.UncertainDatabase:
    """Simulate one uncertain transaction per monitoring epoch.

    Each unit is an event labelled ``room<k>:<event>`` whose probability is
    the (simulated) detection confidence of the sensor.
    """
    rng = random.Random(seed)
    builder = DatabaseBuilder(name="sensor-epochs")
    for _ in range(N_EPOCHS):
        units = []
        for room in range(N_ROOMS):
            occupied = rng.random() < 0.45
            if occupied:
                # Occupancy reliably triggers motion and CO2, often the door.
                units.append((f"room{room}:motion", rng.uniform(0.85, 0.99)))
                units.append((f"room{room}:co2-high", rng.uniform(0.7, 0.95)))
                if rng.random() < 0.8:
                    units.append((f"room{room}:door-open", rng.uniform(0.6, 0.95)))
                if rng.random() < 0.25:
                    units.append((f"room{room}:temp-spike", rng.uniform(0.5, 0.9)))
            else:
                # Noise: spurious low-confidence detections.
                for event in EVENT_TYPES:
                    if rng.random() < 0.05:
                        units.append((f"room{room}:{event}", rng.uniform(0.05, 0.4)))
        if units:
            builder.add_transaction(units)
    return builder.build()


def main() -> None:
    database = simulate_readings()
    stats = database.stats()
    print(f"Simulated {stats.n_transactions} epochs, {stats.n_items} event types, "
          f"average {stats.average_length:.1f} detections per epoch "
          f"(mean confidence {stats.average_probability:.2f})")

    vocabulary = database.vocabulary

    # Expected-support view: which event combinations are frequent on average?
    expected = repro.mine(database, algorithm="uh-mine", min_esup=0.25)
    print(f"\nExpected-support frequent event sets (min_esup=0.25): {len(expected)}")
    for record in expected.itemsets:
        if len(record.itemset) >= 2:
            labels = " + ".join(vocabulary.labels_of(record.itemset.items))
            print(f"  {labels:45s} esup={record.expected_support:7.1f}")

    # Probabilistic view: which combinations are frequent with 95% confidence?
    probabilistic = repro.mine(database, algorithm="nduh-mine", min_sup=0.25, pft=0.95)
    print(f"\nProbabilistic frequent event sets (min_sup=0.25, pft=0.95): "
          f"{len(probabilistic)}")
    for record in probabilistic.itemsets:
        if len(record.itemset) >= 2:
            labels = " + ".join(vocabulary.labels_of(record.itemset.items))
            print(f"  {labels:45s} Pr={record.frequent_probability:.3f}")

    # How close is the fast Normal approximation to the exact answer here?
    exact = repro.mine(database, algorithm="dcb", min_sup=0.25, pft=0.95)
    report = compare_results(probabilistic, exact)
    print(f"\nNDUH-Mine vs exact DCB: precision={report.precision:.3f} "
          f"recall={report.recall:.3f} "
          f"(exact run took {exact.statistics.elapsed_seconds:.2f}s vs "
          f"{probabilistic.statistics.elapsed_seconds:.2f}s approximate)")


if __name__ == "__main__":
    main()
