"""Quickstart: mine an uncertain database under both frequent-itemset definitions.

This example rebuilds the paper's running example (Table 1), prints its
expected supports, mines it under the expected-support definition with all
three expected-support algorithms, and then under the probabilistic
definition with an exact and an approximate miner — showing that all of them
agree on this small database.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.core import SupportDistribution


def show_result(title: str, result: repro.MiningResult, vocabulary) -> None:
    print(f"\n{title}  ({len(result)} itemsets, "
          f"{result.statistics.elapsed_seconds * 1000:.1f} ms)")
    for record in result:
        labels = ",".join(vocabulary.labels_of(record.itemset.items))
        line = f"  {{{labels}}}  expected support = {record.expected_support:.2f}"
        if record.frequent_probability is not None:
            line += f"  frequent probability = {record.frequent_probability:.3f}"
        print(line)


def main() -> None:
    database = repro.paper_example_database()
    vocabulary = database.vocabulary

    print("The uncertain database of Table 1:")
    for transaction in database:
        units = ", ".join(
            f"{vocabulary.label_of(item)}({probability:.1f})"
            for item, probability in transaction
        )
        print(f"  T{transaction.tid + 1}: {units}")

    print("\nPer-item expected supports:")
    for item in database.items():
        print(f"  {vocabulary.label_of(item)}: {database.expected_support((item,)):.2f}")

    # --- Definition 2: expected-support-based frequent itemsets -----------------
    for algorithm in ("uapriori", "uh-mine", "ufp-growth"):
        result = repro.mine(database, algorithm=algorithm, min_esup=0.5)
        show_result(f"[{algorithm}] expected-support frequent itemsets (min_esup=0.5)",
                    result, vocabulary)

    # --- Definition 4: probabilistic frequent itemsets --------------------------
    exact = repro.mine(database, algorithm="dcb", min_sup=0.5, pft=0.7)
    show_result("[dcb] probabilistic frequent itemsets (min_sup=0.5, pft=0.7)",
                exact, vocabulary)

    approximate = repro.mine(database, algorithm="nduh-mine", min_sup=0.5, pft=0.7)
    show_result("[nduh-mine] Normal-approximation probabilistic frequent itemsets",
                approximate, vocabulary)

    # --- The support distribution behind one itemset ----------------------------
    a = vocabulary.id_of("A")
    distribution = SupportDistribution(database.itemset_probabilities((a,)))
    print("\nSupport distribution of {A} (cf. Table 2 of the paper):")
    for support, probability in distribution.pmf_as_dict().items():
        print(f"  Pr[sup(A) = {support}] = {probability:.3f}")
    print(f"  Pr[sup(A) >= 2] = {distribution.frequent_probability(2):.3f}")


if __name__ == "__main__":
    main()
