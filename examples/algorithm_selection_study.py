"""Algorithm selection study: who wins where (a miniature Table 10).

The paper's practical takeaway is a decision matrix: on dense data with high
thresholds the Apriori-based miners win, on sparse data or low thresholds
the UH-Mine family wins, UFP-growth almost never wins, and the approximate
probabilistic miners dominate the exact ones.  This example reruns that
comparison on scaled-down analogues of the paper's benchmarks and prints the
resulting winner matrix, so users can reproduce the guidance on their own
hardware before picking an algorithm for their data.

Run with::

    python examples/algorithm_selection_study.py            # quick (default scale)
    REPRO_SCALE=0.01 python examples/algorithm_selection_study.py   # closer to the paper
"""

from __future__ import annotations

import os

from repro.eval import (
    figure4_time_and_memory,
    figure5_min_sup,
    figure6_min_sup,
    run_experiment,
    summary_matrix,
)
from repro.eval.reporting import format_summary_matrix, format_sweep_table

SCALE = float(os.environ.get("REPRO_SCALE", "0.002"))


def main() -> None:
    print(f"Running the Figure 4/5/6 comparison at scale={SCALE} "
          f"(fraction of the published dataset sizes)\n")

    all_points = []
    specs = (
        figure4_time_and_memory(SCALE)
        + figure5_min_sup(SCALE)
        + figure6_min_sup(SCALE)
    )
    for spec in specs:
        points = run_experiment(spec, max_points=2)
        all_points.extend(points)
        print(f"== {spec.experiment_id}: {spec.title} ==")
        print(format_sweep_table(points))
        print()

    winners = summary_matrix(all_points)
    print("Fastest algorithm per experiment (miniature Table 10):")
    print(format_summary_matrix(winners))

    expected_family = {"uapriori", "uh-mine", "ufp-growth"}
    dense_winners = {winners.get("fig4a"), winners.get("fig4b")}
    sparse_winners = {winners.get("fig4c"), winners.get("fig4d")}
    print("\nReading the matrix:")
    print(f"  dense datasets  (connect/accident): {sorted(w for w in dense_winners if w)}")
    print(f"  sparse datasets (kosarak/gazelle):  {sorted(w for w in sparse_winners if w)}")
    if dense_winners | sparse_winners <= expected_family:
        print("  -> expected-support experiments are won by expected-support miners, "
              "with UH-Mine strongest on sparse data, as the paper reports.")


if __name__ == "__main__":
    main()
