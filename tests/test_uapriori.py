"""Tests for the UApriori miner."""

import pytest

from repro.algorithms import ExhaustiveExpectedSupportMiner, UApriori

from helpers import make_random_database


class TestPaperExample:
    def test_frequent_items_at_half_support(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=0.5)
        labels = {
            tuple(paper_db.vocabulary.labels_of(record.itemset.items)) for record in result
        }
        assert labels == {("A",), ("C",)}
        assert result[(paper_db.vocabulary.id_of("A"),)].expected_support == pytest.approx(2.1)

    def test_lower_threshold_reveals_pairs(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=0.25)
        a, c = paper_db.vocabulary.id_of("A"), paper_db.vocabulary.id_of("C")
        assert result[(a, c)].expected_support == pytest.approx(1.84)
        assert result.max_size() == 2

    def test_absolute_threshold_equivalent_to_ratio(self, paper_db):
        by_ratio = UApriori().mine(paper_db, min_esup=0.5)
        by_count = UApriori().mine(paper_db, min_esup=2.0)
        assert by_ratio.itemset_keys() == by_count.itemset_keys()


class TestCorrectness:
    @pytest.mark.parametrize("min_esup", [0.1, 0.2, 0.35])
    def test_matches_exhaustive_reference(self, seeded_random_db, min_esup):
        fast = UApriori().mine(seeded_random_db, min_esup=min_esup)
        slow = ExhaustiveExpectedSupportMiner(max_size=8).mine(seeded_random_db, min_esup=min_esup)
        assert fast.itemset_keys() == slow.itemset_keys()
        for record in fast:
            assert record.expected_support == pytest.approx(
                slow[record.itemset].expected_support
            )

    def test_decremental_pruning_does_not_change_results(self, random_db):
        # Pinned to the row backend: decremental pruning only exists in the
        # per-transaction scan, which the columnar backend replaces.
        with_pruning = UApriori(use_decremental_pruning=True, backend="rows").mine(
            random_db, min_esup=0.15
        )
        without_pruning = UApriori(use_decremental_pruning=False, backend="rows").mine(
            random_db, min_esup=0.15
        )
        assert with_pruning.itemset_keys() == without_pruning.itemset_keys()

    def test_reported_supports_match_database(self, random_db):
        result = UApriori().mine(random_db, min_esup=0.2)
        for record in result:
            assert record.expected_support == pytest.approx(
                random_db.expected_support(record.itemset)
            )

    def test_downward_closure_of_output(self, random_db):
        result = UApriori().mine(random_db, min_esup=0.15)
        keys = result.itemset_keys()
        for record in result:
            if len(record.itemset) > 1:
                for subset in record.itemset.subsets_of_size(len(record.itemset) - 1):
                    assert subset in keys

    def test_variance_tracking(self, paper_db):
        result = UApriori(track_variance=True).mine(paper_db, min_esup=0.5)
        a = paper_db.vocabulary.id_of("A")
        assert result[(a,)].variance == pytest.approx(paper_db.support_variance((a,)))

    def test_variance_not_tracked_by_default(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=0.5)
        assert all(record.variance is None for record in result)


class TestEdgeCases:
    def test_threshold_above_everything_yields_empty_result(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=0.99)
        assert len(result) == 0

    def test_tiny_threshold_yields_all_combinations(self):
        database = make_random_database(n_transactions=6, n_items=4, density=0.9, seed=5)
        result = UApriori().mine(database, min_esup=0.001)
        reference = ExhaustiveExpectedSupportMiner(max_size=4).mine(database, min_esup=0.001)
        assert result.itemset_keys() == reference.itemset_keys()

    def test_statistics_populated(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=0.25)
        statistics = result.statistics
        assert statistics.algorithm == "uapriori"
        assert statistics.elapsed_seconds >= 0.0
        assert statistics.candidates_generated > 0
        assert statistics.database_scans >= 2

    def test_memory_tracking_enabled(self, paper_db):
        result = UApriori(track_memory=True).mine(paper_db, min_esup=0.5)
        assert result.statistics.peak_memory_bytes > 0

    def test_empty_database(self):
        from repro.db import UncertainDatabase

        result = UApriori().mine(UncertainDatabase([]), min_esup=5)
        assert len(result) == 0
