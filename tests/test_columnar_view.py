"""Unit tests for the columnar probability store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import UncertainDatabase
from repro.db.database import resolve_backend

from helpers import make_random_database


class TestConstruction:
    def test_lazy_and_cached_on_database(self, paper_db):
        assert paper_db._columnar is None
        view = paper_db.columnar()
        assert paper_db.columnar() is view

    def test_shape(self, paper_db):
        view = paper_db.columnar()
        assert view.n_transactions == len(paper_db)
        assert len(view) == len(paper_db)
        assert view.items() == paper_db.items()
        assert view.nnz() == sum(len(t) for t in paper_db)

    def test_empty_database(self):
        view = UncertainDatabase([]).columnar()
        assert view.n_transactions == 0
        assert view.items() == []
        assert view.itemset_probabilities((1, 2)).shape == (0,)

    def test_missing_item_yields_empty_column(self, tiny_db):
        rows, probs = tiny_db.columnar().column(99)
        assert len(rows) == 0 and len(probs) == 0
        assert tiny_db.columnar().expected_support((99,)) == 0.0


class TestColumns:
    def test_columns_are_sorted_by_row(self):
        database = make_random_database(n_transactions=40, n_items=6, seed=3)
        view = database.columnar()
        for item in view.items():
            rows, probs = view.column(item)
            assert np.all(np.diff(rows) > 0)
            assert len(rows) == len(probs)

    def test_column_matches_transactions(self, tiny_db):
        view = tiny_db.columnar()
        rows, probs = view.column(0)
        assert rows.tolist() == [0, 1]
        assert probs.tolist() == [0.5, 1.0]

    def test_item_statistics_match_row_scan(self):
        database = make_random_database(n_transactions=30, n_items=8, seed=4)
        from repro.algorithms.common import item_statistics

        columnar = database.columnar().item_statistics()
        rows = item_statistics(database, backend="rows")
        assert set(columnar) == set(rows)
        for item in rows:
            assert columnar[item][0] == pytest.approx(rows[item][0], abs=1e-12)
            assert columnar[item][1] == pytest.approx(rows[item][1], abs=1e-12)


class TestItemsetAlgebra:
    def test_empty_itemset_is_certain(self, tiny_db):
        rows, probs = tiny_db.columnar().itemset_column(())
        assert rows.tolist() == [0, 1, 2]
        assert probs.tolist() == [1.0, 1.0, 1.0]

    def test_pair_intersection(self, tiny_db):
        # Item 0 occurs in rows 0,1; item 2 in rows 1,2 -> intersection row 1.
        rows, probs = tiny_db.columnar().itemset_column((0, 2))
        assert rows.tolist() == [1]
        assert probs[0] == pytest.approx(1.0 * 0.4)

    def test_disjoint_items_short_circuit(self, tiny_db):
        rows, probs = tiny_db.columnar().itemset_column((0, 99))
        assert len(rows) == 0
        # The third member is never intersected once the result is empty.
        rows, probs = tiny_db.columnar().itemset_column((0, 99, 1))
        assert len(rows) == 0

    def test_dense_vector_matches_row_backend(self):
        database = make_random_database(n_transactions=50, n_items=7, seed=5)
        view = database.columnar()
        for itemset in [(0,), (1, 3), (0, 2, 4)]:
            assert np.array_equal(
                view.itemset_probabilities(itemset),
                database.itemset_probabilities(itemset, backend="rows"),
            )


class TestBatch:
    def test_batch_vectors_match_individual(self):
        database = make_random_database(n_transactions=40, n_items=6, seed=6)
        view = database.columnar()
        candidates = [(0, 1), (0, 2), (1, 2), (0, 1, 2)]
        batch = view.batch_vectors(candidates)
        for vector, candidate in zip(batch, candidates):
            assert np.array_equal(vector, view.itemset_column(candidate)[1])

    def test_batch_probabilities_matrix(self):
        database = make_random_database(n_transactions=30, n_items=5, seed=7)
        view = database.columnar()
        candidates = [(0,), (1, 2), (0, 3)]
        matrix = view.batch_probabilities(candidates)
        assert matrix.shape == (3, 30)
        for row, candidate in zip(matrix, candidates):
            assert np.array_equal(row, view.itemset_probabilities(candidate))


class TestBackendResolution:
    def test_default_is_columnar(self):
        assert UncertainDatabase.default_backend == "columnar"
        assert resolve_backend(None) == "columnar"

    def test_explicit_backends(self):
        assert resolve_backend("rows") == "rows"
        assert resolve_backend("columnar") == "columnar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("gpu")
