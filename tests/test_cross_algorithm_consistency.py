"""Property-based cross-algorithm consistency checks.

The whole point of the paper is a *uniform* comparison: every algorithm of a
family must return exactly the same itemsets for the same thresholds.  These
tests generate random uncertain databases with hypothesis and assert that

* the three expected-support miners agree with each other,
* the four exact probabilistic configurations agree with each other,
* the probabilistic result set is always a subset of the expected-support
  result when ``min_esup = min_sup * pft`` (Markov's inequality),
* expected supports reported by different miners are numerically identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DCMiner, DPMiner, UApriori, UFPGrowth, UHMine
from repro.db import UncertainDatabase


@st.composite
def uncertain_databases(draw, max_transactions=14, max_items=6):
    n_transactions = draw(st.integers(min_value=1, max_value=max_transactions))
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    records = []
    for _ in range(n_transactions):
        units = draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=n_items - 1),
                st.floats(min_value=0.05, max_value=1.0),
                max_size=n_items,
            )
        )
        records.append(units)
    return UncertainDatabase.from_records(records)


@given(uncertain_databases(), st.sampled_from([0.15, 0.3, 0.5]))
@settings(max_examples=40, deadline=None)
def test_expected_support_miners_agree(database, min_esup):
    apriori = UApriori().mine(database, min_esup=min_esup)
    uh = UHMine().mine(database, min_esup=min_esup)
    ufp = UFPGrowth().mine(database, min_esup=min_esup)
    assert apriori.itemset_keys() == uh.itemset_keys()
    assert apriori.itemset_keys() == ufp.itemset_keys()


@given(uncertain_databases(), st.sampled_from([0.15, 0.3, 0.5]))
@settings(max_examples=40, deadline=None)
def test_expected_supports_numerically_identical(database, min_esup):
    apriori = UApriori().mine(database, min_esup=min_esup)
    uh = UHMine().mine(database, min_esup=min_esup)
    for record in apriori:
        assert record.expected_support == pytest.approx(
            uh[record.itemset].expected_support, abs=1e-9
        )


@given(uncertain_databases(), st.sampled_from([(0.3, 0.9), (0.5, 0.6), (0.2, 0.4)]))
@settings(max_examples=30, deadline=None)
def test_exact_probabilistic_miners_agree(database, thresholds):
    min_sup, pft = thresholds
    results = [
        DPMiner(use_pruning=False).mine(database, min_sup=min_sup, pft=pft),
        DPMiner(use_pruning=True).mine(database, min_sup=min_sup, pft=pft),
        DCMiner(use_pruning=False).mine(database, min_sup=min_sup, pft=pft),
        DCMiner(use_pruning=True).mine(database, min_sup=min_sup, pft=pft),
    ]
    reference = results[0].itemset_keys()
    for result in results[1:]:
        assert result.itemset_keys() == reference


@given(uncertain_databases(), st.sampled_from([(0.3, 0.9), (0.4, 0.7)]))
@settings(max_examples=30, deadline=None)
def test_probabilistic_results_bounded_by_markov(database, thresholds):
    """Pr[sup >= k] > pft implies esup > k * pft (Markov's inequality), so
    every probabilistic frequent itemset has expected support above k * pft."""
    min_sup, pft = thresholds
    probabilistic = DCMiner().mine(database, min_sup=min_sup, pft=pft)
    import math

    min_count = math.ceil(len(database) * min_sup - 1e-12)
    for record in probabilistic:
        assert database.expected_support(record.itemset) > min_count * pft - 1e-9


@given(uncertain_databases())
@settings(max_examples=30, deadline=None)
def test_results_shrink_as_threshold_grows(database):
    low = UApriori().mine(database, min_esup=0.2)
    high = UApriori().mine(database, min_esup=0.5)
    assert high.itemset_keys() <= low.itemset_keys()


@given(uncertain_databases())
@settings(max_examples=30, deadline=None)
def test_probabilistic_results_shrink_as_pft_grows(database):
    low = DCMiner().mine(database, min_sup=0.3, pft=0.3)
    high = DCMiner().mine(database, min_sup=0.3, pft=0.9)
    assert high.itemset_keys() <= low.itemset_keys()
