"""Tests for the repro-mine command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.db import paper_example_database, write_uncertain


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_mine_command_defaults(self):
        args = build_parser().parse_args(["mine"])
        assert args.algorithm == "uapriori"
        assert args.dataset == "accident"
        assert args.pft == 0.9

    def test_experiment_command_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])


class TestCommands:
    def test_list_prints_algorithms_and_datasets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "uapriori" in output
        assert "kosarak" in output

    def test_mine_benchmark_dataset(self, capsys):
        code = main(["mine", "-a", "uh-mine", "-d", "gazelle", "--scale", "0.001", "--min-esup", "0.05"])
        assert code == 0
        output = capsys.readouterr().out
        assert "frequent itemsets" in output

    def test_mine_probabilistic_algorithm(self, capsys):
        code = main(
            ["mine", "-a", "nduh-mine", "-d", "gazelle", "--scale", "0.001", "--min-sup", "0.05"]
        )
        assert code == 0
        assert "frequent itemsets" in capsys.readouterr().out

    def test_mine_from_file(self, tmp_path, capsys):
        path = tmp_path / "paper.txt"
        write_uncertain(paper_example_database(), path)
        code = main(["mine", "-d", str(path), "--min-esup", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 frequent itemsets" in output

    def test_experiment_table9_quick(self, capsys):
        code = main(["experiment", "table9", "--scale", "0.001", "--max-points", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "table9" in output
        assert "P=" in output

    def test_experiment_fig4_quick(self, capsys):
        code = main(["experiment", "fig4", "--scale", "0.001", "--max-points", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fig4a" in output
        assert "uapriori" in output


class TestStoreCommands:
    def test_store_build_then_mine_store(self, tmp_path, capsys):
        source = tmp_path / "paper.txt"
        write_uncertain(paper_example_database(), source)
        store_dir = tmp_path / "paper-store"

        code = main(["store-build", "-d", str(source), "-o", str(store_dir)])
        assert code == 0
        built = capsys.readouterr().out
        assert str(store_dir) in built
        assert (store_dir / "manifest.json").exists()

        reference = main(["mine", "-d", str(source), "--min-esup", "0.5"])
        reference_out = capsys.readouterr().out
        assert reference == 0

        code = main(["mine", "--store", str(store_dir), "--min-esup", "0.5"])
        assert code == 0
        assert "2 frequent itemsets" in capsys.readouterr().out
        assert "2 frequent itemsets" in reference_out

    def test_mine_store_from_environment(self, tmp_path, capsys, monkeypatch):
        source = tmp_path / "paper.txt"
        write_uncertain(paper_example_database(), source)
        store_dir = tmp_path / "env-store"
        assert main(["store-build", "-d", str(source), "-o", str(store_dir)]) == 0
        capsys.readouterr()

        monkeypatch.setenv("REPRO_STORE", str(store_dir))
        code = main(["mine", "--store", "--min-esup", "0.5"])
        assert code == 0
        assert "2 frequent itemsets" in capsys.readouterr().out

    def test_mine_fanout_flag_parses(self, tmp_path, capsys):
        source = tmp_path / "paper.txt"
        write_uncertain(paper_example_database(), source)
        code = main(
            [
                "mine",
                "-d",
                str(source),
                "--min-esup",
                "0.5",
                "--workers",
                "2",
                "--shards",
                "2",
                "--fanout",
                "shm",
            ]
        )
        assert code == 0
        assert "2 frequent itemsets" in capsys.readouterr().out
