"""Shared test helpers, imported explicitly by test modules.

This module exists (instead of putting helpers in ``conftest.py``) because
``conftest`` is an ambiguous import target: both ``tests/`` and
``benchmarks/`` carry a conftest, and whichever directory lands first on
``sys.path`` wins, shadowing the other.  ``tests/helpers.py`` has a name of
its own, so ``from helpers import make_random_database`` always resolves
here.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.db import UncertainDatabase

__all__ = ["make_random_database"]


def make_random_database(
    n_transactions: int = 30,
    n_items: int = 8,
    density: float = 0.4,
    seed: int = 0,
    name: str = "random",
) -> UncertainDatabase:
    """Build a reproducible random uncertain database for consistency tests."""
    rng = random.Random(seed)
    records: List[Dict[int, float]] = []
    for _ in range(n_transactions):
        units: Dict[int, float] = {}
        for item in range(n_items):
            if rng.random() < density:
                units[item] = round(rng.uniform(0.05, 1.0), 3)
        records.append(units)
    return UncertainDatabase.from_records(records, name=name)
