"""Unit tests for the batched SupportEngine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.support import (
    SupportDistribution,
    SupportEngine,
    chernoff_upper_bound,
    frequent_probabilities_dp_batch,
    frequent_probability_dynamic_programming,
    normal_tail_probability,
    pack_probability_matrix,
    poisson_tail_probability,
)


@pytest.fixture
def vectors():
    rng = np.random.default_rng(42)
    return [rng.random(rng.integers(1, 30)) for _ in range(12)]


class TestPacking:
    def test_zero_padding(self):
        matrix = pack_probability_matrix([[0.5], [0.2, 0.8, 0.1]])
        assert matrix.shape == (2, 3)
        assert matrix[0].tolist() == [0.5, 0.0, 0.0]
        assert matrix[1].tolist() == [0.2, 0.8, 0.1]

    def test_empty_input(self):
        assert pack_probability_matrix([]).shape == (0, 0)


class TestBatchDP:
    @pytest.mark.parametrize("min_count", [1, 2, 5, 10])
    def test_bitwise_identical_to_scalar_dp(self, vectors, min_count):
        batch = frequent_probabilities_dp_batch(
            pack_probability_matrix(vectors), min_count
        )
        scalar = np.array(
            [
                frequent_probability_dynamic_programming(vector, min_count)
                for vector in vectors
            ]
        )
        # Padding zeros are identity steps of the recurrence, so the batch
        # result must agree bitwise, not merely approximately.
        assert np.array_equal(batch, scalar)

    def test_min_count_zero_is_certain(self, vectors):
        matrix = pack_probability_matrix(vectors)
        assert np.array_equal(
            frequent_probabilities_dp_batch(matrix, 0), np.ones(len(vectors))
        )

    def test_min_count_beyond_width_is_impossible(self, vectors):
        matrix = pack_probability_matrix(vectors)
        assert np.array_equal(
            frequent_probabilities_dp_batch(matrix, matrix.shape[1] + 1),
            np.zeros(len(vectors)),
        )


class TestEngineMoments:
    def test_matches_support_distribution(self, vectors):
        engine = SupportEngine(vectors)
        for index, vector in enumerate(vectors):
            distribution = SupportDistribution(vector)
            assert engine.expected_supports()[index] == pytest.approx(
                distribution.expected_support
            )
            assert engine.variances()[index] == pytest.approx(distribution.variance)

    def test_nonzero_counts(self):
        engine = SupportEngine([[0.5, 0.0, 0.3], [0.0], [1.0, 1.0]])
        assert engine.nonzero_counts().tolist() == [2, 0, 2]


class TestEngineTails:
    @pytest.mark.parametrize("method", ["dynamic_programming", "divide_conquer"])
    @pytest.mark.parametrize("min_count", [1, 3, 8])
    def test_matches_support_distribution(self, vectors, method, min_count):
        engine = SupportEngine(vectors)
        results = engine.frequent_probabilities(min_count, method=method)
        for index, vector in enumerate(vectors):
            expected = SupportDistribution(vector).frequent_probability(
                min_count, method=method
            )
            assert results[index] == pytest.approx(expected, abs=1e-9)

    def test_unknown_method_rejected(self, vectors):
        with pytest.raises(ValueError, match="unknown method"):
            SupportEngine(vectors).frequent_probabilities(2, method="magic")

    @pytest.mark.parametrize("block_bytes", ["240", "480", "960"])
    def test_blocked_dp_is_bitwise(self, vectors, monkeypatch, block_bytes):
        # Zero-padded columns are Bernoulli(0) identity steps, so chunking
        # the candidate list with per-block padded widths must reproduce
        # the single whole-matrix batch bit for bit.
        reference = SupportEngine(vectors).frequent_probabilities(3)
        monkeypatch.setenv("REPRO_DP_BLOCK_BYTES", block_bytes)
        blocked = SupportEngine(vectors).frequent_probabilities(3)
        assert np.array_equal(blocked, reference)

    def test_blocked_dp_handles_single_vector_blocks(self, vectors, monkeypatch):
        reference = SupportEngine(vectors).frequent_probabilities(3)
        monkeypatch.setenv("REPRO_DP_BLOCK_BYTES", "1")
        blocked = SupportEngine(vectors).frequent_probabilities(3)
        assert np.array_equal(blocked, reference)


class TestEngineApproximations:
    def test_normal_matches_scalar(self, vectors):
        engine = SupportEngine(vectors)
        results = engine.normal_frequent_probabilities(4)
        for index, vector in enumerate(vectors):
            distribution = SupportDistribution(vector)
            assert results[index] == normal_tail_probability(
                distribution.expected_support, distribution.variance, 4
            )

    def test_poisson_matches_scalar(self, vectors):
        engine = SupportEngine(vectors)
        results = engine.poisson_frequent_probabilities(4)
        for index, vector in enumerate(vectors):
            assert results[index] == poisson_tail_probability(
                SupportDistribution(vector).expected_support, 4
            )

    def test_chernoff_matches_scalar(self, vectors):
        engine = SupportEngine(vectors)
        results = engine.chernoff_bounds(6)
        for index, vector in enumerate(vectors):
            assert results[index] == chernoff_upper_bound(
                SupportDistribution(vector).expected_support, 6
            )
