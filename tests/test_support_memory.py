"""Peak-allocation behaviour of the batched DP path.

The engine's batched evaluations are fed zeros-omitted vectors: the padded
matrix a DP sweep consumes must therefore be ``(candidates, max_nnz)`` —
never the dense ``(candidates, N)`` float64 matrix — and it must be
*transient*: built for the sweep, released afterwards, not pinned on the
engine for the rest of the mining run.  These are the regression pins for
both properties (plus the bitwise equality of padded and per-vector DP that
makes the compressed feed legitimate in the first place).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.support import (
    SupportEngine,
    frequent_probabilities_dp_batch,
    frequent_probability_dynamic_programming,
    pack_probability_matrix,
)
from repro.db import UncertainDatabase


N_TRANSACTIONS = 4000
NNZ_PER_CANDIDATE = 40
N_CANDIDATES = 50


@pytest.fixture
def sparse_vectors():
    rng = np.random.default_rng(17)
    return [
        rng.uniform(0.1, 1.0, size=NNZ_PER_CANDIDATE) for _ in range(N_CANDIDATES)
    ]


def test_packed_matrix_width_is_max_nnz_not_database_size(sparse_vectors):
    engine = SupportEngine(sparse_vectors)
    assert engine.matrix.shape == (N_CANDIDATES, NNZ_PER_CANDIDATE)


def test_dp_from_packed_equals_per_vector_dp(sparse_vectors):
    min_count = 8
    batched = frequent_probabilities_dp_batch(
        pack_probability_matrix(sparse_vectors), min_count
    )
    for vector, probability in zip(sparse_vectors, batched):
        assert probability == frequent_probability_dynamic_programming(
            vector, min_count
        )


def test_dp_path_does_not_pin_the_padded_matrix(sparse_vectors):
    engine = SupportEngine(sparse_vectors)
    engine.frequent_probabilities(8, method="dynamic_programming")
    # The sweep builds its matrix transiently; the engine cache stays empty
    # until a caller explicitly asks for the ``matrix`` property.
    assert engine._matrix is None
    assert engine.matrix is not None  # the property still materialises it


def test_dp_level_peak_allocation_tracks_nnz_not_database_width(sparse_vectors):
    dense_cost = N_CANDIDATES * N_TRANSACTIONS * 8  # the dense (C, N) matrix
    engine = SupportEngine(sparse_vectors)
    tracemalloc.start()
    tracemalloc.reset_peak()
    engine.frequent_probabilities(8, method="dynamic_programming")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Padded width is max_nnz (40), so the whole evaluation should peak far
    # below one dense row-aligned matrix; 4x headroom over the packed cost
    # keeps the pin robust to interpreter noise.
    packed_cost = N_CANDIDATES * NNZ_PER_CANDIDATE * 8
    assert peak < min(dense_cost / 10, packed_cost * 40), (peak, dense_cost)


def test_mining_dp_on_sparse_database_stays_compressed():
    # End to end: a sparse database whose columns hold ~2% of the rows each.
    rng = np.random.default_rng(23)
    records = []
    for _ in range(N_TRANSACTIONS):
        units = {
            int(item): float(rng.uniform(0.3, 1.0))
            for item in rng.choice(12, size=rng.integers(0, 2), replace=False)
        }
        records.append(units)
    database = UncertainDatabase.from_records(records)
    from repro.core.miner import mine

    tracemalloc.start()
    tracemalloc.reset_peak()
    result = mine(database, algorithm="dpb", min_sup=0.001, pft=0.5)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(result) >= 1
    dense_level_cost = 12 * N_TRANSACTIONS * 8  # one dense row per item
    assert peak < dense_level_cost, (peak, dense_level_cost)
