"""Run the documented modules' doctests inside the tier-1 suite.

The CI docs job imports the documented modules as package members and runs
``doctest.testmod`` over each (a plain ``python -m doctest path.py`` can no
longer load ``db/columnar.py`` standalone — it has runtime relative imports
since the bitset cascade).  This test pins the same set inside the tier-1
suite, so the examples stay runnable even when CI is not involved.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.parallel
import repro.core.support
import repro.db.cache
import repro.db.columnar
import repro.db.partition
import repro.db.store
import repro.stream.index
import repro.stream.window

DOCUMENTED_MODULES = [
    repro.core.parallel,
    repro.core.support,
    repro.db.cache,
    repro.db.columnar,
    repro.db.partition,
    repro.db.store,
    repro.stream.index,
    repro.stream.window,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0
