"""Run the documented modules' doctests inside the tier-1 suite.

The CI docs job executes ``python -m doctest`` over the modules that can be
loaded standalone (no runtime relative imports):
``src/repro/core/support.py`` and ``src/repro/db/columnar.py``.  This test
covers those *and* the modules that can only be doctested as package
members (``repro.core.parallel``, ``repro.db.partition``), so the examples
stay runnable even when CI is not involved.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.parallel
import repro.core.support
import repro.db.columnar
import repro.db.partition
import repro.stream.index
import repro.stream.window

DOCUMENTED_MODULES = [
    repro.core.parallel,
    repro.core.support,
    repro.db.columnar,
    repro.db.partition,
    repro.stream.index,
    repro.stream.window,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0
