"""The service contract: protocol, registry lifecycle, errors, shutdown.

Pins the serving layer's ground rules:

* the wire protocol round-trips documents and floats bitwise,
* the dataset registry registers/evicts/re-registers both in-RAM and
  store-mapped datasets, bumping the revision every registration,
* every bad request — malformed line, unknown op/dataset/algorithm, bad
  params — produces a structured error reply (never a hung client),
* shutdown is graceful: in-flight requests finish and reply before the
  server's threads are joined.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro.core.miner import mine
from repro.db.store import ColumnarStore
from repro.service import (
    DatasetRegistry,
    MiningClient,
    MiningServer,
    ServiceError,
    record_keys,
)
from repro.service.protocol import (
    decode_line,
    decode_records,
    encode_line,
    encode_records,
    error_reply,
    ok_reply,
)

from helpers import make_random_database


def _inline_spec(database) -> dict:
    return {
        "kind": "inline",
        "records": [
            [[item, probability] for item, probability in sorted(t.units.items())]
            for t in database.transactions
        ],
    }


@pytest.fixture(scope="module")
def database():
    return make_random_database(n_transactions=30, n_items=6, density=0.5, seed=7)


class TestProtocol:
    def test_line_round_trip(self):
        document = {"id": 3, "op": "mine", "params": {"dataset": "x", "min_esup": 0.25}}
        assert decode_line(encode_line(document)) == document

    def test_floats_round_trip_bitwise(self):
        rng = random.Random(99)
        values = [rng.random() * rng.choice([1e-9, 1.0, 1e9]) for _ in range(200)]
        values += [0.1 + 0.2, 1e-308, 1.7976931348623157e308]
        recovered = decode_line(encode_line({"values": values}))["values"]
        assert all(a == b for a, b in zip(values, recovered))

    def test_records_round_trip_bitwise(self, database):
        result = mine(database, algorithm="dpb", min_sup=0.3, pft=0.5)
        wire = json.loads(json.dumps(encode_records(result.itemsets)))
        assert record_keys(decode_records(wire)) == record_keys(result.itemsets)

    def test_records_round_trip_none_fields(self, database):
        result = mine(database, algorithm="uapriori", min_esup=0.3)
        assert result.itemsets[0].frequent_probability is None
        wire = json.loads(json.dumps(encode_records(result.itemsets)))
        assert record_keys(decode_records(wire)) == record_keys(result.itemsets)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_line(b"{not json")
        assert excinfo.value.type == "malformed-request"
        with pytest.raises(ServiceError) as excinfo:
            decode_line(b"[1, 2, 3]")
        assert excinfo.value.type == "malformed-request"
        with pytest.raises(ServiceError) as excinfo:
            decode_line(b"\xff\xfe")
        assert excinfo.value.type == "malformed-request"

    def test_service_error_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown error type"):
            ServiceError("out-of-vocabulary", "nope")

    def test_reply_shapes(self):
        assert ok_reply(1, {"x": 2}) == {"id": 1, "ok": True, "result": {"x": 2}}
        reply = error_reply(None, ServiceError("unknown-op", "what"))
        assert reply == {
            "id": None,
            "ok": False,
            "error": {"type": "unknown-op", "message": "what"},
        }


class TestRegistryLifecycle:
    def test_register_checkout_warm(self, database):
        registry = DatasetRegistry(budget_bytes=1 << 20)
        handle = registry.register("d", _inline_spec(database))
        assert handle.revision == "r1"
        assert handle.n_transactions == len(database)
        assert registry.is_warm("d")
        got_handle, got = registry.checkout("d")
        assert got_handle is handle
        assert registry.rebuilds == 0
        assert len(got) == len(database)

    def test_reregister_bumps_revision(self, database):
        registry = DatasetRegistry(budget_bytes=1 << 20)
        first = registry.register("d", _inline_spec(database))
        second = registry.register("d", _inline_spec(database))
        assert first.revision != second.revision
        handle, _ = registry.checkout("d")
        assert handle.revision == second.revision

    def test_eviction_degrades_to_cold_rebuild(self, database):
        spec = _inline_spec(database)
        # Budget fits exactly one warm in-RAM payload; registering the
        # second evicts the first, whose next checkout must rebuild.
        units = sum(len(t) for t in database.transactions)
        registry = DatasetRegistry(budget_bytes=16 * units + 600)
        registry.register("a", spec)
        registry.register("b", spec)
        assert not registry.is_warm("a")
        assert registry.is_warm("b")
        _, rebuilt = registry.checkout("a")
        assert registry.rebuilds == 1
        assert registry.is_warm("a")
        fresh_keys = {t.items() for t in database.transactions}
        assert {t.items() for t in rebuilt.transactions} == fresh_keys

    def test_unregister_removes_handle_and_payload(self, database):
        registry = DatasetRegistry(budget_bytes=1 << 20)
        registry.register("d", _inline_spec(database))
        assert registry.unregister("d")
        assert not registry.unregister("d")
        assert registry.names() == []
        with pytest.raises(ServiceError) as excinfo:
            registry.checkout("d")
        assert excinfo.value.type == "unknown-dataset"

    def test_store_backed_registration(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        registry = DatasetRegistry(budget_bytes=1 << 20)
        handle = registry.register("mapped", {"kind": "store", "directory": directory})
        assert handle.kind == "store"
        assert "-s" in handle.revision  # carries the store stamp
        assert registry.is_warm("mapped")
        _, mapped = registry.checkout("mapped")
        result_mapped = mine(mapped, algorithm="uapriori", min_esup=0.3)
        result_ram = mine(database, algorithm="uapriori", min_esup=0.3)
        assert record_keys(result_mapped.itemsets) == record_keys(result_ram.itemsets)

    def test_mapped_payload_charge_is_nominal(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        registry = DatasetRegistry(budget_bytes=1 << 20)
        registry.register("mapped", {"kind": "store", "directory": directory})
        assert registry._warm.nbytes <= 4096

    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "benchmark", "dataset": "no-such-benchmark"},
            {"kind": "file", "path": "/no/such/file.dat"},
            {"kind": "store", "directory": "/no/such/store"},
            {"kind": "inline", "records": "not-a-list-of-rows"},
            {"kind": "teleport"},
            {},
        ],
    )
    def test_bad_specs_are_bad_params(self, spec):
        registry = DatasetRegistry(budget_bytes=1 << 20)
        with pytest.raises(ServiceError) as excinfo:
            registry.register("d", spec)
        assert excinfo.value.type == "bad-params"


class TestServerErrors:
    @pytest.fixture()
    def server(self, database):
        with MiningServer(max_workers=2, max_queue=4) as server:
            server.registry.register("d", _inline_spec(database))
            yield server

    def _raw_exchange(self, server, payload: bytes) -> dict:
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(payload)
            buffer = b""
            while b"\n" not in buffer:
                buffer += sock.recv(1 << 16)
        return json.loads(buffer.split(b"\n", 1)[0])

    def test_malformed_line_gets_structured_reply(self, server):
        reply = self._raw_exchange(server, b"this is not json\n")
        assert reply["ok"] is False
        assert reply["id"] is None
        assert reply["error"]["type"] == "malformed-request"

    def test_missing_op_and_bad_params_shape(self, server):
        reply = self._raw_exchange(server, encode_line({"id": 5}))
        assert reply["error"]["type"] == "malformed-request"
        assert reply["id"] == 5
        reply = self._raw_exchange(
            server, encode_line({"id": 6, "op": "mine", "params": [1, 2]})
        )
        assert reply["error"]["type"] == "malformed-request"

    def test_unknown_everything(self, server):
        host, port = server.address
        with MiningClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("teleport")
            assert excinfo.value.type == "unknown-op"
            with pytest.raises(ServiceError) as excinfo:
                client.mine("never-registered")
            assert excinfo.value.type == "unknown-dataset"
            with pytest.raises(ServiceError) as excinfo:
                client.mine("d", algorithm="no-such-miner")
            assert excinfo.value.type == "unknown-algorithm"
            with pytest.raises(ServiceError) as excinfo:
                client.mine_topk("d", 0)
            assert excinfo.value.type == "bad-params"
            with pytest.raises(ServiceError) as excinfo:
                client.register("x")
            assert excinfo.value.type == "bad-params"
            with pytest.raises(ServiceError) as excinfo:
                client.mine("d", min_esup=-3.0)
            assert excinfo.value.type == "bad-params"

    def test_errors_do_not_poison_the_connection(self, server):
        host, port = server.address
        with MiningClient(host, port) as client:
            for _ in range(3):
                with pytest.raises(ServiceError):
                    client.call("teleport")
            assert client.ping()["pong"] is True


class TestGracefulShutdown:
    def test_inflight_request_finishes_and_replies(self, database):
        server = MiningServer(max_workers=2, max_queue=4).start()
        try:
            server.registry.register("d", _inline_spec(database))
            host, port = server.address
            replies = {}

            def slow_request():
                with MiningClient(host, port) as client:
                    replies["ping"] = client.ping(delay_seconds=0.4)

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.15)  # request is in flight on a worker
            server.close()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert replies["ping"]["pong"] is True
        finally:
            server.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_requests_during_stop_get_shutting_down(self):
        server = MiningServer(max_workers=1, max_queue=1)
        server._stopping.set()
        reply = server.handle_line(encode_line({"id": 1, "op": "list"}))
        assert reply["ok"] is False
        assert reply["error"]["type"] == "shutting-down"

    def test_shutdown_op_stops_the_server(self, database):
        server = MiningServer(max_workers=2, max_queue=4).start()
        server.registry.register("d", _inline_spec(database))
        host, port = server.address
        with MiningClient(host, port) as client:
            assert client.shutdown() == {"stopping": True}
        assert server.wait(timeout=10.0)
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_close_is_idempotent(self):
        server = MiningServer(max_workers=1, max_queue=0).start()
        server.close()
        server.close()
        assert server.wait(timeout=0.0)


class TestServeEndToEnd:
    def test_cached_and_fresh_replies_are_bitwise_equal(self, database):
        with MiningServer(max_workers=2, max_queue=4) as server:
            host, port = server.address
            with MiningClient(host, port) as client:
                client.register("d", **_inline_spec(database))
                first = client.mine("d", algorithm="uapriori", min_esup=0.2)
                assert first["cache"] == "miss"
                assert first["statistics"] is not None
                again = client.mine("d", algorithm="uapriori", min_esup=0.2)
                assert again["cache"] == "hit"
                assert again["itemsets"] == first["itemsets"]
                stricter = client.mine("d", algorithm="uapriori", min_esup=0.35)
                assert stricter["cache"] == "filter"
                fresh = client.mine(
                    "d", algorithm="uapriori", min_esup=0.35, cache=False
                )
                assert fresh["cache"] == "off"
                assert stricter["itemsets"] == fresh["itemsets"]

    def test_reregistration_invalidates_served_results(self, database):
        other = make_random_database(n_transactions=30, n_items=6, density=0.3, seed=8)
        with MiningServer(max_workers=2, max_queue=4) as server:
            host, port = server.address
            with MiningClient(host, port) as client:
                client.register("d", **_inline_spec(database))
                first = client.mine("d", algorithm="uapriori", min_esup=0.2)
                client.register("d", **_inline_spec(other))
                second = client.mine("d", algorithm="uapriori", min_esup=0.2)
                assert second["cache"] == "miss"
                assert second["revision"] != first["revision"]
                expected = mine(other, algorithm="uapriori", min_esup=0.2)
                assert record_keys(decode_records(second["itemsets"])) == record_keys(
                    expected.itemsets
                )


class TestTransportEdges:
    """Hostile transports: truncated frames, partial writes, dead peers.

    The serving contract under a misbehaving network layer — the server
    never hangs, never crashes a connection thread, and keeps answering
    well-formed clients; the client maps every transport death to one
    typed ``connection-lost`` ServiceError.
    """

    @pytest.fixture()
    def server(self, database):
        with MiningServer(max_workers=2, max_queue=4) as server:
            server.registry.register("d", _inline_spec(database))
            yield server

    def test_truncated_request_frame_is_harmless(self, server):
        # half a request line, then the peer vanishes: no reply owed, and
        # the server must keep serving everyone else
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(b'{"id": 1, "op": "pi')
        with MiningClient(*server.address) as client:
            assert client.ping()["pong"] is True

    def test_partial_writes_assemble_into_one_request(self, server):
        payload = encode_line({"id": 9, "op": "ping", "params": {}})
        with socket.create_connection(server.address, timeout=10.0) as sock:
            for index in range(0, len(payload), 7):
                sock.sendall(payload[index : index + 7])
                time.sleep(0.005)
            buffer = b""
            while b"\n" not in buffer:
                buffer += sock.recv(1 << 16)
        reply = json.loads(buffer.split(b"\n", 1)[0])
        assert reply["id"] == 9 and reply["ok"] is True

    def test_mid_handshake_disconnect_is_harmless(self, server):
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=10.0)
            sock.close()
        with MiningClient(*server.address) as client:
            assert client.ping()["pong"] is True

    def test_two_requests_in_one_write_get_two_replies(self, server):
        payload = encode_line({"id": 1, "op": "ping", "params": {}}) + encode_line(
            {"id": 2, "op": "list", "params": {}}
        )
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(payload)
            buffer = b""
            while buffer.count(b"\n") < 2:
                buffer += sock.recv(1 << 16)
        first, second = buffer.split(b"\n")[:2]
        assert json.loads(first)["id"] == 1
        assert json.loads(second)["id"] == 2

    def test_oversize_frame_is_rejected_structurally(self, database):
        with MiningServer(max_workers=1, max_frame_bytes=200) as server:
            with MiningClient(*server.address, retries=0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ping(pad="x" * 512)
            assert excinfo.value.type == "bad-request"
            assert "200" in excinfo.value.message
            # a fresh connection with a small frame still works
            with MiningClient(*server.address) as client:
                assert client.ping()["pong"] is True

    def test_server_death_mid_reply_is_connection_lost(self, database):
        # a bare socket server that sends half a reply line then resets
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def half_reply():
            conn, _ = listener.accept()
            conn.recv(1 << 16)
            conn.sendall(b'{"id": 1, "ok": tr')
            conn.close()

        thread = threading.Thread(target=half_reply)
        thread.start()
        try:
            client = MiningClient(*listener.getsockname(), retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.type == "connection-lost"
            client.close()
        finally:
            thread.join()
            listener.close()

    def test_connect_refused_is_connection_lost(self):
        # bind-then-close guarantees a dead port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        client = MiningClient(host, port, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.type == "connection-lost"
        assert excinfo.value.request_sent is False
