"""Streaming miners vs their batch counterparts over identical window contents.

The acceptance property of the streaming subsystem: after every slide, the
streaming miner's frequent set equals batch-mining the resident window
with the corresponding static algorithm.  On *dyadic* streams — every
probability an exact binary fraction, so all products, sums, convolutions
and DP recurrences are exact in floating point — the equality is pinned
**byte-identically**, including expected supports, variances and frequent
probabilities.  On arbitrary-probability streams the frequent sets still
match exactly and the statistics agree within convolution round-off.
"""

import random

import pytest

from repro.core.miner import mine
from repro.eval import runner, scenarios
from repro.stream import (
    STREAMING_MINERS,
    StreamingDP,
    StreamingUApriori,
    TransactionStream,
    make_streaming_miner,
)

#: probabilities that are exact binary fractions with tiny numerators:
#: every quantity either miner derives from them is exact in a double
DYADIC_CHOICES = (0.25, 0.5, 0.75, 1.0)


def dyadic_records(n, n_items=6, density=0.5, seed=3):
    rng = random.Random(seed)
    return [
        {
            item: rng.choice(DYADIC_CHOICES)
            for item in range(n_items)
            if rng.random() < density
        }
        for _ in range(n)
    ]


def general_records(n, n_items=7, density=0.45, seed=9):
    rng = random.Random(seed)
    return [
        {
            item: round(rng.uniform(0.05, 1.0), 3)
            for item in range(n_items)
            if rng.random() < density
        }
        for _ in range(n)
    ]


def full_key(result):
    """Every record's complete statistics — equality means byte-identity."""
    return sorted(
        (
            record.itemset.items,
            record.expected_support,
            record.variance,
            record.frequent_probability,
        )
        for record in result
    )


def itemset_key(result):
    return {record.itemset.items for record in result}


class TestDyadicByteIdentity:
    """Streaming results byte-identical to batch mining the window contents."""

    def test_streaming_uapriori_matches_batch_bitwise(self):
        stream = TransactionStream.from_records(dyadic_records(120))
        miner = StreamingUApriori(24, min_esup=0.25)
        assert miner.advance(stream, 24) is not None
        slides = 0
        for result in miner.results(stream, step=5, max_slides=12):
            batch = mine(miner.window.contents(), algorithm="uapriori", min_esup=0.25)
            assert full_key(result) == full_key(batch)
            slides += 1
        assert slides == 12

    def test_streaming_uapriori_variance_matches_batch_bitwise(self):
        stream = TransactionStream.from_records(dyadic_records(100, seed=8))
        miner = StreamingUApriori(20, min_esup=0.3, track_variance=True)
        miner.advance(stream, 20)
        for result in miner.results(stream, step=7, max_slides=8):
            batch = mine(
                miner.window.contents(),
                algorithm="uapriori",
                min_esup=0.3,
                track_variance=True,
            )
            assert full_key(result) == full_key(batch)

    @pytest.mark.parametrize("batch_algorithm", ["dpnb", "dpb"])
    def test_streaming_dp_matches_batch_bitwise(self, batch_algorithm):
        stream = TransactionStream.from_records(dyadic_records(120))
        miner = StreamingDP(24, min_sup=0.25, pft=0.6)
        assert miner.advance(stream, 24) is not None
        slides = 0
        for result in miner.results(stream, step=5, max_slides=12):
            batch = mine(
                miner.window.contents(),
                algorithm=batch_algorithm,
                min_sup=0.25,
                pft=0.6,
            )
            assert full_key(result) == full_key(batch)
            slides += 1
        assert slides == 12

    def test_partial_window_matches_batch(self):
        # Before the window first fills, thresholds resolve against the
        # resident count — exactly like batch-mining the partial contents.
        stream = TransactionStream.from_records(dyadic_records(40, seed=6))
        miner = StreamingUApriori(32, min_esup=0.25)
        result = miner.advance(stream, 10)  # 10 of 32 slots filled
        assert len(miner.window) == 10
        batch = mine(miner.window.contents(), algorithm="uapriori", min_esup=0.25)
        assert full_key(result) == full_key(batch)


class TestGeneralStreams:
    """Arbitrary probabilities: frequent sets equal, statistics within 1e-11."""

    def test_streaming_dp_tracks_batch_over_long_replay(self):
        stream = TransactionStream.from_records(general_records(500))
        miner = StreamingDP(60, min_sup=0.2, pft=0.7)
        miner.advance(stream, 60)
        slides = 0
        for result in miner.results(stream, step=7, max_slides=30):
            batch = mine(
                miner.window.contents(), algorithm="dpb", min_sup=0.2, pft=0.7
            )
            assert itemset_key(result) == itemset_key(batch)
            for record in result:
                reference = batch[record.itemset.items]
                assert record.frequent_probability == pytest.approx(
                    reference.frequent_probability, abs=1e-11
                )
                assert record.expected_support == pytest.approx(
                    reference.expected_support, rel=1e-12
                )
            slides += 1
        assert slides == 30

    def test_streaming_uapriori_tracks_batch_on_fft_sized_window(self):
        # A window above the FFT cutoff exercises the spectrum-domain PMF
        # levels of any DP queries; UApriori only needs the moment trees.
        stream = TransactionStream.from_records(general_records(600, seed=21))
        miner = StreamingUApriori(150, min_esup=0.2)
        miner.advance(stream, 150)
        for result in miner.results(stream, step=30, max_slides=10):
            batch = mine(miner.window.contents(), algorithm="uapriori", min_esup=0.2)
            assert itemset_key(result) == itemset_key(batch)

    def test_stream_exhaustion_returns_none(self):
        stream = TransactionStream.from_records(general_records(50))
        miner = StreamingUApriori(40, min_esup=0.3)
        assert miner.advance(stream, 40) is not None
        assert miner.advance(stream, 10) is not None
        assert miner.advance(stream, 10) is None  # stream dry, window unchanged


class TestStreamingFactory:
    def test_known_variants(self):
        assert set(STREAMING_MINERS) == {"uapriori", "dp"}
        miner = make_streaming_miner("uapriori", 8, min_esup=0.5)
        assert isinstance(miner, StreamingUApriori)
        miner = make_streaming_miner("dp", 8, min_sup=0.5, pft=0.8)
        assert isinstance(miner, StreamingDP)

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            make_streaming_miner("uh-mine", 8)


class TestStreamingScenarios:
    def test_scenarios_are_well_formed(self):
        specs = scenarios.streaming_scenarios()
        assert len(specs) >= 4
        for spec in specs:
            assert spec.algorithm in STREAMING_MINERS
            assert spec.window > spec.step > 0

    def test_runner_verifies_against_batch(self):
        spec = scenarios.StreamingScenario(
            scenario_id="stream-test",
            title="tiny accident replay",
            dataset="accident",
            algorithm="dp",
            window=80,
            step=20,
            max_slides=2,
            dataset_kwargs={"scale": 0.0005},
            thresholds={"min_sup": 0.3, "pft": 0.9},
        )
        points = runner.run_streaming_scenario(spec, verify=True)
        assert len(points) == 3  # initial fill + 2 slides
        assert all(point.matches_batch for point in points)
        assert all(point.window_fill == 80 for point in points)

    def test_runner_without_verification_leaves_batch_fields_empty(self):
        spec = scenarios.streaming_scenarios(scale=0.0005)[0]
        points = runner.run_streaming_scenario(spec, max_slides=1)
        assert points
        assert points[0].matches_batch is None


class TestStreamMineCli:
    def test_stream_mine_with_verification(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "stream-mine",
                "--algorithm",
                "dp",
                "--dataset",
                "accident",
                "--scale",
                "0.0005",
                "--window",
                "60",
                "--step",
                "20",
                "--slides",
                "2",
                "--min-sup",
                "0.3",
                "--verify",
                "--limit",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "stream-dp" in captured.out
        assert "match" in captured.out
        assert "MISMATCH" not in captured.out

    def test_stream_mine_uapriori_runs(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "stream-mine",
                "-a",
                "uapriori",
                "-d",
                "accident",
                "--scale",
                "0.0005",
                "--window",
                "50",
                "--step",
                "25",
                "--slides",
                "1",
                "--min-esup",
                "0.3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "slide   0" in captured.out
