"""Tests for association-rule derivation and closed-itemset compression."""

import pytest

from repro.algorithms import UApriori
from repro.core import Itemset, closed_itemsets, derive_rules
from repro.db import DatabaseBuilder, UncertainDatabase


@pytest.fixture
def rule_db() -> UncertainDatabase:
    """Bread & butter co-occur strongly; milk is independent filler."""
    builder = DatabaseBuilder(name="rules")
    for _ in range(8):
        builder.add_transaction([("bread", 0.9), ("butter", 0.9), ("milk", 0.5)])
    for _ in range(4):
        builder.add_transaction([("milk", 0.9)])
    for _ in range(4):
        builder.add_transaction([("bread", 0.8)])
    return builder.build()


class TestDeriveRules:
    def test_strong_rule_found(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        rules = derive_rules(result, rule_db, min_confidence=0.5)
        bread = rule_db.vocabulary.id_of("bread")
        butter = rule_db.vocabulary.id_of("butter")
        best = {(rule.antecedent.items, rule.consequent.items) for rule in rules}
        assert ((butter,), (bread,)) in best  # butter -> bread is near-certain

    def test_confidence_values_consistent_with_database(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        for rule in derive_rules(result, rule_db, min_confidence=0.1):
            joint = rule_db.expected_support(rule.antecedent.union(rule.consequent))
            antecedent = rule_db.expected_support(rule.antecedent)
            assert rule.expected_confidence == pytest.approx(
                min(joint / antecedent, 1.0), abs=1e-9
            )
            assert 0.0 < rule.expected_confidence <= 1.0

    def test_min_confidence_filters(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        lenient = derive_rules(result, rule_db, min_confidence=0.1)
        strict = derive_rules(result, rule_db, min_confidence=0.9)
        assert len(strict) <= len(lenient)

    def test_rules_sorted_by_confidence(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        rules = derive_rules(result, rule_db, min_confidence=0.1)
        confidences = [rule.expected_confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_lift_above_one_for_correlated_items(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        rules = derive_rules(result, rule_db, min_confidence=0.5)
        bread = rule_db.vocabulary.id_of("bread")
        butter = rule_db.vocabulary.id_of("butter")
        for rule in rules:
            if rule.antecedent == Itemset([butter]) and rule.consequent == Itemset([bread]):
                assert rule.lift > 1.0

    def test_invalid_confidence_rejected(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        with pytest.raises(ValueError):
            derive_rules(result, rule_db, min_confidence=0.0)

    def test_empty_database(self):
        from repro.core import MiningResult

        assert derive_rules(MiningResult([]), UncertainDatabase([])) == []

    def test_max_consequent_size(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.1)
        rules = derive_rules(result, rule_db, min_confidence=0.1, max_consequent_size=1)
        assert all(len(rule.consequent) == 1 for rule in rules)


class TestClosedItemsets:
    def test_subset_with_equal_support_is_not_closed(self):
        """If every bread transaction also (certainly) contains butter, {bread} is not closed."""
        builder = DatabaseBuilder()
        for _ in range(10):
            builder.add_transaction([("bread", 0.8), ("butter", 1.0)])
        database = builder.build()
        result = UApriori().mine(database, min_esup=0.3)
        closed = closed_itemsets(result)
        bread = database.vocabulary.id_of("bread")
        butter = database.vocabulary.id_of("butter")
        assert closed.get((bread,)) is None  # absorbed by {bread, butter}
        assert closed.get((bread, butter)) is not None
        assert closed.get((butter,)) is not None  # {butter} has higher esup, stays closed

    def test_closed_is_subset_of_frequent(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        closed = closed_itemsets(result)
        assert closed.itemset_keys() <= result.itemset_keys()

    def test_maximal_itemsets_always_closed(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        closed = closed_itemsets(result)
        maximal_size = result.max_size()
        for record in result.of_size(maximal_size):
            assert record.itemset in closed.itemset_keys()

    def test_statistics_carried_over(self, rule_db):
        result = UApriori().mine(rule_db, min_esup=0.2)
        closed = closed_itemsets(result)
        assert closed.statistics is result.statistics


class TestLiftGuards:
    """Regression: zero / near-zero consequent supports used to emit ``inf``
    lifts or raise ``ZeroDivisionError``; confidence is clamped before the
    filter, the lift and the sort key ever see it."""

    def test_zero_support_consequent_yields_no_rule(self):
        import math

        from repro.core import FrequentItemset, MiningResult

        # The result claims {1, 2} is frequent although item 2 never occurs
        # in the database: the consequent {2} recomputes to esup 0.
        database = UncertainDatabase.from_records([{1: 0.9} for _ in range(4)])
        result = MiningResult(
            [
                FrequentItemset(Itemset((1,)), 3.6),
                FrequentItemset(Itemset((1, 2)), 3.6),
            ]
        )
        rules = derive_rules(result, database, min_confidence=0.5)
        assert all(math.isfinite(rule.lift) for rule in rules)
        assert all(rule.consequent != Itemset((2,)) for rule in rules)

    def test_denormal_supports_do_not_raise(self):
        from repro.core import FrequentItemset, MiningResult

        tiny = 1e-300  # antecedent * consequent underflows to exactly 0.0
        database = UncertainDatabase.from_records(
            [{1: 0.9, 2: 0.9} for _ in range(2)]
        )
        result = MiningResult(
            [
                FrequentItemset(Itemset((1,)), tiny),
                FrequentItemset(Itemset((2,)), tiny),
                FrequentItemset(Itemset((1, 2)), tiny),
            ]
        )
        # Historically: ZeroDivisionError from joint * N / (tiny * tiny).
        rules = derive_rules(result, database, min_confidence=0.1)
        assert rules == []  # never-occurring consequents support no rule

    def test_confidence_clamped_before_filter_and_sort(self):
        from repro.core import FrequentItemset, MiningResult

        # joint > antecedent (float-noise scenario): the stored confidence,
        # the min_confidence filter and the sort key must all see the
        # clamped value.
        database = UncertainDatabase.from_records(
            [{1: 0.9, 2: 0.9} for _ in range(4)]
        )
        result = MiningResult(
            [
                FrequentItemset(Itemset((1,)), 1.0),
                FrequentItemset(Itemset((2,)), 2.0),
                FrequentItemset(Itemset((1, 2)), 1.2),
            ]
        )
        rules = derive_rules(result, database, min_confidence=0.2)
        assert rules, "expected at least one rule"
        assert all(rule.expected_confidence <= 1.0 for rule in rules)
        keys = [
            (-rule.expected_confidence, -rule.lift, rule.antecedent.items)
            for rule in rules
        ]
        assert keys == sorted(keys)
