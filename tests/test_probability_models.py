"""Tests for the probability models layered over deterministic data."""

import numpy as np
import pytest

from repro.datasets import (
    ConstantProbabilityModel,
    GaussianProbabilityModel,
    UniformProbabilityModel,
    ZipfProbabilityModel,
)


class TestConstantModel:
    def test_returns_fixed_value(self):
        model = ConstantProbabilityModel(0.3)
        assert model(0, 0) == 0.3
        assert model(5, 7) == 0.3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConstantProbabilityModel(1.5)


class TestUniformModel:
    def test_values_within_bounds(self):
        model = UniformProbabilityModel(0.2, 0.6, seed=1)
        draws = [model(0, i) for i in range(200)]
        assert all(0.2 <= value <= 0.6 for value in draws)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformProbabilityModel(0.9, 0.1)


class TestGaussianModel:
    def test_values_clipped_to_unit_interval(self):
        model = GaussianProbabilityModel(mean=0.95, variance=0.5, seed=2)
        draws = [model(0, i) for i in range(500)]
        assert all(0.0 < value <= 1.0 for value in draws)

    def test_mean_tracks_parameter(self):
        model = GaussianProbabilityModel(mean=0.5, variance=0.01, seed=3)
        draws = np.array([model(0, i) for i in range(2000)])
        assert abs(draws.mean() - 0.5) < 0.02

    def test_high_mean_low_variance_profile(self):
        """The paper's Connect profile (0.95, 0.05) yields mostly high probabilities."""
        model = GaussianProbabilityModel(mean=0.95, variance=0.05, seed=4)
        draws = np.array([model(0, i) for i in range(2000)])
        assert np.median(draws) > 0.9

    def test_deterministic_given_seed(self):
        first = GaussianProbabilityModel(0.5, 0.1, seed=7)
        second = GaussianProbabilityModel(0.5, 0.1, seed=7)
        assert [first(0, i) for i in range(10)] == [second(0, i) for i in range(10)]

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            GaussianProbabilityModel(0.5, -1.0)


class TestZipfModel:
    def test_values_come_from_level_grid(self):
        model = ZipfProbabilityModel(skew=1.2, seed=5)
        levels = set(model.levels.tolist())
        draws = {model(0, i) for i in range(300)}
        assert draws <= levels

    def test_higher_skew_concentrates_on_zero(self):
        """The paper's observation: more skew means more (near-)zero probabilities."""
        low = ZipfProbabilityModel(skew=0.8, seed=6)
        high = ZipfProbabilityModel(skew=2.0, seed=6)
        low_draws = np.array([low(0, i) for i in range(2000)])
        high_draws = np.array([high(0, i) for i in range(2000)])
        assert (high_draws == 0.0).mean() > (low_draws == 0.0).mean()
        assert high_draws.mean() < low_draws.mean()

    def test_invalid_skew_rejected(self):
        with pytest.raises(ValueError):
            ZipfProbabilityModel(skew=0.0)

    def test_custom_levels(self):
        model = ZipfProbabilityModel(skew=1.0, levels=np.array([0.5, 0.25]), seed=1)
        assert set(model(0, i) for i in range(100)) <= {0.5, 0.25}
