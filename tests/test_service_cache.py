"""The result cache's monotonicity contract, swept across every miner.

The cache may serve a stricter-threshold request by *filtering* a cached
looser-threshold answer — but only where that is provably sound.  These
tests sweep every registered algorithm over a threshold grid and pin:

* a cached filter is **bitwise equal** to a fresh mine at the stricter
  threshold (records, order, and every float),
* the filter direction is one-way: a looser request never serves from a
  stricter answer,
* answers never cross a definition boundary (expected support vs exact
  probabilistic vs approximations — distinct cache groups), a backend
  boundary, or a dataset-revision boundary,
* the non-anti-monotone families (Normal approximation, Monte-Carlo
  sampling) only ever hit on their exact parameter key,
* top-k answers serve smaller ``k`` as prefixes, and an exhausted answer
  serves every ``k``.
"""

from __future__ import annotations

import pytest

from repro.core.miner import mine
from repro.core.registry import algorithm_names, get_algorithm
from repro.core.topk import mine_topk, ranking_of, resolve_evaluator
from repro.service import ResultCache, ServiceError, plan_mine, plan_topk, record_keys
from repro.service.cache import _EXACT_PFT_ALGORITHMS, _POISSON_ALGORITHMS

from helpers import make_random_database

#: small enough that even the exhaustive miners sweep in milliseconds
N_TRANSACTIONS = 30
N_ITEMS = 6

ESUP_GRID = [0.15, 0.25, 0.35, 0.5]
PFT_GRID = [0.3, 0.5, 0.7, 0.9]
FIXED_MIN_SUP = 0.3

EXPECTED_ALGORITHMS = sorted(
    name for name in algorithm_names() if get_algorithm(name).family == "expected"
)
EXACT_ALGORITHMS = sorted(_EXACT_PFT_ALGORITHMS)
POISSON_ALGORITHMS = sorted(_POISSON_ALGORITHMS)
EXACT_KEY_ONLY = sorted(
    name
    for name in algorithm_names()
    if get_algorithm(name).family != "expected"
    and name not in _EXACT_PFT_ALGORITHMS
    and name not in _POISSON_ALGORITHMS
)


@pytest.fixture(scope="module")
def database():
    return make_random_database(
        n_transactions=N_TRANSACTIONS, n_items=N_ITEMS, density=0.5, seed=11
    )


def _plan(database, algorithm, *, revision="r1", backend="columnar", **thresholds):
    info = get_algorithm(algorithm)
    return plan_mine(
        "d",
        revision,
        info.name,
        info.family,
        len(database),
        backend,
        thresholds.get("min_esup"),
        thresholds.get("min_sup"),
        thresholds.get("pft", 0.9),
    )


def _fresh(database, algorithm, **thresholds):
    info = get_algorithm(algorithm)
    if info.family == "expected":
        return mine(database, algorithm=algorithm, min_esup=thresholds["min_esup"])
    return mine(
        database,
        algorithm=algorithm,
        min_sup=thresholds["min_sup"],
        pft=thresholds.get("pft", 0.9),
    )


class TestExpectedFamilyMonotonicity:
    @pytest.mark.parametrize("algorithm", EXPECTED_ALGORITHMS)
    def test_filter_equals_fresh_mine_across_grid(self, database, algorithm):
        cache = ResultCache()
        loosest = ESUP_GRID[0]
        base = _fresh(database, algorithm, min_esup=loosest)
        cache.store_mine(_plan(database, algorithm, min_esup=loosest), base.itemsets)
        for threshold in ESUP_GRID[1:]:
            plan = _plan(database, algorithm, min_esup=threshold)
            served = cache.fetch_mine(plan)
            assert served is not None and served[1] == "filter"
            fresh = _fresh(database, algorithm, min_esup=threshold)
            assert record_keys(served[0]) == record_keys(fresh.itemsets)
            # The filtered answer was re-stored: repeat is an exact hit.
            again = cache.fetch_mine(plan)
            assert again is not None and again[1] == "hit"
            assert record_keys(again[0]) == record_keys(fresh.itemsets)

    def test_looser_request_never_served_from_stricter_answer(self, database):
        cache = ResultCache()
        strict = _fresh(database, "uapriori", min_esup=0.5)
        cache.store_mine(_plan(database, "uapriori", min_esup=0.5), strict.itemsets)
        assert cache.fetch_mine(_plan(database, "uapriori", min_esup=0.2)) is None

    def test_best_filter_source_is_the_tightest(self, database):
        cache = ResultCache()
        for threshold in (0.15, 0.25):
            result = _fresh(database, "uapriori", min_esup=threshold)
            cache.store_mine(
                _plan(database, "uapriori", min_esup=threshold), result.itemsets
            )
        served = cache.fetch_mine(_plan(database, "uapriori", min_esup=0.4))
        fresh = _fresh(database, "uapriori", min_esup=0.4)
        assert record_keys(served[0]) == record_keys(fresh.itemsets)


class TestExactFamilyMonotonicity:
    @pytest.mark.parametrize("algorithm", EXACT_ALGORITHMS)
    def test_pft_filter_equals_fresh_mine(self, database, algorithm):
        cache = ResultCache()
        loosest = PFT_GRID[0]
        base = _fresh(database, algorithm, min_sup=FIXED_MIN_SUP, pft=loosest)
        cache.store_mine(
            _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=loosest),
            base.itemsets,
        )
        for pft in PFT_GRID[1:]:
            plan = _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=pft)
            served = cache.fetch_mine(plan)
            assert served is not None and served[1] == "filter"
            fresh = _fresh(database, algorithm, min_sup=FIXED_MIN_SUP, pft=pft)
            assert record_keys(served[0]) == record_keys(fresh.itemsets)

    @pytest.mark.parametrize("algorithm", EXACT_ALGORITHMS[:2])
    def test_min_sup_is_a_group_boundary_not_an_axis(self, database, algorithm):
        cache = ResultCache()
        base = _fresh(database, algorithm, min_sup=0.2, pft=0.5)
        cache.store_mine(
            _plan(database, algorithm, min_sup=0.2, pft=0.5), base.itemsets
        )
        # Same pft, different min_sup (hence min_count): a different group.
        assert (
            cache.fetch_mine(_plan(database, algorithm, min_sup=0.4, pft=0.5)) is None
        )
        assert (
            cache.fetch_mine(_plan(database, algorithm, min_sup=0.4, pft=0.9)) is None
        )


class TestPoissonFamilyMonotonicity:
    @pytest.mark.parametrize("algorithm", POISSON_ALGORITHMS)
    def test_lambda_filter_equals_fresh_mine(self, database, algorithm):
        cache = ResultCache()
        loosest = PFT_GRID[0]
        base = _fresh(database, algorithm, min_sup=FIXED_MIN_SUP, pft=loosest)
        cache.store_mine(
            _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=loosest),
            base.itemsets,
        )
        for pft in PFT_GRID[1:]:
            plan = _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=pft)
            served = cache.fetch_mine(plan)
            assert served is not None and served[1] == "filter"
            fresh = _fresh(database, algorithm, min_sup=FIXED_MIN_SUP, pft=pft)
            assert record_keys(served[0]) == record_keys(fresh.itemsets)


class TestExactKeyOnlyFamilies:
    @pytest.mark.parametrize("algorithm", EXACT_KEY_ONLY)
    def test_no_filter_axis(self, database, algorithm):
        plan = _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=0.5)
        assert plan.axis is None and plan.keep is None

    @pytest.mark.parametrize("algorithm", EXACT_KEY_ONLY)
    def test_only_exact_parameter_hits(self, database, algorithm):
        cache = ResultCache()
        result = _fresh(database, algorithm, min_sup=FIXED_MIN_SUP, pft=0.5)
        plan = _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=0.5)
        cache.store_mine(plan, result.itemsets)
        served = cache.fetch_mine(plan)
        assert served is not None and served[1] == "hit"
        assert record_keys(served[0]) == record_keys(result.itemsets)
        # A stricter pft must MISS — the Normal score is not anti-monotone,
        # so filtering could disagree with a fresh downward-closure mine.
        assert (
            cache.fetch_mine(_plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=0.8))
            is None
        )


class TestBoundaries:
    def test_never_across_definitions(self, database):
        cache = ResultCache()
        expected = _fresh(database, "uapriori", min_esup=0.15)
        cache.store_mine(
            _plan(database, "uapriori", min_esup=0.15), expected.itemsets
        )
        # Every probabilistic plan must miss, whatever its thresholds.
        for algorithm in EXACT_ALGORITHMS + POISSON_ALGORITHMS + EXACT_KEY_ONLY:
            for pft in PFT_GRID:
                plan = _plan(database, algorithm, min_sup=FIXED_MIN_SUP, pft=pft)
                assert cache.fetch_mine(plan) is None, (algorithm, pft)

    def test_never_across_algorithms_within_a_family(self, database):
        cache = ResultCache()
        result = _fresh(database, "uapriori", min_esup=0.15)
        cache.store_mine(_plan(database, "uapriori", min_esup=0.15), result.itemsets)
        assert cache.fetch_mine(_plan(database, "ufp-growth", min_esup=0.3)) is None

    def test_never_across_backends(self, database):
        cache = ResultCache()
        result = _fresh(database, "uapriori", min_esup=0.15)
        cache.store_mine(
            _plan(database, "uapriori", min_esup=0.15, backend="columnar"),
            result.itemsets,
        )
        assert (
            cache.fetch_mine(
                _plan(database, "uapriori", min_esup=0.3, backend="rows")
            )
            is None
        )

    def test_never_across_revisions(self, database):
        cache = ResultCache()
        result = _fresh(database, "uapriori", min_esup=0.15)
        cache.store_mine(
            _plan(database, "uapriori", min_esup=0.15, revision="r1"),
            result.itemsets,
        )
        assert (
            cache.fetch_mine(_plan(database, "uapriori", min_esup=0.3, revision="r2"))
            is None
        )
        assert (
            cache.fetch_mine(_plan(database, "uapriori", min_esup=0.15, revision="r2"))
            is None
        )


class TestTopKPrefixes:
    def _group(self, database, evaluator, *, revision="r1", min_sup=None):
        return plan_topk(
            "d",
            revision,
            evaluator,
            ranking_of(evaluator),
            len(database),
            "columnar",
            min_sup,
        )

    @pytest.mark.parametrize(
        "evaluator,min_sup", [("esup", None), ("dp", FIXED_MIN_SUP)]
    )
    def test_prefix_serves_smaller_k(self, database, evaluator, min_sup):
        cache = ResultCache()
        group = self._group(database, evaluator, min_sup=min_sup)
        big = mine_topk(database, 12, algorithm=evaluator, min_sup=min_sup)
        cache.store_topk(group, 12, big.itemsets)
        for k in (1, 5, 12):
            served = cache.fetch_topk(group, k)
            assert served is not None
            fresh = mine_topk(database, k, algorithm=evaluator, min_sup=min_sup)
            assert record_keys(served[0]) == record_keys(fresh.itemsets)

    def test_larger_k_misses_non_exhausted_entry(self, database):
        cache = ResultCache()
        group = self._group(database, "esup")
        small = mine_topk(database, 5, algorithm="esup")
        assert len(small.itemsets) == 5
        cache.store_topk(group, 5, small.itemsets)
        assert cache.fetch_topk(group, 9) is None

    def test_exhausted_entry_serves_any_k(self, database):
        cache = ResultCache()
        group = self._group(database, "esup")
        everything = mine_topk(database, 10_000, algorithm="esup")
        assert len(everything.itemsets) < 10_000
        cache.store_topk(group, 10_000, everything.itemsets)
        for k in (3, len(everything.itemsets), 50_000):
            served = cache.fetch_topk(group, k)
            assert served is not None
            fresh = mine_topk(database, k, algorithm="esup")
            assert record_keys(served[0]) == record_keys(fresh.itemsets)

    def test_min_sup_in_group_key_for_probability_ranking(self, database):
        cache = ResultCache()
        group_03 = self._group(database, "dp", min_sup=0.3)
        group_04 = self._group(database, "dp", min_sup=0.4)
        assert group_03 != group_04
        result = mine_topk(database, 6, algorithm="dp", min_sup=0.3)
        cache.store_topk(group_03, 6, result.itemsets)
        assert cache.fetch_topk(group_04, 3) is None

    def test_probability_ranking_requires_min_sup(self, database):
        with pytest.raises(ServiceError) as excinfo:
            self._group(database, resolve_evaluator("dp"), min_sup=None)
        assert excinfo.value.type == "bad-params"

    def test_revision_boundary(self, database):
        cache = ResultCache()
        result = mine_topk(database, 6, algorithm="esup")
        cache.store_topk(self._group(database, "esup", revision="r1"), 6, result.itemsets)
        assert cache.fetch_topk(self._group(database, "esup", revision="r2"), 3) is None


class TestEvictionBehaviour:
    def test_evicted_entries_vanish_from_group_index(self, database):
        result = _fresh(database, "uapriori", min_esup=0.15)
        plan = _plan(database, "uapriori", min_esup=0.15)
        # A budget below the entry's charge: the put is dropped entirely.
        cache = ResultCache(budget_bytes=64)
        cache.store_mine(plan, result.itemsets)
        assert cache.fetch_mine(plan) is None
        assert cache.fetch_mine(_plan(database, "uapriori", min_esup=0.3)) is None
        assert cache._index == {}

    def test_lru_eviction_keeps_accounting_consistent(self, database):
        result = _fresh(database, "uapriori", min_esup=0.15)
        entry_plan = _plan(database, "uapriori", min_esup=0.15)
        from repro.service.cache import _CachedEntry

        charge = _CachedEntry(result.itemsets).payload_nbytes
        cache = ResultCache(budget_bytes=charge * 2 + 10)
        thresholds = (0.15, 0.25, 0.35, 0.5)
        for threshold in thresholds:
            cache.store_mine(
                _plan(database, "uapriori", min_esup=threshold), result.itemsets
            )
        assert len(cache._lru) <= 3
        assert cache._lru.nbytes <= cache._lru.budget_bytes
        # The surviving entries still serve bitwise-correct answers.
        served = cache.fetch_mine(_plan(database, "uapriori", min_esup=0.5))
        assert served is not None
        assert record_keys(served[0]) == record_keys(result.itemsets)
