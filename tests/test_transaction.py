"""Unit tests for UncertainTransaction."""

import pytest

from repro.db import UncertainTransaction


class TestConstruction:
    def test_basic_units_are_kept(self):
        transaction = UncertainTransaction(1, {3: 0.5, 7: 1.0})
        assert len(transaction) == 2
        assert transaction.probability(3) == 0.5
        assert transaction.probability(7) == 1.0

    def test_zero_probability_units_are_dropped(self):
        transaction = UncertainTransaction(1, {3: 0.0, 7: 0.2})
        assert 3 not in transaction
        assert 7 in transaction
        assert len(transaction) == 1

    def test_probability_above_one_rejected(self):
        with pytest.raises(ValueError):
            UncertainTransaction(1, {3: 1.5})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            UncertainTransaction(1, {3: -0.1})

    def test_negative_item_rejected(self):
        with pytest.raises(ValueError):
            UncertainTransaction(1, {-2: 0.5})

    def test_items_coerced_to_int(self):
        transaction = UncertainTransaction(1, {"4": 0.5})
        assert transaction.probability(4) == 0.5

    def test_empty_transaction_is_allowed(self):
        transaction = UncertainTransaction(9, {})
        assert len(transaction) == 0
        assert transaction.items() == ()


class TestProbabilityQueries:
    def test_absent_item_has_zero_probability(self):
        transaction = UncertainTransaction(1, {3: 0.5})
        assert transaction.probability(4) == 0.0

    def test_itemset_probability_is_product(self):
        transaction = UncertainTransaction(1, {1: 0.5, 2: 0.4, 3: 0.8})
        assert transaction.itemset_probability((1, 2)) == pytest.approx(0.2)
        assert transaction.itemset_probability((1, 2, 3)) == pytest.approx(0.16)

    def test_itemset_probability_zero_when_item_missing(self):
        transaction = UncertainTransaction(1, {1: 0.5})
        assert transaction.itemset_probability((1, 2)) == 0.0

    def test_empty_itemset_probability_is_one(self):
        transaction = UncertainTransaction(1, {1: 0.5})
        assert transaction.itemset_probability(()) == 1.0

    def test_expected_length(self):
        transaction = UncertainTransaction(1, {1: 0.5, 2: 0.25})
        assert transaction.expected_length() == pytest.approx(0.75)


class TestRestriction:
    def test_restricted_to_keeps_only_listed_items(self):
        transaction = UncertainTransaction(5, {1: 0.5, 2: 0.4, 3: 0.8})
        restricted = transaction.restricted_to({1, 3})
        assert set(restricted.items()) == {1, 3}
        assert restricted.tid == 5
        assert restricted.probability(1) == 0.5

    def test_restriction_does_not_mutate_original(self):
        transaction = UncertainTransaction(5, {1: 0.5, 2: 0.4})
        transaction.restricted_to({1})
        assert 2 in transaction

    def test_iteration_yields_item_probability_pairs(self):
        transaction = UncertainTransaction(5, {1: 0.5, 2: 0.4})
        assert dict(iter(transaction)) == {1: 0.5, 2: 0.4}
