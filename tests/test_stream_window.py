"""Unit tests of the streaming ingest layer and the incremental support index."""

import random

import numpy as np
import pytest

from repro.db import UncertainDatabase
from repro.stream import IncrementalSupportIndex, SlidingWindow, TransactionStream


def make_stream(records):
    return TransactionStream.from_records(records)


class TestTransactionStream:
    def test_stamps_monotonic_sequence_ids(self):
        stream = make_stream([{1: 0.5}, {2: 1.0}, {3: 0.25}])
        assert [t.tid for t in stream] == [0, 1, 2]

    def test_replays_database_and_discards_original_tids(self):
        database = UncertainDatabase.from_records([{1: 0.5}, {2: 0.25}])
        stream = TransactionStream.from_database(database)
        replayed = stream.take(5)
        assert [t.tid for t in replayed] == [0, 1]
        assert [dict(t.units) for t in replayed] == [{1: 0.5}, {2: 0.25}]

    def test_take_stops_at_exhaustion(self):
        stream = make_stream([{1: 1.0}])
        assert len(stream.take(3)) == 1
        assert stream.take(3) == []


class TestSlidingWindow:
    def test_fills_then_evicts_slot_stably(self):
        window = SlidingWindow(capacity=3)
        stream = make_stream([{i: 1.0} for i in range(5)])
        changes = window.slide(stream, 3)
        assert [slot for slot, _, _ in changes] == [0, 1, 2]
        assert [t.tid for t in window.transactions()] == [0, 1, 2]

        changes = window.slide(stream, 2)
        # Sequences 3 and 4 land in slots 0 and 1, evicting 0 and 1.
        assert [(slot, old.tid, new.tid) for slot, old, new in changes] == [
            (0, 0, 3),
            (1, 1, 4),
        ]
        assert [t.tid for t in window.transactions()] == [2, 3, 4]

    def test_partial_fill_length_and_contents(self):
        window = SlidingWindow(capacity=4)
        window.slide(make_stream([{1: 0.5}, {2: 0.5}]), 4)
        assert len(window) == 2
        contents = window.contents()
        assert len(contents) == 2
        assert [t.tid for t in contents] == [0, 1]

    def test_item_counts_follow_evictions(self):
        window = SlidingWindow(capacity=2)
        stream = make_stream([{1: 0.5}, {1: 0.5, 2: 0.5}, {3: 1.0}])
        window.slide(stream, 2)
        assert window.active_items() == [1, 2]
        assert window.item_count(1) == 2
        window.slide(stream, 1)  # evicts the first {1} transaction
        assert window.active_items() == [1, 2, 3]
        assert window.item_count(1) == 1

    def test_contents_is_minable_database(self):
        window = SlidingWindow(capacity=3)
        window.slide(make_stream([{1: 0.5}, {1: 1.0}, {1: 0.25}]), 3)
        database = window.contents()
        assert database.expected_support((1,)) == pytest.approx(1.75)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)
        window = SlidingWindow(2)
        with pytest.raises(ValueError):
            window.slide(make_stream([]), 0)

    def test_rejects_reiterable_sources(self):
        # A list restarts from its first record on every iteration, so
        # "stream exhausted" would never be reached; slide() demands a
        # single-pass iterator (wrap re-iterables in TransactionStream).
        window = SlidingWindow(2)
        with pytest.raises(TypeError):
            window.slide([{1: 1.0}], 1)
        assert len(window.slide(make_stream([{1: 1.0}]), 1)) == 1


class TestIncrementalSupportIndex:
    def test_moments_match_database_reductions(self):
        records = [{1: 0.5, 2: 0.8}, {1: 1.0}, {2: 0.4}, {1: 0.2, 2: 0.9}]
        index = IncrementalSupportIndex(capacity=4)
        index.ensure([(1,), (2,), (1, 2)])
        index.apply(list(enumerate(records)))
        database = UncertainDatabase.from_records(records)
        for candidate in [(1,), (2,), (1, 2)]:
            assert index.expected_supports([candidate])[0] == pytest.approx(
                database.expected_support(candidate)
            )
            assert index.variances([candidate])[0] == pytest.approx(
                database.support_variance(candidate)
            )
        assert index.max_supports([(1, 2)])[0] == 2

    def test_eviction_updates_statistics(self):
        index = IncrementalSupportIndex(capacity=2)
        index.ensure([(7,)])
        index.apply([(0, {7: 0.5}), (1, {7: 0.25})])
        assert index.expected_supports([(7,)])[0] == pytest.approx(0.75)
        index.apply([(0, {8: 1.0})])
        assert index.expected_supports([(7,)])[0] == pytest.approx(0.25)
        assert index.max_supports([(7,)])[0] == 1

    def test_pmf_tail_matches_exact_dp(self):
        from repro.core.support import frequent_probability_dynamic_programming

        probabilities = [0.5, 0.25, 0.75, 1.0, 0.125]
        index = IncrementalSupportIndex(capacity=5, with_pmfs=True)
        index.ensure([(1,)])
        index.apply([(slot, {1: p}) for slot, p in enumerate(probabilities)])
        for min_count in range(7):
            expected = frequent_probability_dynamic_programming(
                probabilities, min_count
            )
            assert index.frequent_probabilities([(1,)], min_count)[0] == pytest.approx(
                expected, abs=1e-12
            )

    def test_registration_backfills_from_resident_slots(self):
        index = IncrementalSupportIndex(capacity=3)
        index.apply([(0, {1: 0.5}), (1, {1: 0.5, 2: 1.0})])
        index.ensure([(1, 2)])
        assert index.expected_supports([(1, 2)])[0] == pytest.approx(0.5)

    def test_incremental_equals_rebuild_bitwise(self):
        rng = random.Random(5)
        capacity, n_items = 37, 6
        index = IncrementalSupportIndex(capacity, with_pmfs=True)
        candidates = [(i,) for i in range(n_items)] + [(0, 1), (2, 3), (1, 4, 5)]
        index.ensure(candidates)

        def random_units():
            return {
                item: rng.uniform(0.01, 1.0)
                for item in range(n_items)
                if rng.random() < 0.6
            }

        sequence = 0
        for _ in range(40):
            step = rng.randrange(1, 9)
            index.apply(
                [((sequence + i) % capacity, random_units()) for i in range(step)]
            )
            sequence += step

        fresh = IncrementalSupportIndex(capacity, with_pmfs=True)
        fresh.apply(
            [
                (slot, units)
                for slot, units in enumerate(index.slot_units())
                if units is not None
            ]
        )
        fresh.ensure(candidates)
        assert np.array_equal(
            index.expected_supports(candidates), fresh.expected_supports(candidates)
        )
        assert np.array_equal(
            index.variances(candidates), fresh.variances(candidates)
        )
        assert np.array_equal(
            index.max_supports(candidates), fresh.max_supports(candidates)
        )
        for min_count in (1, 5, 12, 20):
            assert np.array_equal(
                index.frequent_probabilities(candidates, min_count),
                fresh.frequent_probabilities(candidates, min_count),
            )

    def test_incremental_equals_rebuild_bitwise_with_fft_spectra(self):
        # A capacity above the FFT cutoff exercises the frequency-domain
        # upper levels; incremental maintenance must still be bit-identical
        # to a from-scratch build of the same slot states.
        rng = random.Random(11)
        capacity = 200
        index = IncrementalSupportIndex(capacity, with_pmfs=True)
        candidates = [(0,), (1,), (0, 1)]
        index.ensure(candidates)
        sequence = 0
        for _ in range(15):
            step = rng.randrange(3, 20)
            index.apply(
                [
                    (
                        (sequence + i) % capacity,
                        {
                            item: rng.uniform(0.01, 1.0)
                            for item in range(2)
                            if rng.random() < 0.7
                        },
                    )
                    for i in range(step)
                ]
            )
            sequence += step
        fresh = IncrementalSupportIndex(capacity, with_pmfs=True)
        fresh.apply(
            [
                (slot, units)
                for slot, units in enumerate(index.slot_units())
                if units is not None
            ]
        )
        fresh.ensure(candidates)
        for min_count in (1, 30, 80, 140):
            assert np.array_equal(
                index.frequent_probabilities(candidates, min_count),
                fresh.frequent_probabilities(candidates, min_count),
            )

    def test_dirty_path_is_logarithmic(self):
        index = IncrementalSupportIndex(capacity=64, track_variance=False, track_nonzero=False)
        index.ensure([(1,)])
        index.apply([(slot, {1: 0.5}) for slot in range(64)])
        before = index.node_merges
        index.apply([(0, {1: 0.25})])
        # One changed leaf dirties exactly one ancestor per level.
        assert index.node_merges - before == 6  # log2(64)

    def test_retain_drops_and_reregisters(self):
        index = IncrementalSupportIndex(capacity=4)
        index.apply([(0, {1: 0.5})])
        index.ensure([(1,), (2,)])
        assert index.retain([(1,)]) == 1
        assert (2,) not in index
        with pytest.raises(KeyError):
            index.expected_supports([(2,)])
        index.ensure([(2,)])
        assert index.expected_supports([(2,)])[0] == 0.0

    def test_untracked_statistics_raise(self):
        index = IncrementalSupportIndex(
            capacity=4, track_variance=False, track_nonzero=False
        )
        index.ensure([(1,)])
        with pytest.raises(ValueError):
            index.variances([(1,)])
        with pytest.raises(ValueError):
            index.max_supports([(1,)])

    def test_compaction_preserves_statistics_bitwise(self):
        rng = random.Random(3)
        index = IncrementalSupportIndex(capacity=16, with_pmfs=True)
        index.apply(
            [
                (slot, {i: rng.uniform(0.1, 1.0) for i in range(4)})
                for slot in range(16)
            ]
        )
        keep = [(0,), (1,)]
        extra = [(2,), (3,), (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        index.ensure(keep + extra)
        before_expected = index.expected_supports(keep)
        before_tails = index.frequent_probabilities(keep, 4)
        index.retain(keep)  # triggers compaction (most columns freed)
        assert np.array_equal(index.expected_supports(keep), before_expected)
        assert np.array_equal(index.frequent_probabilities(keep, 4), before_tails)
