"""Out-of-core columnar store: round-trips, mapped views, miner equivalence.

The store's contract is *bitwise*: a database persisted with
:meth:`ColumnarStore.save` and reopened as a lazily mapped view must be
indistinguishable — columns, statistics, bitmaps, slices and every miner's
output — from the in-RAM :class:`ColumnarView` it was built from.  The
equivalence grid at the bottom runs every registered miner over
``(workers, shards)`` configurations against the columnar serial reference
(bitwise) and the rows oracle (1e-9).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil

import numpy as np
import pytest

from repro.core.miner import mine
from repro.core.registry import algorithm_names, get_algorithm
from repro.db import UncertainDatabase
from repro.db.cache import MAPPED_CHARGE_BYTES, ByteBudgetLRU, _is_file_backed
from repro.db.store import (
    STORE_ENV,
    ColumnarStore,
    MappedColumnarView,
    StoreDatabase,
    StoreError,
    resolve_store_path,
)

from helpers import make_random_database


@pytest.fixture(scope="module")
def database():
    return make_random_database(n_transactions=60, n_items=8, density=0.5, seed=21)


@pytest.fixture(scope="module")
def store(database, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store") / "db-store"
    return ColumnarStore.save(database, str(directory))


class TestRoundTrip:
    def test_columns_bitwise(self, database, store):
        view = database.columnar()
        mapped = store.view()
        assert mapped.items() == view.items()
        for item in view.items():
            rows, probs = view.column(item)
            mapped_rows, mapped_probs = mapped.column(item)
            assert np.array_equal(np.asarray(mapped_rows), rows)
            assert np.array_equal(np.asarray(mapped_probs), probs)

    def test_statistics_served_from_manifest_bitwise(self, database, store):
        # JSON round-trips IEEE doubles exactly, so the manifest statistics
        # must equal the in-RAM reductions bit for bit.
        assert store.view().item_statistics() == database.columnar().item_statistics()

    def test_bitmaps_bitwise(self, database, store):
        view = database.columnar()
        mapped = store.view()
        for item in view.items():
            assert np.array_equal(
                np.asarray(mapped.item_bitmap(item)), view.item_bitmap(item)
            )

    def test_sizes_and_identity(self, database, store):
        view = database.columnar()
        assert len(store.view()) == len(view)
        assert store.n_transactions == len(database)
        assert store.view().nnz() == view.nnz()
        assert store.nnz == view.nnz()
        assert store.name == database.name

    def test_reopen_is_cached_per_process(self, store):
        assert ColumnarStore.open(store.directory) is ColumnarStore.open(
            store.directory
        )

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StoreError, match="manifest.json is missing"):
            ColumnarStore.open(str(tmp_path / "nowhere"))

    def test_open_rejects_foreign_manifest(self, store, tmp_path):
        clone = tmp_path / "clone"
        shutil.copytree(store.directory, clone)
        manifest_path = clone / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "not-a-store"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="not a repro-columnar-store manifest"):
            ColumnarStore.open(str(clone))

    def test_resolve_store_path(self, store, monkeypatch):
        assert resolve_store_path(store.directory) == store.directory
        monkeypatch.setenv(STORE_ENV, store.directory)
        assert resolve_store_path() == store.directory
        monkeypatch.delenv(STORE_ENV)
        with pytest.raises(StoreError):
            resolve_store_path()


class TestWriterErrors:
    def test_items_must_ascend(self, tmp_path):
        with pytest.raises(StoreError, match="ascending item order"):
            with ColumnarStore.writer(str(tmp_path / "s"), 4) as writer:
                writer.add_column(2, np.array([0]), np.array([0.5]))
                writer.add_column(1, np.array([1]), np.array([0.5]))

    def test_rows_must_fit_database(self, tmp_path):
        with pytest.raises(StoreError, match="outside"):
            with ColumnarStore.writer(str(tmp_path / "s"), 4) as writer:
                writer.add_column(1, np.array([0, 4]), np.array([0.5, 0.5]))

    def test_rows_and_probs_must_align(self, tmp_path):
        with pytest.raises(StoreError, match="equal length"):
            with ColumnarStore.writer(str(tmp_path / "s"), 4) as writer:
                writer.add_column(1, np.array([0, 1]), np.array([0.5]))

    def test_rows_must_strictly_increase(self, tmp_path):
        with pytest.raises(StoreError, match="strictly increasing"):
            with ColumnarStore.writer(str(tmp_path / "s"), 4) as writer:
                writer.add_column(1, np.array([1, 1]), np.array([0.5, 0.5]))

    def test_aborted_writer_leaves_no_manifest(self, tmp_path):
        directory = tmp_path / "aborted"
        with pytest.raises(RuntimeError, match="boom"):
            with ColumnarStore.writer(str(directory), 4) as writer:
                writer.add_column(1, np.array([0]), np.array([0.5]))
                raise RuntimeError("boom")
        assert not (directory / "manifest.json").exists()
        with pytest.raises(StoreError, match="manifest.json is missing"):
            ColumnarStore.open(str(directory))


class TestMappedView:
    def test_full_view_columns_are_file_backed(self, store):
        rows, probs = store.view().column(store.view().items()[0])
        assert _is_file_backed(rows)
        assert _is_file_backed(probs)
        assert not _is_file_backed(np.array(rows))

    def test_slices_match_in_ram_slices(self, database, store):
        view = database.columnar()
        mapped = store.view()
        for start, stop in [(0, 20), (15, 45), (30, 60), (7, 8)]:
            expected = view.slice_rows(start, stop)
            sliced = mapped.slice_rows(start, stop)
            assert isinstance(sliced, MappedColumnarView)
            assert len(sliced) == len(expected)
            assert sliced.items() == expected.items()
            assert sliced.nnz() == expected.nnz()
            for item in expected.items():
                rows, probs = expected.column(item)
                mapped_rows, mapped_probs = sliced.column(item)
                assert np.array_equal(np.asarray(mapped_rows), rows)
                assert np.array_equal(np.asarray(mapped_probs), probs)
            assert sliced.item_statistics() == expected.item_statistics()
            for item in expected.items():
                assert np.array_equal(
                    np.asarray(sliced.item_bitmap(item)),
                    expected.item_bitmap(item),
                )

    def test_nested_slicing(self, database, store):
        expected = database.columnar().slice_rows(10, 50).slice_rows(5, 30)
        sliced = store.view().slice_rows(10, 50).slice_rows(5, 30)
        for item in expected.items():
            rows, probs = expected.column(item)
            mapped_rows, mapped_probs = sliced.column(item)
            assert np.array_equal(np.asarray(mapped_rows), rows)
            assert np.array_equal(np.asarray(mapped_probs), probs)

    def test_pickles_as_descriptor(self, database, store):
        view = store.view()
        payload = pickle.dumps(view)
        # The whole point: a mapped view travels as (directory, start, stop),
        # not as its data planes.
        assert len(payload) < 512
        clone = pickle.loads(payload)
        for item in view.items():
            rows, probs = view.column(item)
            clone_rows, clone_probs = clone.column(item)
            assert np.array_equal(np.asarray(clone_rows), np.asarray(rows))
            assert np.array_equal(np.asarray(clone_probs), np.asarray(probs))

    def test_store_source_round_trip(self, store):
        directory, start, stop = store.view().slice_rows(5, 25).store_source
        assert directory == store.directory
        assert (start, stop) == (5, 25)

    def test_lru_charges_mapped_columns_nominally(self, tmp_path):
        directory = tmp_path / "lru-store"
        with ColumnarStore.writer(str(directory), 200) as writer:
            writer.add_column(
                1, np.arange(200, dtype=np.int64), np.full(200, 0.5)
            )
        mapped_rows = ColumnarStore.open(str(directory)).view().column(1)[0]
        heap_rows = np.array(mapped_rows)
        assert mapped_rows.nbytes == 1600
        cache = ByteBudgetLRU(2 * MAPPED_CHARGE_BYTES)
        cache.put("mapped", mapped_rows)
        assert cache.get("mapped") is mapped_rows
        cache.put("heap", heap_rows)  # 1600 heap bytes blow the 1KiB budget
        assert cache.get("heap") is None
        assert cache.get("mapped") is mapped_rows


class TestStoreDatabase:
    def test_transactions_match_source(self, database, store):
        store_db = store.database()
        assert isinstance(store_db, StoreDatabase)
        assert isinstance(store_db, UncertainDatabase)
        assert len(store_db) == len(database)
        assert store_db.items() == database.items()
        for ours, theirs in zip(store_db, database):
            assert ours.units == theirs.units

    def test_stats_served_from_manifest(self, database, store):
        ours = store.database().stats()
        theirs = database.stats()
        assert ours.n_transactions == theirs.n_transactions
        assert ours.n_items == theirs.n_items
        assert ours.average_length == pytest.approx(theirs.average_length)
        assert ours.density == pytest.approx(theirs.density)
        assert ours.average_probability == pytest.approx(theirs.average_probability)

    def test_columnar_is_mapped(self, store):
        assert isinstance(store.database().columnar(), MappedColumnarView)


def _thresholds(algorithm: str) -> dict:
    if get_algorithm(algorithm).family == "expected":
        return {"min_esup": 0.2}
    return {"min_sup": 0.3, "pft": 0.7}


def _assert_bitwise(result, reference):
    assert result.itemset_keys() == reference.itemset_keys()
    twins = {record.itemset.items: record for record in reference}
    for record in result:
        twin = twins[record.itemset.items]
        assert record.expected_support == twin.expected_support
        assert record.variance == twin.variance
        assert record.frequent_probability == twin.frequent_probability


def _assert_close(result, reference, tolerance=1e-9):
    assert result.itemset_keys() == reference.itemset_keys()
    twins = {record.itemset.items: record for record in reference}
    for record in result:
        twin = twins[record.itemset.items]
        assert record.expected_support == pytest.approx(
            twin.expected_support, abs=tolerance
        )
        if (
            record.frequent_probability is not None
            and twin.frequent_probability is not None
        ):
            assert record.frequent_probability == pytest.approx(
                twin.frequent_probability, abs=tolerance
            )


class TestMinerEquivalenceGrid:
    """rows == columnar == memmap-store for every registered miner."""

    @pytest.mark.parametrize("workers,shards", [(1, 1), (1, 3), (2, 2)])
    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_store_grid(self, database, store, algorithm, workers, shards):
        thresholds = _thresholds(algorithm)
        columnar = mine(database, algorithm=algorithm, **thresholds)
        mapped = mine(
            store.database(),
            algorithm=algorithm,
            workers=workers,
            shards=shards,
            **thresholds,
        )
        _assert_bitwise(mapped, columnar)
        if (workers, shards) == (1, 1):
            rows = mine(database, algorithm=algorithm, backend="rows", **thresholds)
            _assert_close(mapped, rows)
