"""Tests for the precision/recall metrics."""

import pytest

from repro.core import FrequentItemset, Itemset, MiningResult
from repro.eval import compare_results, f1_score, precision, recall


def result_of(itemsets, probabilities=None):
    records = []
    for index, items in enumerate(itemsets):
        probability = None
        if probabilities is not None:
            probability = probabilities[index]
        records.append(FrequentItemset(Itemset(items), float(index + 1), None, probability))
    return MiningResult(records)


class TestPrecisionRecall:
    def test_perfect_agreement(self):
        exact = result_of([(1,), (2,), (1, 2)])
        approx = result_of([(1,), (2,), (1, 2)])
        assert precision(approx, exact) == 1.0
        assert recall(approx, exact) == 1.0
        assert f1_score(approx, exact) == 1.0

    def test_false_positive_lowers_precision_only(self):
        exact = result_of([(1,), (2,)])
        approx = result_of([(1,), (2,), (3,)])
        assert precision(approx, exact) == pytest.approx(2 / 3)
        assert recall(approx, exact) == 1.0

    def test_false_negative_lowers_recall_only(self):
        exact = result_of([(1,), (2,), (3,)])
        approx = result_of([(1,)])
        assert precision(approx, exact) == 1.0
        assert recall(approx, exact) == pytest.approx(1 / 3)

    def test_empty_approximate_result(self):
        exact = result_of([(1,)])
        approx = result_of([])
        assert precision(approx, exact) == 1.0
        assert recall(approx, exact) == 0.0
        assert f1_score(approx, exact) == 0.0

    def test_empty_exact_result(self):
        exact = result_of([])
        approx = result_of([(1,)])
        assert recall(approx, exact) == 1.0
        assert precision(approx, exact) == 0.0

    def test_both_empty(self):
        assert precision(result_of([]), result_of([])) == 1.0
        assert recall(result_of([]), result_of([])) == 1.0


class TestCompareResults:
    def test_counts(self):
        exact = result_of([(1,), (2,), (3,)])
        approx = result_of([(1,), (2,), (4,)])
        report = compare_results(approx, exact)
        assert report.n_common == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.n_exact == 3
        assert report.n_approximate == 3

    def test_max_probability_error(self):
        exact = result_of([(1,), (2,)], probabilities=[0.9, 0.8])
        approx = result_of([(1,), (2,)], probabilities=[0.92, 0.7])
        report = compare_results(approx, exact)
        assert report.max_probability_error == pytest.approx(0.1)

    def test_probability_error_none_when_missing(self):
        exact = result_of([(1,)], probabilities=[0.9])
        approx = result_of([(1,)])  # no probabilities (PDUApriori style)
        report = compare_results(approx, exact)
        assert report.max_probability_error is None

    def test_as_dict_roundtrip(self):
        report = compare_results(result_of([(1,)]), result_of([(1,)]))
        flattened = report.as_dict()
        assert flattened["precision"] == 1.0
        assert flattened["n_common"] == 1.0


class TestEmptyResultConventions:
    """The pinned empty-result conventions: no division by zero is reachable
    for any combination of empty / non-empty results."""

    def test_f1_both_empty(self):
        assert f1_score(result_of([]), result_of([])) == 1.0

    def test_f1_empty_approximate(self):
        assert f1_score(result_of([]), result_of([(1,)])) == 0.0

    def test_f1_empty_exact(self):
        assert f1_score(result_of([(1,)]), result_of([])) == 0.0

    def test_disjoint_nonempty_results(self):
        approx, exact = result_of([(1,)]), result_of([(2,)])
        assert precision(approx, exact) == 0.0
        assert recall(approx, exact) == 0.0
        assert f1_score(approx, exact) == 0.0  # harmonic mean of (0, 0)

    def test_compare_results_both_empty(self):
        report = compare_results(result_of([]), result_of([]))
        assert (report.precision, report.recall, report.f1) == (1.0, 1.0, 1.0)
        assert report.n_approximate == report.n_exact == report.n_common == 0
        assert report.false_positives == report.false_negatives == 0
        assert report.max_probability_error is None

    def test_compare_results_empty_approximate(self):
        report = compare_results(result_of([]), result_of([(1,)]))
        assert report.precision == 1.0
        assert report.recall == 0.0
        assert report.f1 == 0.0
        assert report.false_negatives == 1

    def test_compare_results_empty_exact(self):
        report = compare_results(result_of([(1,)]), result_of([]))
        assert report.precision == 0.0
        assert report.recall == 1.0
        assert report.f1 == 0.0
        assert report.false_positives == 1
