"""The unified ExecutionPlan: precedence, serialization, scoping, aliases.

Pins the contracts of :mod:`repro.plan`:

* the four-tier resolution pipeline resolves **every** knob as
  ``explicit > scoped plan > environment > planner default`` (the full
  parametrized matrix, one case per knob per adjacent tier pair),
* ``to_dict``/``from_dict`` round-trip and unknown keys are rejected,
* ``plan_scope`` is contextvar-backed: concurrent threads never observe
  each other's plans, and no tier writes to ``os.environ``,
* the pre-plan per-knob environment variables keep working as deprecated
  aliases, each warning exactly once per process,
* ``materialize_plan`` is deterministic and auto-planned mines are
  bitwise identical to the same resolved plan passed explicitly,
* two concurrent *service* requests with different bitset/fanout plans
  never observe each other's configuration (the scope-vs-thread bleed
  regression the plan pipeline exists to fix).
"""

from __future__ import annotations

import os
import threading
import time
import warnings

import pytest

from repro.core.miner import mine
from repro.plan import (
    KNOBS,
    PLAN_ENV,
    ExecutionPlan,
    active_plan,
    ensure_plan,
    materialize_plan,
    parse_plan_spec,
    plan_request_is_auto,
    plan_scope,
    reset_deprecation_warnings,
    resolve_knob,
)
from repro.service import (
    MiningClient,
    MiningServer,
    decode_records,
    record_keys,
)

from helpers import make_random_database


@pytest.fixture(autouse=True)
def _clean_plan_env(monkeypatch):
    """Isolate every test from ambient knob variables and warning state."""
    for knob in KNOBS.values():
        monkeypatch.delenv(knob.env, raising=False)
    monkeypatch.delenv(PLAN_ENV, raising=False)
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


# -- the precedence matrix -------------------------------------------------------------
# Per knob: one (value, parsed) pair per tier, adjacent tiers always
# yielding *different* parsed values so each assertion below can only pass
# if the intended tier actually won.  Environment values are the raw
# strings a shell would set.

MATRIX = {
    "backend": (("rows", "rows"), ("columnar", "columnar"),
                ("rows", "rows"), ("columnar", "columnar")),
    "bitset": ((False, False), ("on", True), ("off", False), (True, True)),
    "fanout": (("shm", "shm"), ("pickle", "pickle"),
               ("shm", "shm"), ("pickle", "pickle")),
    "workers": ((5, 5), (4, 4), ("3", 3), (2, 2)),
    "shards": ((6, 6), (5, 5), ("4", 4), (3, 3)),
    "dense_crossover": ((0.9, 0.9), (0.8, 0.8), ("0.7", 0.7), (0.6, 0.6)),
    "conv_span": ((96, 96), (128, 128), ("192", 192), (256, 256)),
    "dp_block_bytes": ((1 << 20, 1 << 20), (2 << 20, 2 << 20),
                       ("3m", 3 << 20), (4 << 20, 4 << 20)),
    "dense_cache_bytes": ((1 << 20, 1 << 20), (2 << 20, 2 << 20),
                          ("3m", 3 << 20), (4 << 20, 4 << 20)),
    "bitmap_cache_bytes": ((1 << 20, 1 << 20), (2 << 20, 2 << 20),
                           ("3m", 3 << 20), (4 << 20, 4 << 20)),
    "prefix_cache_bytes": ((1 << 20, 1 << 20), (2 << 20, 2 << 20),
                           ("3m", 3 << 20), (4 << 20, 4 << 20)),
    "mapped_cache_bytes": ((1 << 20, 1 << 20), (2 << 20, 2 << 20),
                           ("3m", 3 << 20), (4 << 20, 4 << 20)),
    "faults": (("seed=1", "seed=1"), ("seed=2", "seed=2"),
               ("seed=3", "seed=3"), ("seed=4", "seed=4")),
}


class TestPrecedenceMatrix:
    @pytest.mark.parametrize("name", sorted(KNOBS))
    def test_explicit_beats_scope_beats_env_beats_planned(self, name, monkeypatch):
        assert name in MATRIX, f"knob {name!r} missing from the precedence matrix"
        explicit, scope, env, planned = MATRIX[name]
        planned_plan = ExecutionPlan(**{name: planned[0]})
        monkeypatch.setenv(KNOBS[name].env, env[0])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with plan_scope(ExecutionPlan(**{name: scope[0]})):
                got = resolve_knob(name, explicit[0], planned=planned_plan)
                assert got == explicit[1]
                assert resolve_knob(name, planned=planned_plan) == scope[1]
            assert resolve_knob(name, planned=planned_plan) == env[1]
            monkeypatch.delenv(KNOBS[name].env)
            assert resolve_knob(name, planned=planned_plan) == planned[1]

    @pytest.mark.parametrize(
        "name", [name for name, knob in KNOBS.items() if knob.default is not None]
    )
    def test_static_default_tier(self, name):
        assert resolve_knob(name) == KNOBS[name].default

    def test_dynamic_defaults(self):
        from repro.db.database import UncertainDatabase

        assert resolve_knob("backend") == UncertainDatabase.default_backend
        # shards follow the resolved worker count
        with plan_scope(ExecutionPlan(workers=3)):
            assert resolve_knob("shards") == 3
        assert resolve_knob("shards", workers=5) == 5

    def test_composite_plan_env_and_per_knob_override(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "workers=4,bitset=off")
        assert resolve_knob("workers") == 4
        assert resolve_knob("bitset") is False
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            # The per-knob variable wins over the REPRO_PLAN entry...
            monkeypatch.setenv("REPRO_WORKERS", "2")
            assert resolve_knob("workers") == 2
            # ...and an *empty* per-knob variable counts as unset.
            monkeypatch.setenv("REPRO_WORKERS", "")
            assert resolve_knob("workers") == 4

    def test_resolution_never_mutates_environ(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "workers=4")
        before = dict(os.environ)
        with plan_scope(ExecutionPlan(bitset=False, fanout="pickle")):
            for name in KNOBS:
                resolve_knob(name)
        materialize_plan("workers=2,bitset=off")
        assert dict(os.environ) == before


# -- plan object: parsing, round-trips, algebra ----------------------------------------


class TestExecutionPlan:
    def test_construction_normalizes_values(self):
        plan = ExecutionPlan(bitset="off", workers="auto", dense_cache_bytes="2m")
        assert plan.bitset is False
        assert plan.workers >= 1
        assert plan.dense_cache_bytes == 2 << 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "bogus"},
            {"bitset": "maybe"},
            {"fanout": "carrier-pigeon"},
            {"workers": -1},
            {"shards": 0},
            {"dense_crossover": 1.5},
            {"conv_span": -1},
            {"dp_block_bytes": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPlan(**kwargs)

    def test_round_trip_through_dict(self):
        plan = ExecutionPlan(
            backend="rows", bitset=False, fanout="pickle", workers=2, shards=4,
            dense_crossover=0.5, conv_span=128, dp_block_bytes=1 << 20,
            dense_cache_bytes=1 << 20, bitmap_cache_bytes=1 << 20,
            prefix_cache_bytes=1 << 20, mapped_cache_bytes=1 << 20, auto=True,
        )
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan
        partial = ExecutionPlan(workers=2)
        assert ExecutionPlan.from_dict(partial.to_dict()) == partial
        assert partial.to_dict() == {"workers": 2}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown plan knob"):
            ExecutionPlan.from_dict({"workers": 2, "wrokers": 3})

    def test_merged_over_layers_set_fields(self):
        base = ExecutionPlan(workers=2, bitset=True)
        over = ExecutionPlan(bitset=False)
        merged = over.merged_over(base)
        assert merged.workers == 2 and merged.bitset is False
        assert ExecutionPlan().is_empty()
        assert not base.is_empty()

    @pytest.mark.parametrize(
        ("spec", "expected"),
        [
            ("auto", {"auto": True}),
            ("workers=2,bitset=off", {"workers": 2, "bitset": False}),
            ("auto,workers=2", {"auto": True, "workers": 2}),
            ("dense_cache_bytes=64m", {"dense_cache_bytes": 64 << 20}),
            (" workers = 2 , ", {"workers": 2}),
        ],
    )
    def test_parse_plan_spec(self, spec, expected):
        assert parse_plan_spec(spec).to_dict() == expected

    @pytest.mark.parametrize("spec", ["frobnicate", "turbo=on", "workers=-1"])
    def test_parse_plan_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_plan_spec(spec)

    def test_ensure_plan_spellings(self):
        assert ensure_plan(None) is None
        plan = ExecutionPlan(workers=2)
        assert ensure_plan(plan) is plan
        assert ensure_plan({"workers": 2}) == plan
        assert ensure_plan("workers=2") == plan


# -- scoping: nesting and thread isolation ---------------------------------------------


class TestPlanScope:
    def test_scopes_nest_and_inner_shadows(self):
        with plan_scope(ExecutionPlan(workers=2, bitset=True)):
            with plan_scope(ExecutionPlan(bitset=False)):
                assert resolve_knob("workers") == 2  # inherited from outer
                assert resolve_knob("bitset") is False  # shadowed by inner
            assert resolve_knob("bitset") is True
        assert active_plan() is None

    def test_none_scope_is_noop(self):
        with plan_scope(None):
            assert active_plan() is None

    def test_threads_never_observe_each_others_scope(self):
        barrier = threading.Barrier(2)
        observed = {}

        def worker(label: str, workers: int, pause: float) -> None:
            with plan_scope(ExecutionPlan(workers=workers)):
                barrier.wait(timeout=10.0)
                time.sleep(pause)  # interleave: both scopes live at once
                observed[label] = resolve_knob("workers")

        threads = [
            threading.Thread(target=worker, args=("a", 3, 0.01)),
            threading.Thread(target=worker, args=("b", 7, 0.03)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert observed == {"a": 3, "b": 7}
        assert active_plan() is None  # the main thread saw neither


# -- legacy environment aliases --------------------------------------------------------

LEGACY_SAMPLES = {
    "backend": ("rows", "rows"),
    "bitset": ("off", False),
    "fanout": ("pickle", "pickle"),
    "workers": ("3", 3),
    "shards": ("2", 2),
    "dp_block_bytes": ("1048576", 1 << 20),
    "dense_cache_bytes": ("2m", 2 << 20),
    "bitmap_cache_bytes": ("2m", 2 << 20),
    "prefix_cache_bytes": ("2m", 2 << 20),
    "mapped_cache_bytes": ("2m", 2 << 20),
}


class TestLegacyEnvAliases:
    @pytest.mark.parametrize(
        "name", [name for name, knob in KNOBS.items() if knob.legacy]
    )
    def test_alias_still_works_and_warns_exactly_once(self, name, monkeypatch):
        knob = KNOBS[name]
        raw, expected = LEGACY_SAMPLES[name]
        monkeypatch.setenv(knob.env, raw)
        with pytest.warns(DeprecationWarning, match=knob.env):
            assert resolve_knob(name) == expected
        # The second read must be silent: one warning per variable per process.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve_knob(name) == expected

    def test_modern_variables_do_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_SPAN", "128")
        monkeypatch.setenv("REPRO_DENSE_CROSSOVER", "0.5")
        monkeypatch.setenv(PLAN_ENV, "workers=2")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve_knob("conv_span") == 128
            assert resolve_knob("dense_crossover") == 0.5
            assert resolve_knob("workers") == 2


# -- materialization and the auto planner ----------------------------------------------


class TestMaterialize:
    def test_materialized_plan_is_fully_specified(self):
        database = make_random_database(seed=11)
        plan = materialize_plan("auto", database)
        assert not plan.auto
        assert all(getattr(plan, name) is not None for name in KNOBS)

    def test_materialization_is_deterministic(self):
        database = make_random_database(seed=11)
        assert materialize_plan("auto", database) == materialize_plan("auto", database)

    def test_explicit_and_env_beat_the_planner(self, monkeypatch):
        database = make_random_database(seed=11)
        monkeypatch.setenv("REPRO_CONV_SPAN", "99")
        plan = materialize_plan(
            "auto,bitset=off", database, explicit={"workers": 6}
        )
        assert plan.workers == 6  # tier 1
        assert plan.bitset is False  # tier 2 (the request's pinned knob)
        assert plan.conv_span == 99  # tier 3
        assert plan.backend == "columnar"  # tier 4 (the planner's choice)

    def test_plan_env_auto_request(self, monkeypatch):
        assert not plan_request_is_auto(None)
        monkeypatch.setenv(PLAN_ENV, "auto")
        assert plan_request_is_auto(None)
        assert plan_request_is_auto("auto")
        assert not plan_request_is_auto("workers=2")

    def test_auto_mine_bitwise_equals_explicit_plan(self):
        database = make_random_database(
            n_transactions=60, n_items=10, density=0.5, seed=3
        )
        resolved = materialize_plan("auto", database)
        auto = mine(database, algorithm="dcb", min_sup=0.2, pft=0.9, plan="auto")
        explicit = mine(
            database, algorithm="dcb", min_sup=0.2, pft=0.9, plan=resolved.to_dict()
        )
        assert record_keys(auto.itemsets) == record_keys(explicit.itemsets)


class TestPlannerQueryThresholds:
    """The planner consults the query thresholds (uniformly exposed on
    ``MinerSpec.query_thresholds()``) for its search-depth estimate."""

    def _planner_and_features(self):
        from repro.plan import DatasetFeatures, Planner

        database = make_random_database(
            n_transactions=60, n_items=10, density=0.5, seed=3
        )
        return Planner(), DatasetFeatures.from_database(database)

    def test_depth_rationale_names_the_thresholds(self):
        from repro.core.thresholds import QueryThresholds

        planner, features = self._planner_and_features()
        decision = planner.plan(
            features, thresholds=QueryThresholds(min_support=0.3, pft=0.7)
        )
        assert "min_support=0.3" in decision.rationale["depth"]
        assert "pft=0.7" in decision.rationale["depth"]

    def test_depth_rationale_without_thresholds_says_so(self):
        planner, features = self._planner_and_features()
        decision = planner.plan(features)
        assert "no query thresholds" in decision.rationale["depth"]

    def test_looser_support_estimates_deeper_searches(self):
        from repro.core.thresholds import QueryThresholds

        planner, features = self._planner_and_features()
        loose = planner.estimated_depth(
            features, QueryThresholds(min_support=0.05)
        )
        tight = planner.estimated_depth(
            features, QueryThresholds(min_support=0.9)
        )
        assert loose > tight

    def test_miner_specs_feed_the_planner_uniformly(self):
        """Both definitions' specs expose the planner-facing thresholds
        through the same ``query_thresholds()`` seam the batch miners pass
        to ``materialize_plan``."""
        from repro.algorithms.uapriori import UApriori
        from repro.algorithms.dp import DPMiner
        from repro.core.thresholds import (
            ExpectedSupportThreshold,
            ProbabilisticThreshold,
        )

        expected_spec = UApriori().spec(ExpectedSupportThreshold(0.2))
        assert expected_spec.query_thresholds().min_support == 0.2

        probabilistic_spec = DPMiner().spec(ProbabilisticThreshold(0.3, 0.7))
        query = probabilistic_spec.query_thresholds()
        assert query.min_support == 0.3
        assert query.pft == 0.7

    def test_cli_plan_explain_threshold_passthrough(self, capsys, tmp_path):
        from repro.cli import main
        from repro.db.io import write_uncertain

        database = make_random_database(
            n_transactions=30, n_items=6, density=0.6, seed=9
        )
        path = tmp_path / "tiny.txt"
        write_uncertain(database, path)
        assert (
            main(
                [
                    "plan-explain",
                    "--dataset",
                    str(path),
                    "--plan",
                    "auto",
                    "--min-sup",
                    "0.3",
                    "--pft",
                    "0.7",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "min_support=0.3" in output
        assert "pft=0.7" in output


# -- the service: no scope-vs-thread bleed ---------------------------------------------


def _inline_spec(database) -> dict:
    return {
        "kind": "inline",
        "records": [
            [[item, probability] for item, probability in sorted(t.units.items())]
            for t in database.transactions
        ],
    }


class TestServicePlanIsolation:
    def test_concurrent_requests_with_different_plans_never_bleed(self):
        database = make_random_database(
            n_transactions=40, n_items=6, density=0.5, seed=31
        )
        expected = record_keys(
            mine(database, algorithm="uapriori", min_esup=0.2).itemsets
        )
        plans = [
            {"bitset": True, "fanout": "shm"},
            {"bitset": False, "fanout": "pickle"},
        ]
        env_before = dict(os.environ)
        barrier = threading.Barrier(len(plans))
        failures = []
        with MiningServer(max_workers=4, max_queue=32) as server:
            server.registry.register("shared", _inline_spec(database))
            host, port = server.address

            def drive(plan: dict) -> None:
                try:
                    with MiningClient(host, port) as client:
                        for _ in range(6):
                            barrier.wait(timeout=30.0)  # force overlap each round
                            reply = client.mine(
                                "shared", algorithm="uapriori", min_esup=0.2,
                                plan=dict(plan), cache=False,
                            )
                            for name, value in plan.items():
                                if reply["plan"][name] != value:
                                    failures.append(
                                        (name, value, reply["plan"][name])
                                    )
                            got = record_keys(decode_records(reply["itemsets"]))
                            if got != expected:
                                failures.append(("result-bleed", plan))
                except Exception as error:  # noqa: BLE001 - collected below
                    barrier.abort()
                    failures.append(("exception", repr(error)))

            threads = [
                threading.Thread(target=drive, args=(plan,)) for plan in plans
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(thread.is_alive() for thread in threads)
        assert failures == []
        # Per-request plans are pure resolution: the process env is untouched.
        assert dict(os.environ) == env_before
