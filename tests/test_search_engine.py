"""Golden-equivalence suite: the MinerSpec engine is held to a bitwise contract.

``tests/goldens/search_engine_goldens.json`` was captured at the last
pre-refactor commit by ``tools/capture_search_goldens.py``: every registered
miner over the full equivalence grid (backend x (workers, shards) x bitset),
the five top-k evaluators over the same grid, and the streaming miners'
per-slide record series — all serialized with ``repr`` floats, so equality
of the serialized form is bitwise equality of the mining results.

This module replays the exact same grid through the refactored
:class:`~repro.core.search.LevelwiseSearch` engine and asserts byte
equality, plus the two satellites that ride on the engine:

* the apriori join's maintained-sort-order contract (``presorted=True``
  produces the identical candidate list the sorting join produced); and
* the uniform statistics accounting, pinned per miner (see the
  :class:`~repro.core.results.MiningStatistics` docstring for the rules).
"""

from __future__ import annotations

import importlib.util
import json
import os
import random

import pytest

from helpers import make_random_database

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "goldens", "search_engine_goldens.json"
)

# The capture harness is the single source of truth for the grid, the
# thresholds, the per-miner options and the serialization; importing it here
# means the replay can never drift from the capture.
_spec = importlib.util.spec_from_file_location(
    "capture_search_goldens",
    os.path.join(_REPO_ROOT, "tools", "capture_search_goldens.py"),
)
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)

with open(_GOLDEN_PATH, encoding="utf-8") as _handle:
    GOLDENS = json.load(_handle)

THRESHOLD_KEYS = sorted(GOLDENS["threshold_grid"])
TOPK_KEYS = sorted(GOLDENS["topk_grid"])
STREAMING_KEYS = sorted(GOLDENS["streaming"])


def _parse_key(key):
    algorithm, backend, ws, bitset = key.split("|")
    workers, shards = ws[1:].split("s")
    return algorithm, backend, int(workers), int(shards), bitset == "bitset=on"


@pytest.fixture(scope="module")
def database():
    return make_random_database(**GOLDENS["dataset"])


# -- the bitwise contract --------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.mark.parametrize("key", THRESHOLD_KEYS)
    def test_threshold_grid_bitwise(self, database, key):
        from repro.core.miner import mine
        from repro.core.registry import get_algorithm

        algorithm, backend, workers, shards, bitset = _parse_key(key)
        kwargs = dict(
            harness.MINER_OPTIONS[algorithm],
            backend=backend,
            workers=workers,
            shards=shards,
            plan={"bitset": bitset},
        )
        if get_algorithm(algorithm).family == "expected":
            result = mine(database, algorithm, min_esup=harness.MIN_ESUP, **kwargs)
        else:
            result = mine(
                database, algorithm, min_sup=harness.MIN_SUP, pft=harness.PFT, **kwargs
            )
        assert harness.serialize_records(result) == GOLDENS["threshold_grid"][key]

    @pytest.mark.parametrize("key", TOPK_KEYS)
    def test_topk_grid_bitwise(self, database, key):
        from repro.algorithms.topk import TopKMiner

        name, backend, workers, shards, bitset = _parse_key(key)
        evaluator = name[len("topk-"):]
        miner = TopKMiner(
            evaluator=evaluator,
            backend=backend,
            workers=workers,
            shards=shards,
            plan={"bitset": bitset},
        )
        min_sup = None if evaluator == "esup" else harness.MIN_SUP
        result = miner.mine(database, GOLDENS["topk_k"], min_sup=min_sup)
        assert harness.serialize_records(result.itemsets) == GOLDENS["topk_grid"][key]

    @pytest.mark.parametrize("key", STREAMING_KEYS)
    def test_streaming_bitwise(self, database, key):
        from repro.stream import (
            StreamingDP,
            StreamingTopK,
            StreamingUApriori,
            TransactionStream,
        )

        stream_config = GOLDENS["stream"]
        window = stream_config["window"]
        miners = {
            "stream-uapriori": lambda: StreamingUApriori(window, harness.MIN_ESUP),
            "stream-dp": lambda: StreamingDP(window, harness.MIN_SUP, harness.PFT),
            "stream-topk-esup": lambda: StreamingTopK(window, k=5),
            "stream-topk-dp": lambda: StreamingTopK(
                window, k=5, evaluator="dp", min_sup=harness.MIN_SUP
            ),
        }
        stream = TransactionStream.from_records(
            [dict(transaction.units) for transaction in database]
        )
        per_slide = [
            harness.serialize_records(result)
            for result in miners[key]().results(
                stream, stream_config["step"], max_slides=stream_config["slides"]
            )
        ]
        assert per_slide == GOLDENS["streaming"][key]


# -- satellite: the maintained-sort-order join ------------------------------------------
class TestAprioriJoinPresorted:
    def _random_level(self, rng, size):
        universe = range(20)
        level = {tuple(sorted(rng.sample(universe, size))) for _ in range(40)}
        return sorted(level)

    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_presorted_join_output_unchanged(self, size):
        """``presorted=True`` on a sorted level == the sorting join, exactly."""
        from repro.algorithms.common import apriori_join

        rng = random.Random(size)
        level = self._random_level(rng, size)
        shuffled = list(level)
        rng.shuffle(shuffled)
        expected = apriori_join(shuffled)  # the engine's pre-refactor call shape
        assert apriori_join(level, presorted=True) == expected
        assert apriori_join(level) == expected

    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_join_of_sorted_level_is_sorted(self, size):
        """The invariant that lets the driver sort once per run: sorted in,
        sorted out — so survivors (which preserve order) re-enter presorted."""
        from repro.algorithms.common import apriori_join

        rng = random.Random(100 + size)
        level = self._random_level(rng, size)
        joined = apriori_join(level, presorted=True)
        assert joined == sorted(joined)
        # ...and the chain holds: any subsequence of the output is a valid
        # presorted input for the next level.
        survivors = joined[::2]
        assert apriori_join(survivors, presorted=True) == apriori_join(survivors)


# -- satellite: uniform statistics accounting -------------------------------------------
#: (database_scans, candidates_generated, candidates_pruned, exact_evaluations)
#: per miner on the golden dataset, columnar backend, workers=1, shards=1 —
#: the uniform accounting of the engine (rules documented on
#: ``MiningStatistics``).  A change here means the accounting contract moved:
#: update the docstring and these pins together, deliberately.
COUNTER_PINS = {
    "uapriori": (4, 125, 61, 0),
    "ufp-growth": (2, 73, 0, 0),
    "uh-mine": (2, 164, 100, 0),
    "dpb": (3, 120, 83, 107),
    "dpnb": (3, 120, 83, 129),
    "dcb": (3, 120, 83, 107),
    "dcnb": (3, 120, 83, 129),
    "pdu-apriori": (3, 120, 83, 0),
    "ndu-apriori": (3, 120, 83, 129),
    "nduh-mine": (2, 122, 85, 0),
    "world-sampling": (4, 120, 83, 129),
    "exhaustive-expected": (6, 381, 308, 0),
    "exhaustive-prob": (5, 255, 209, 255),
}


class TestUniformAccounting:
    @pytest.mark.parametrize("algorithm", sorted(COUNTER_PINS))
    def test_counters_pinned(self, database, algorithm):
        from repro.core.miner import mine
        from repro.core.registry import get_algorithm

        kwargs = dict(
            harness.MINER_OPTIONS[algorithm], backend="columnar", workers=1, shards=1
        )
        if get_algorithm(algorithm).family == "expected":
            result = mine(database, algorithm, min_esup=harness.MIN_ESUP, **kwargs)
        else:
            result = mine(
                database, algorithm, min_sup=harness.MIN_SUP, pft=harness.PFT, **kwargs
            )
        statistics = result.statistics
        assert (
            statistics.database_scans,
            statistics.candidates_generated,
            statistics.candidates_pruned,
            statistics.exact_evaluations,
        ) == COUNTER_PINS[algorithm]

    def test_bounds_only_reduce_exact_evaluations(self, database):
        """The *B/NB* pairs agree on generated/pruned; bounds only cut the
        exact-evaluation bill — the accounting keeps them comparable."""
        for bounded, unbounded in (("dpb", "dpnb"), ("dcb", "dcnb")):
            assert COUNTER_PINS[bounded][:3] == COUNTER_PINS[unbounded][:3]
            assert COUNTER_PINS[bounded][3] <= COUNTER_PINS[unbounded][3]


# -- the spec itself --------------------------------------------------------------------
class TestMinerSpecValidation:
    def test_rejects_unknown_definition(self):
        from repro.core.search import MinerSpec

        with pytest.raises(ValueError, match="definition"):
            MinerSpec(name="x", definition="fuzzy")

    def test_rejects_unknown_seed_mode(self):
        from repro.core.search import MinerSpec

        with pytest.raises(ValueError, match="seed_mode"):
            MinerSpec(name="x", definition="expected", seed_mode="telepathy")

    def test_exhaustive_generator_requires_unseeded_search(self):
        from repro.core.search import MinerSpec

        with pytest.raises(ValueError, match="exhaustive"):
            MinerSpec(
                name="x",
                definition="expected",
                level_generator="exhaustive",
                seed_mode="statistics",
            )

    def test_specs_are_frozen(self):
        from repro.core.search import MinerSpec

        spec = MinerSpec(name="x", definition="expected")
        with pytest.raises(AttributeError):
            spec.name = "y"

    def test_query_thresholds_uniformly_exposed(self):
        """Every spec exposes the planner-facing thresholds, whatever the
        definition — the seam the planner's depth estimate consults."""
        from repro.core.search import MinerSpec
        from repro.core.thresholds import (
            ExpectedSupportThreshold,
            ProbabilisticThreshold,
        )

        expected = MinerSpec(
            name="x", definition="expected", threshold=ExpectedSupportThreshold(0.1)
        )
        assert expected.query_thresholds().min_support == 0.1
        assert expected.query_thresholds().pft is None

        probabilistic = MinerSpec(
            name="x",
            definition="probabilistic",
            threshold=ProbabilisticThreshold(0.2, 0.7),
        )
        assert probabilistic.query_thresholds().min_support == 0.2
        assert probabilistic.query_thresholds().pft == 0.7

        bare = MinerSpec(name="x", definition="expected")
        assert bare.query_thresholds().min_support is None
