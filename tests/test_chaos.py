"""Chaos suite: the stack under deterministic, seeded fault injection.

Pins the PR-10 resilience contract end to end:

* fault plans parse, fire deterministically, and activate through every
  tier (install > plan scope > ``REPRO_FAULTS``),
* a SIGKILLed pool worker never loses a batch: the executor rebuilds the
  pool, resubmits, and returns results **bitwise identical** to a
  fault-free run — with zero leaked pools or ``/dev/shm`` segments,
* dropped and truncated service connections surface as typed
  ``connection-lost`` errors that the retrying client transparently
  absorbs for idempotent ops,
* a corrupted store plane is *detected* (checksums), *reported*
  (``verify`` / ``corrupt-dataset``) and — when the spec names a
  ``source`` — *repaired* by a transparent rebuild,
* an eviction storm degrades to cold rebuilds, never to errors,
* the combined acceptance scenario (one worker kill + one dropped
  connection + one corrupted plane in one seeded plan) ends with every
  request answered bitwise-equal to fault-free or failed structurally.
"""

from __future__ import annotations

import glob
import os
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.core.miner import mine
from repro.core.parallel import ParallelExecutor, live_pool_count, pool_restart_count
from repro.db.store import STORE_VERIFY_ENV, ColumnarStore, StoreError
from repro.db.store import _OPEN_STORES
from repro.faults import FaultInjector, FaultPlan
from repro.plan import plan_scope
from repro.service import (
    DatasetRegistry,
    MiningClient,
    MiningServer,
    ServiceError,
    record_keys,
)
from repro.service.protocol import decode_records

from helpers import make_random_database


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/repro_*"))


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    """Every test starts and ends fault-free (plans never leak across tests)."""
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture()
def database():
    return make_random_database(n_transactions=60, n_items=8, density=0.45, seed=17)


def _inline_spec(database) -> dict:
    return {
        "kind": "inline",
        "records": [
            [[item, probability] for item, probability in sorted(t.units.items())]
            for t in database.transactions
        ],
    }


class TestFaultPlanParsing:
    def test_sites_seed_and_latency(self):
        plan = FaultPlan.parse(
            "seed=9, worker-crash=@1+3, socket-drop=0.25, latency-seconds=0.5"
        )
        assert plan.seed == 9
        assert plan.latency_seconds == 0.5
        assert plan.rules["worker-crash"].probes == frozenset({1, 3})
        assert plan.rules["socket-drop"].rate == 0.25

    def test_semicolon_and_shorthand(self):
        plan = FaultPlan.parse("seed=2;socket-drop@2;store-corrupt@1")
        assert plan.seed == 2
        assert plan.rules["socket-drop"].probes == frozenset({2})
        assert plan.rules["store-corrupt"].probes == frozenset({1})

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").is_empty()
        assert FaultPlan.parse("seed=4").is_empty()
        assert not FaultPlan.parse("socket-drop=1.0").is_empty()

    @pytest.mark.parametrize(
        "spec",
        [
            "teleport=1",
            "socket-drop=2.0",
            "socket-drop=-0.5",
            "socket-drop=@0",
            "socket-drop=@x",
            "worker-crash",
            "latency-seconds=-1",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestDeterminism:
    def test_probe_indices_fire_exactly(self):
        injector = FaultInjector(FaultPlan.parse("worker-crash=@2+4"))
        fired = [injector.probe("worker-crash") for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert injector.counters()["worker-crash"] == {"probes": 5, "fired": 2}

    def test_rate_schedule_is_reproducible(self):
        first = FaultInjector(FaultPlan.parse("seed=5,socket-drop=0.3"))
        second = FaultInjector(FaultPlan.parse("seed=5,socket-drop=0.3"))
        schedule = [first.probe("socket-drop") for _ in range(200)]
        assert schedule == [second.probe("socket-drop") for _ in range(200)]
        # a 30% rate fires on roughly 30% of probes, never 0% or 100%
        assert 0 < sum(schedule) < 200

    def test_rate_schedule_depends_on_seed(self):
        one = FaultInjector(FaultPlan.parse("seed=1,socket-drop=0.5"))
        two = FaultInjector(FaultPlan.parse("seed=2,socket-drop=0.5"))
        assert [one.probe("socket-drop") for _ in range(200)] != [
            two.probe("socket-drop") for _ in range(200)
        ]

    def test_unknown_site_probe_rejected(self):
        injector = FaultInjector(FaultPlan.parse("seed=1"))
        with pytest.raises(ValueError):
            injector.probe("teleport")


class TestActivation:
    def test_no_plan_means_no_fire(self):
        assert faults.active_injector() is None
        assert faults.fire("worker-crash") is False
        assert faults.fault_counters() == {}

    def test_install_and_clear(self):
        injector = faults.install_faults("socket-drop=1.0")
        assert faults.active_injector() is injector
        assert faults.fire("socket-drop") is True
        faults.clear_faults()
        assert faults.active_injector() is None

    def test_faults_active_context(self):
        with faults.faults_active("worker-crash=@1") as injector:
            assert faults.fire("worker-crash") is True
            assert injector.total_fired() == 1
        assert faults.active_injector() is None

    def test_env_resolution_keeps_counters_per_spec(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "seed=3,socket-drop=@1")
        assert faults.fire("socket-drop") is True
        assert faults.fire("socket-drop") is False
        counters = faults.fault_counters()
        assert counters["socket-drop"] == {"probes": 2, "fired": 1}

    def test_plan_scope_carries_faults_knob(self):
        with plan_scope("faults=seed=1;socket-truncate@1"):
            injector = faults.active_injector()
            assert injector is not None
            assert injector.plan.rules["socket-truncate"].probes == frozenset({1})
        assert faults.active_injector() is None

    def test_disable_in_process(self, monkeypatch):
        faults.install_faults("socket-drop=1.0")
        monkeypatch.setattr(faults, "_DISABLED", True)
        assert faults.active_injector() is None
        assert faults.fire("socket-drop") is False


class TestWorkerCrashRecovery:
    def _vectors(self, seed=21):
        database = make_random_database(n_transactions=50, n_items=6, seed=seed)
        return database.columnar().batch_vectors([(0,), (1,), (0, 1), (2, 3)])

    def test_killed_worker_recovers_bitwise(self):
        vectors = self._vectors()
        with ParallelExecutor(workers=2) as executor:
            golden = executor.dp_tails(vectors, 6)
        shm_before = _shm_segments()
        restarts_before = pool_restart_count()
        with faults.faults_active("worker-crash=@1"):
            with ParallelExecutor(workers=2) as executor:
                recovered = executor.dp_tails(vectors, 6)
                assert executor.pool_restarts >= 1
        assert np.array_equal(recovered, golden)
        assert pool_restart_count() > restarts_before
        assert live_pool_count() == 0
        assert _shm_segments() == shm_before

    def test_killed_worker_recovers_shard_fanout(self):
        database = make_random_database(n_transactions=40, n_items=6, seed=23)
        partition = database.partition(2)
        candidates = [(0,), (1,), (0, 1)]
        with ParallelExecutor(workers=2, shard_views=partition.shards) as executor:
            golden = executor.shard_vectors(candidates)
        shm_before = _shm_segments()
        with faults.faults_active("worker-crash=@1"):
            with ParallelExecutor(
                workers=2, shard_views=partition.shards
            ) as executor:
                recovered = executor.shard_vectors(candidates)
                assert executor.pool_restarts >= 1
        for left, right in zip(golden, recovered):
            assert np.array_equal(left, right)
        assert live_pool_count() == 0
        assert _shm_segments() == shm_before

    def test_sustained_crashes_bounded_and_clean(self):
        """A worker killed on *every* batch either still completes (the
        batch finished on survivors) or fails loudly after the bounded
        rebuild budget — never a hang, never a leaked pool or segment."""
        vectors = self._vectors(seed=29)
        shm_before = _shm_segments()
        with faults.faults_active("worker-crash=1.0"):
            executor = ParallelExecutor(workers=2)
            try:
                executor.dp_tails(vectors, 6)
            except RuntimeError as error:
                assert "worker pool" in str(error)
            finally:
                executor.close()
        assert live_pool_count() == 0
        assert _shm_segments() == shm_before

    def test_task_latency_fires_and_counts(self):
        vectors = self._vectors(seed=31)
        with faults.faults_active(
            "task-latency=@1,latency-seconds=0.01"
        ) as injector:
            with ParallelExecutor(workers=2) as executor:
                executor.dp_tails(vectors, 6)
            assert injector.counters()["task-latency"]["fired"] == 1


class TestMiningUnderFaults:
    def test_mine_is_bitwise_identical_under_crash(self, database):
        # min_esup=0.2 keeps the search alive past level 1, so the miner
        # actually fans out to the pool the crash site lives in
        golden = mine(database, algorithm="uapriori", min_esup=0.2, workers=2, shards=2)
        with faults.faults_active("worker-crash=@1") as injector:
            chaotic = mine(
                database, algorithm="uapriori", min_esup=0.2, workers=2, shards=2
            )
            assert injector.counters()["worker-crash"]["fired"] == 1
        assert record_keys(chaotic.itemsets) == record_keys(golden.itemsets)
        assert live_pool_count() == 0


class TestSocketFaults:
    def test_dropped_reply_is_retried_bitwise(self, database):
        golden = mine(database, algorithm="uapriori", min_esup=0.3)
        # the register below goes straight to the registry (no socket), so
        # the mine reply is the drop site's first probe
        with faults.faults_active("seed=7;socket-drop@1"):
            with MiningServer(max_workers=2) as server:
                server.registry.register("d", _inline_spec(database))
                with MiningClient(*server.address, jitter_seconds=0.0) as client:
                    reply = client.mine(
                        "d", algorithm="uapriori", min_esup=0.3, limit=None
                    )
                    assert client.retries_performed >= 1
        assert record_keys(decode_records(reply["itemsets"])) == record_keys(
            golden.itemsets
        )

    def test_truncated_reply_is_retried(self):
        with faults.faults_active("socket-truncate=@1"):
            with MiningServer(max_workers=2) as server:
                with MiningClient(*server.address, jitter_seconds=0.0) as client:
                    assert client.ping()["pong"] is True
                    assert client.retries_performed >= 1

    def test_without_retries_loss_is_typed(self):
        with faults.faults_active("socket-drop=@1"):
            with MiningServer(max_workers=2) as server:
                with MiningClient(*server.address, retries=0) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        client.ping()
        assert excinfo.value.type == "connection-lost"

    def test_non_idempotent_op_is_not_retried(self, database):
        with faults.faults_active("socket-drop=@1"):
            with MiningServer(max_workers=2) as server:
                with MiningClient(*server.address, jitter_seconds=0.0) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        client.register("d", **_inline_spec(database))
        assert excinfo.value.type == "connection-lost"
        assert client.retries_performed == 0


class TestStoreIntegrity:
    def test_manifest_carries_checksums_and_verifies(self, database, tmp_path):
        store = ColumnarStore.save(database, str(tmp_path / "store"))
        report = store.verify()
        assert report["ok"]
        assert {"rows", "probs", "bitmaps"} <= set(report["planes"])
        for entry in report["planes"].values():
            assert entry["ok"] and "expected" in entry

    def test_corruption_is_detected_and_self_inverse(self, database, tmp_path):
        directory = str(tmp_path / "store")
        store = ColumnarStore.save(database, directory)
        path, offset = faults.corrupt_store_plane(directory, "probs", seed=4)
        report = store.verify()
        assert not report["ok"]
        assert not report["planes"]["probs"]["ok"]
        assert report["planes"]["rows"]["ok"]
        with pytest.raises(StoreError, match="probs"):
            store.verify(strict=True)
        # the XOR flip is self-inverse: corrupting again restores the plane
        same_path, same_offset = faults.corrupt_store_plane(directory, "probs", seed=4)
        assert (same_path, same_offset) == (path, offset)
        assert store.verify()["ok"]

    def test_verify_on_open_env(self, database, tmp_path, monkeypatch):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        faults.corrupt_store_plane(directory, "rows", seed=1)
        _OPEN_STORES.clear()  # a fresh open, not the cached pre-corruption one
        monkeypatch.setenv(STORE_VERIFY_ENV, "on")
        with pytest.raises(StoreError, match="rows"):
            ColumnarStore.open(directory)

    def test_registry_rebuilds_store_from_source(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        faults.corrupt_store_plane(directory, "probs", seed=2)
        registry = DatasetRegistry()
        handle = registry.register(
            "d",
            {
                "kind": "store",
                "directory": directory,
                "source": _inline_spec(database),
            },
        )
        assert handle.n_transactions == len(database)
        assert registry.store_rebuilds == 1
        assert ColumnarStore.open(directory).verify()["ok"]
        # the rebuilt store answers bitwise like the original database
        _, rebuilt = registry.checkout("d")
        golden = mine(database, algorithm="uapriori", min_esup=0.3)
        chaotic = mine(rebuilt, algorithm="uapriori", min_esup=0.3)
        assert record_keys(chaotic.itemsets) == record_keys(golden.itemsets)

    def test_corrupt_store_without_source_is_structured(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        faults.corrupt_store_plane(directory, "probs", seed=2)
        registry = DatasetRegistry()
        with pytest.raises(ServiceError) as excinfo:
            registry.register("d", {"kind": "store", "directory": directory})
        assert excinfo.value.type == "corrupt-dataset"

    def test_store_corrupt_site_fires_on_open(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        with faults.faults_active("seed=6;store-corrupt@1") as injector:
            _OPEN_STORES.clear()
            store = ColumnarStore.open(directory)
            assert injector.counters()["store-corrupt"]["fired"] == 1
            assert not store.verify()["ok"]


class TestRegistryEvictStorm:
    def test_storm_degrades_to_cold_rebuilds(self, database):
        registry = DatasetRegistry()
        registry.register("d", _inline_spec(database))
        golden_handle, golden_db = registry.checkout("d")
        with faults.faults_active("registry-evict=1.0"):
            for _ in range(3):
                handle, rebuilt = registry.checkout("d")
                assert handle.revision == golden_handle.revision
                assert len(rebuilt) == len(golden_db)
        assert registry.fault_evictions == 3
        assert registry.rebuilds >= 3
        described = registry.describe()
        assert described["fault_evictions"] == 3


class TestOverloadAndHealth:
    def test_overloaded_carries_retry_after_hint(self, database):
        with MiningServer(max_workers=1, max_queue=0, use_cache=False) as server:
            server.registry.register("d", _inline_spec(database))
            blocker = MiningClient(*server.address, timeout_seconds=30.0)
            barrier = threading.Event()

            def hold_the_slot():
                barrier.set()
                blocker.ping(delay_seconds=1.0)

            thread = threading.Thread(target=hold_the_slot)
            thread.start()
            barrier.wait()
            time.sleep(0.1)  # let the slow ping occupy the only worker
            try:
                with MiningClient(*server.address, retries=0) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        client.ping(delay_seconds=0.5)
                assert excinfo.value.type == "overloaded"
                assert excinfo.value.retry_after_seconds > 0
                # a retrying client rides the hint to eventual success
                with MiningClient(
                    *server.address, retries=20, jitter_seconds=0.0
                ) as client:
                    assert client.ping(delay_seconds=0.01)["pong"] is True
            finally:
                thread.join()
                blocker.close()

    def test_health_reports_gauges_and_counters(self, database):
        with faults.faults_active("seed=1;socket-drop=0.0"):
            with MiningServer(max_workers=2, max_queue=2) as server:
                server.registry.register("d", _inline_spec(database))
                with MiningClient(*server.address) as client:
                    health = client.health()
                    stats = client.stats()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        for key in (
            "in_flight",
            "pool_restarts",
            "live_pools",
            "cache_evictions",
            "fault_evictions",
            "store_rebuilds",
            "faults",
        ):
            assert key in health
        assert "pool_restarts" in stats and "faults" in stats
        assert "socket-drop" in health["faults"]


class TestCombinedAcceptance:
    """The ISSUE acceptance scenario: one seeded plan combining a worker
    kill, a dropped connection and a corrupted store plane.  Every client
    request either succeeds bitwise-equal to the fault-free answer or
    fails with a structured ServiceError — no hangs, no silent wrong
    answers, no leaked pools or shared-memory segments."""

    def test_combined_faults_end_to_end(self, database, tmp_path):
        directory = str(tmp_path / "store")
        ColumnarStore.save(database, directory)
        golden = mine(
            database, algorithm="uapriori", min_esup=0.2, workers=2, shards=2
        )
        shm_before = _shm_segments()
        spec = "seed=11;worker-crash@1;socket-drop@2;store-corrupt@1"
        with faults.faults_active(spec) as injector:
            _OPEN_STORES.clear()
            with MiningServer(max_workers=2, use_cache=False) as server:
                with MiningClient(
                    *server.address, jitter_seconds=0.0, timeout_seconds=60.0
                ) as client:
                    # register: store-corrupt fires at open; the registry
                    # detects the bad checksum and rebuilds from source
                    client.register(
                        "d",
                        kind="store",
                        directory=directory,
                        source=_inline_spec(database),
                    )
                    # mine: worker-crash kills a pool worker (recovered by a
                    # pool rebuild), socket-drop eats the reply (recovered
                    # by a client retry)
                    reply = client.mine(
                        "d",
                        algorithm="uapriori",
                        min_esup=0.2,
                        workers=2,
                        shards=2,
                        limit=None,
                    )
                    assert client.retries_performed >= 1
                    health = client.health()
            counters = injector.counters()
        assert record_keys(decode_records(reply["itemsets"])) == record_keys(
            golden.itemsets
        )
        assert counters["store-corrupt"]["fired"] == 1
        assert counters["socket-drop"]["fired"] == 1
        assert counters["worker-crash"]["fired"] == 1
        assert health["store_rebuilds"] == 1
        assert health["pool_restarts"] >= 1
        assert live_pool_count() == 0
        assert _shm_segments() == shm_before
        # the repaired store still verifies clean after the dust settles
        assert ColumnarStore.open(directory).verify()["ok"]
