"""Zero-copy shard fan-out: segments, payload size, lifecycle, fail-fast.

Pins the three safety properties of the shared-memory dispatch path:

* attach/export is bitwise faithful and payloads stay descriptor-sized,
* every segment an executor exports is unlinked by ``close()`` and
  ``terminate()`` — nothing may leak into ``/dev/shm``,
* a vanished source (unlinked segment, deleted store directory) fails
  fast with a diagnosable error instead of a worker respawn storm.
"""

from __future__ import annotations

import glob
import os
import shutil

import numpy as np
import pytest

from repro.core import parallel
from repro.core.miner import mine
from repro.core.parallel import (
    FANOUT_ENV,
    ParallelExecutor,
    fanout_scope,
    resolve_fanout,
)
from repro.db.store import (
    ColumnarStore,
    StoreError,
    attach_shard_segment,
    export_shard_segment,
)

from helpers import make_random_database


@pytest.fixture(scope="module")
def database():
    return make_random_database(n_transactions=50, n_items=7, density=0.5, seed=33)


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/repro_*"))


class TestFanoutResolution:
    def test_resolve_modes(self):
        assert resolve_fanout("") == "auto"
        assert resolve_fanout("SHM") == "shm"
        assert resolve_fanout(" pickle ") == "pickle"
        with pytest.raises(ValueError, match="fanout"):
            resolve_fanout("zeromq")

    def test_scope_pins_without_touching_env(self, monkeypatch):
        monkeypatch.delenv(FANOUT_ENV, raising=False)
        with fanout_scope("pickle"):
            # Scopes are contextvar-backed plan scopes now: they never
            # mutate the process environment (which raced under the
            # threaded mining service).
            assert FANOUT_ENV not in os.environ
            assert resolve_fanout() == "pickle"
        assert resolve_fanout() == "auto"
        monkeypatch.setenv(FANOUT_ENV, "shm")
        with fanout_scope("pickle"):
            assert resolve_fanout() == "pickle"  # scope beats env
        assert resolve_fanout() == "shm"

    def test_scope_none_is_noop(self, monkeypatch):
        monkeypatch.delenv(FANOUT_ENV, raising=False)
        with fanout_scope(None):
            assert FANOUT_ENV not in os.environ


class TestSegmentRoundTrip:
    def test_attach_is_bitwise(self, database):
        view = database.columnar()
        segment = export_shard_segment(view)
        try:
            attached = attach_shard_segment(segment.descriptor)
            assert attached.items() == view.items()
            assert len(attached) == len(view)
            for item in view.items():
                rows, probs = view.column(item)
                attached_rows, attached_probs = attached.column(item)
                assert np.array_equal(np.asarray(attached_rows), rows)
                assert np.array_equal(np.asarray(attached_probs), probs)
        finally:
            segment.destroy()

    def test_destroy_is_idempotent(self, database):
        segment = export_shard_segment(database.columnar())
        segment.destroy()
        segment.destroy()
        assert segment.name not in {os.path.basename(p) for p in _shm_segments()}

    def test_attach_vanished_segment_raises(self, database):
        segment = export_shard_segment(database.columnar())
        descriptor = dict(segment.descriptor)
        segment.destroy()
        with pytest.raises(StoreError, match="has vanished"):
            attach_shard_segment(descriptor)


class TestDispatchPayload:
    def test_shm_payload_is_descriptor_sized(self, database):
        shards = database.partition(3).shards
        with ParallelExecutor(2, shard_views=shards, fanout="pickle") as executor:
            pickle_bytes = executor.dispatch_payload_nbytes()
        with ParallelExecutor(2, shard_views=shards, fanout="shm") as executor:
            shm_bytes = executor.dispatch_payload_nbytes()
        assert shm_bytes < 2048
        assert shm_bytes < pickle_bytes

    def test_mapped_shards_ship_as_store_sources_even_under_pickle(
        self, database, tmp_path
    ):
        store = ColumnarStore.save(database, str(tmp_path / "store"))
        n = len(database)
        shards = [store.view(0, n // 2), store.view(n // 2, n)]
        for fanout in ("auto", "pickle"):
            with ParallelExecutor(
                2, shard_views=shards, fanout=fanout
            ) as executor:
                assert executor.dispatch_payload_nbytes() < 2048


class TestSegmentLifecycle:
    def test_close_unlinks_segments(self, database):
        before = _shm_segments()
        shards = database.partition(2).shards
        executor = ParallelExecutor(2, shard_views=shards, fanout="shm")
        executor.map_shard_method("nnz")
        executor.close()
        assert _shm_segments() == before

    def test_terminate_unlinks_segments(self, database):
        before = _shm_segments()
        shards = database.partition(2).shards
        executor = ParallelExecutor(2, shard_views=shards, fanout="shm")
        executor.map_shard_method("nnz")
        executor.terminate()
        assert _shm_segments() == before

    def test_exception_inside_context_unlinks_segments(self, database):
        before = _shm_segments()
        shards = database.partition(2).shards
        with pytest.raises(RuntimeError, match="boom"):
            with ParallelExecutor(2, shard_views=shards, fanout="shm") as executor:
                executor.map_shard_method("nnz")
                raise RuntimeError("boom")
        assert _shm_segments() == before

    def test_parallel_mine_leaves_no_segments(self, database):
        before = _shm_segments()
        with fanout_scope("shm"):
            serial = mine(database, algorithm="uapriori", min_esup=0.2)
            sharded = mine(
                database, algorithm="uapriori", min_esup=0.2, workers=2, shards=3
            )
        assert sharded.itemset_keys() == serial.itemset_keys()
        assert _shm_segments() == before


class TestFailFast:
    def test_vanished_store_directory_fails_before_fanout(self, database, tmp_path):
        directory = str(tmp_path / "doomed")
        store = ColumnarStore.save(database, directory)
        n = len(database)
        shards = [store.view(0, n // 2), store.view(n // 2, n)]
        executor = ParallelExecutor(2, shard_views=shards)
        try:
            shutil.rmtree(directory)
            with pytest.raises(RuntimeError, match="store directory vanished"):
                executor.map_shard_method("nnz")
        finally:
            executor.close()

    def test_worker_reports_vanished_segment(self, database):
        segment = export_shard_segment(database.columnar())
        descriptor = dict(segment.descriptor)
        segment.destroy()
        try:
            parallel._install_worker_shards([("shm", descriptor)])
            assert parallel._WORKER_ATTACH_ERROR is not None
            assert "vanished" in parallel._WORKER_ATTACH_ERROR
            with pytest.raises(RuntimeError, match="shard attachment failed"):
                parallel._shard_method_task((0, "nnz", (), {}))
        finally:
            parallel._install_worker_shards(None)
