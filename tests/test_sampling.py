"""Tests tying the analytic machinery to possible-world semantics."""

import numpy as np
import pytest

from repro.core import SupportDistribution
from repro.db import (
    enumerate_worlds,
    monte_carlo_support,
    sample_world,
    sample_worlds,
    world_count,
)


class TestWorldCount:
    def test_counts_only_uncertain_units(self, tiny_db):
        # tiny_db has 6 units, one of which is certain (probability 1.0).
        assert world_count(tiny_db) == 2 ** 5

    def test_paper_example(self, paper_db):
        assert world_count(paper_db) == 2 ** 16


class TestEnumeration:
    def test_world_probabilities_sum_to_one(self, tiny_db):
        total = sum(probability for probability, _ in enumerate_worlds(tiny_db))
        assert total == pytest.approx(1.0)

    def test_enumerated_expected_support_matches_analytic(self, tiny_db):
        target = {0}
        expected = 0.0
        for probability, world in enumerate_worlds(tiny_db):
            expected += probability * sum(1 for items in world if target <= set(items))
        assert expected == pytest.approx(tiny_db.expected_support((0,)))

    def test_enumerated_support_distribution_matches_poisson_binomial(self, tiny_db):
        distribution = SupportDistribution(tiny_db.itemset_probabilities((2,)))
        enumerated = {}
        for probability, world in enumerate_worlds(tiny_db):
            support = sum(1 for items in world if 2 in items)
            enumerated[support] = enumerated.get(support, 0.0) + probability
        for support, probability in distribution.pmf_as_dict().items():
            assert enumerated.get(support, 0.0) == pytest.approx(probability, abs=1e-9)

    def test_certain_item_present_in_every_world(self, tiny_db):
        # item 0 in transaction 1 has probability 1.0
        for _, world in enumerate_worlds(tiny_db):
            assert 0 in world[1]


class TestSampling:
    def test_sample_world_respects_certainty(self, tiny_db):
        rng = np.random.default_rng(0)
        for _ in range(20):
            world = sample_world(tiny_db, rng)
            assert len(world) == len(tiny_db)
            assert 0 in world[1]

    def test_sample_worlds_is_deterministic_given_seed(self, tiny_db):
        first = list(sample_worlds(tiny_db, 5, seed=42))
        second = list(sample_worlds(tiny_db, 5, seed=42))
        assert first == second

    def test_monte_carlo_support_close_to_exact(self, tiny_db):
        estimated = monte_carlo_support(tiny_db, (1,), n_worlds=4000, seed=1)
        exact = SupportDistribution(tiny_db.itemset_probabilities((1,))).pmf_as_dict()
        for support, probability in exact.items():
            assert estimated.get(support, 0.0) == pytest.approx(probability, abs=0.05)

    def test_monte_carlo_distribution_sums_to_one(self, tiny_db):
        estimated = monte_carlo_support(tiny_db, (1,), n_worlds=500, seed=2)
        assert sum(estimated.values()) == pytest.approx(1.0)
