"""Row vs columnar backend equivalence across every registered miner.

The columnar backend is the default engine; the row backend is kept as the
correctness oracle.  These tests pin the contract between them: identical
frequent itemset sets, matching expected supports, variances and frequent
probabilities on the paper's example, the tiny enumeration database and
randomized databases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import mine
from repro.core.registry import algorithm_names, get_algorithm

from helpers import make_random_database

EXPECTED_MINERS = ["uapriori", "uh-mine", "ufp-growth", "exhaustive-expected"]
PROBABILISTIC_MINERS = [
    "dpb",
    "dpnb",
    "dcb",
    "dcnb",
    "pdu-apriori",
    "ndu-apriori",
    "nduh-mine",
    "world-sampling",
    "exhaustive-prob",
]

DATABASES = ["paper_db", "tiny_db", "random_db"]


@pytest.fixture(params=DATABASES + ["dense_random_db", "sparse_random_db"])
def any_db(request):
    if request.param == "dense_random_db":
        return make_random_database(n_transactions=40, n_items=6, density=0.8, seed=11)
    if request.param == "sparse_random_db":
        return make_random_database(n_transactions=60, n_items=12, density=0.15, seed=12)
    return request.getfixturevalue(request.param)


def _mine_both(database, algorithm, **thresholds):
    rows = mine(database, algorithm=algorithm, backend="rows", **thresholds)
    columnar = mine(database, algorithm=algorithm, backend="columnar", **thresholds)
    return rows, columnar


def _assert_equivalent(rows, columnar, check_probability):
    assert columnar.itemset_keys() == rows.itemset_keys()
    for record in columnar:
        reference = rows[record.itemset]
        assert record.expected_support == pytest.approx(
            reference.expected_support, abs=1e-9
        )
        if record.variance is not None and reference.variance is not None:
            assert record.variance == pytest.approx(reference.variance, abs=1e-9)
        if check_probability and reference.frequent_probability is not None:
            assert record.frequent_probability == pytest.approx(
                reference.frequent_probability, abs=1e-9
            )


class TestRegistryCoverage:
    def test_every_registered_algorithm_is_covered(self):
        assert set(EXPECTED_MINERS + PROBABILISTIC_MINERS) == set(algorithm_names())

    def test_all_factories_accept_backend(self):
        for name in algorithm_names():
            miner = get_algorithm(name).factory(backend="rows")
            assert miner.backend == "rows"


class TestExpectedSupportMiners:
    @pytest.mark.parametrize("algorithm", EXPECTED_MINERS)
    @pytest.mark.parametrize("min_esup", [0.15, 0.35, 0.6])
    def test_backends_agree(self, any_db, algorithm, min_esup):
        rows, columnar = _mine_both(any_db, algorithm, min_esup=min_esup)
        _assert_equivalent(rows, columnar, check_probability=False)


class TestProbabilisticMiners:
    @pytest.mark.parametrize("algorithm", PROBABILISTIC_MINERS)
    @pytest.mark.parametrize("min_sup,pft", [(0.3, 0.7), (0.5, 0.9)])
    def test_backends_agree(self, any_db, algorithm, min_sup, pft):
        rows, columnar = _mine_both(any_db, algorithm, min_sup=min_sup, pft=pft)
        _assert_equivalent(rows, columnar, check_probability=True)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_sampling_estimates_identical_given_seed(self, seed):
        # Both backends consume the identical random stream, so even the
        # Monte-Carlo estimates must agree exactly, not just statistically.
        database = make_random_database(n_transactions=25, n_items=6, seed=seed)
        rows, columnar = _mine_both(database, "world-sampling", min_sup=0.3, pft=0.6)
        assert columnar.itemset_keys() == rows.itemset_keys()
        for record in columnar:
            assert (
                record.frequent_probability
                == rows[record.itemset].frequent_probability
            )


class TestDatabasePrimitives:
    @pytest.mark.parametrize("itemset", [(0,), (0, 1), (0, 1, 2), (5,)])
    def test_probability_vectors_bitwise_identical(self, itemset):
        database = make_random_database(n_transactions=50, n_items=7, seed=21)
        rows = database.itemset_probabilities(itemset, backend="rows")
        columnar = database.itemset_probabilities(itemset, backend="columnar")
        assert np.array_equal(rows, columnar)

    def test_batch_matches_single_candidate_evaluation(self):
        database = make_random_database(n_transactions=40, n_items=6, seed=22)
        candidates = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3, 4)]
        matrix = database.itemset_probabilities_batch(candidates)
        assert matrix.shape == (len(candidates), len(database))
        for row, candidate in zip(matrix, candidates):
            assert np.array_equal(row, database.itemset_probabilities(candidate))

    def test_moments_agree_across_backends(self):
        database = make_random_database(n_transactions=35, n_items=8, seed=23)
        for candidate in [(0,), (1, 2), (0, 3, 5)]:
            assert database.expected_support(candidate, backend="columnar") == pytest.approx(
                database.expected_support(candidate, backend="rows"), abs=1e-9
            )
            assert database.support_variance(candidate, backend="columnar") == pytest.approx(
                database.support_variance(candidate, backend="rows"), abs=1e-9
            )
