"""Tests for FrequentItemset records and MiningResult containers."""

import pytest

from repro.core import FrequentItemset, Itemset, MiningResult, MiningStatistics
from repro.db import Vocabulary


def make_result():
    records = [
        FrequentItemset(Itemset([1, 2]), 3.5, 0.4, 0.95),
        FrequentItemset(Itemset([1]), 5.0, 0.5, None),
        FrequentItemset(Itemset([2]), 4.0, None, 0.99),
    ]
    return MiningResult(records, MiningStatistics(algorithm="test"))


class TestMiningResult:
    def test_records_sorted_by_size_then_items(self):
        result = make_result()
        assert [record.itemset.items for record in result] == [(1,), (2,), (1, 2)]

    def test_len_and_contains(self):
        result = make_result()
        assert len(result) == 3
        assert (2, 1) in result
        assert (3,) not in result

    def test_lookup_by_any_itemset_like(self):
        result = make_result()
        assert result[(1, 2)].expected_support == pytest.approx(3.5)
        assert result[Itemset([1])].expected_support == pytest.approx(5.0)

    def test_get_with_default(self):
        result = make_result()
        assert result.get((9,)) is None
        assert result.get((1,)).expected_support == pytest.approx(5.0)

    def test_of_size_and_max_size(self):
        result = make_result()
        assert len(result.of_size(1)) == 2
        assert result.max_size() == 2

    def test_empty_result(self):
        empty = MiningResult([])
        assert len(empty) == 0
        assert empty.max_size() == 0
        assert empty.itemset_keys() == set()

    def test_itemset_keys(self):
        result = make_result()
        assert Itemset([1, 2]) in result.itemset_keys()

    def test_to_rows_plain(self):
        rows = make_result().to_rows()
        assert rows[0]["itemset"] == (1,)
        assert rows[0]["size"] == 1
        assert rows[2]["frequent_probability"] == pytest.approx(0.95)

    def test_to_rows_with_vocabulary(self):
        vocabulary = Vocabulary(["zero", "one", "two"])
        rows = make_result().to_rows(vocabulary)
        assert rows[0]["itemset"] == ("one",)
        assert rows[2]["itemset"] == ("one", "two")

    def test_statistics_default(self):
        result = MiningResult([])
        assert result.statistics.algorithm == ""
        assert result.statistics.elapsed_seconds == 0.0


class TestFrequentItemset:
    def test_length_is_itemset_size(self):
        record = FrequentItemset(Itemset([4, 5, 6]), 1.0)
        assert len(record) == 3

    def test_optional_fields_default_to_none(self):
        record = FrequentItemset(Itemset([1]), 2.0)
        assert record.variance is None
        assert record.frequent_probability is None
