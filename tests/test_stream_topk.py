"""Streaming top-k vs batch top-k over identical window contents.

The acceptance property of the streaming top-k path: after every slide, the
ranked result served from the incremental support index equals batch top-k
mining of ``window.contents()`` — bitwise (itemsets *and* scores) on dyadic
streams, set-and-order identical with approximately equal scores on
arbitrary-probability streams.
"""

import random

import pytest

from repro.core.topk import mine_topk
from repro.stream import StreamingTopK, TransactionStream

DYADIC_CHOICES = (0.25, 0.5, 0.75, 1.0)


def dyadic_records(n, n_items=6, density=0.5, seed=3):
    rng = random.Random(seed)
    return [
        {
            item: rng.choice(DYADIC_CHOICES)
            for item in range(n_items)
            if rng.random() < density
        }
        for _ in range(n)
    ]


def general_records(n, n_items=7, density=0.45, seed=9):
    rng = random.Random(seed)
    return [
        {
            item: round(rng.uniform(0.05, 1.0), 3)
            for item in range(n_items)
            if rng.random() < density
        }
        for _ in range(n)
    ]


class TestDyadicByteIdentity:
    def test_streaming_topk_esup_matches_batch_bitwise(self):
        stream = TransactionStream.from_records(dyadic_records(120))
        miner = StreamingTopK(24, 6, evaluator="esup")
        assert miner.advance(stream, 24) is not None
        slides = 0
        for _ in miner.results(stream, step=5, max_slides=12):
            batch = mine_topk(miner.window.contents(), 6, algorithm="uapriori")
            assert miner.ranked_result().ranked_keys() == batch.ranked_keys()
            slides += 1
        assert slides == 12

    def test_streaming_topk_dp_matches_batch_bitwise(self):
        stream = TransactionStream.from_records(dyadic_records(110, seed=8))
        miner = StreamingTopK(20, 5, evaluator="dp", min_sup=0.25)
        assert miner.advance(stream, 20) is not None
        slides = 0
        for _ in miner.results(stream, step=4, max_slides=10):
            batch = mine_topk(
                miner.window.contents(), 5, algorithm="dp", min_sup=0.25
            )
            assert miner.ranked_result().ranked_keys() == batch.ranked_keys()
            slides += 1
        assert slides == 10

    def test_variance_tracking_matches_batch(self):
        stream = TransactionStream.from_records(dyadic_records(80, seed=4))
        miner = StreamingTopK(16, 4, evaluator="esup", track_variance=True)
        miner.advance(stream, 16)
        for _ in miner.results(stream, step=4, max_slides=6):
            batch = mine_topk(
                miner.window.contents(), 4, algorithm="uapriori", track_variance=True
            )
            ours = [
                (r.itemset.items, r.expected_support, r.variance)
                for r in miner.ranked_result()
            ]
            theirs = [
                (r.itemset.items, r.expected_support, r.variance) for r in batch
            ]
            assert ours == theirs


class TestGeneralStreams:
    def test_ranked_sets_match_with_tolerant_scores(self):
        stream = TransactionStream.from_records(general_records(140))
        miner = StreamingTopK(32, 8, evaluator="dp", min_sup=0.2)
        assert miner.advance(stream, 32) is not None
        slides = 0
        for _ in miner.results(stream, step=8, max_slides=8):
            batch = mine_topk(
                miner.window.contents(), 8, algorithm="dp", min_sup=0.2
            )
            ranked = miner.ranked_result()
            assert [r.itemset.items for r in ranked] == [
                r.itemset.items for r in batch
            ]
            for left, right in zip(ranked.scores(), batch.scores()):
                assert left == pytest.approx(right, abs=1e-9)
            slides += 1
        assert slides == 8

    def test_pruning_does_not_change_streaming_results(self):
        records = general_records(90, seed=21)
        ranked_by_pruning = {}
        for use_pruning in (True, False):
            stream = TransactionStream.from_records(records)
            miner = StreamingTopK(
                24, 5, evaluator="esup", use_pruning=use_pruning
            )
            miner.advance(stream, 24)
            outcomes = []
            for _ in miner.results(stream, step=6, max_slides=6):
                outcomes.append(tuple(miner.ranked_result().ranked_keys()))
            ranked_by_pruning[use_pruning] = outcomes
        assert ranked_by_pruning[True] == ranked_by_pruning[False]


class TestValidation:
    def test_requires_min_sup_for_probability_ranking(self):
        with pytest.raises(ValueError, match="min_sup"):
            StreamingTopK(16, 4, evaluator="dp")

    def test_rejects_unservable_evaluators(self):
        for evaluator in ("normal", "poisson", "dc"):
            with pytest.raises(ValueError):
                StreamingTopK(16, 4, evaluator=evaluator, min_sup=0.3)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            StreamingTopK(16, 0, evaluator="esup")

    def test_ranked_result_empty_before_first_slide(self):
        miner = StreamingTopK(16, 4, evaluator="esup")
        assert len(miner.ranked_result()) == 0
