"""Degenerate case: an uncertain database with all probabilities equal to 1.

When every unit is certain, the uncertain definitions must collapse onto the
classic deterministic ones: the expected support equals the plain support
count, the support variance is zero, and the frequent probability of any
itemset is exactly 1 (if its support reaches the threshold) or 0 (otherwise).
Every miner must therefore return exactly the classic frequent itemsets.
"""

import itertools

import pytest

from repro.algorithms import DCMiner, DPMiner, NDUApriori, NDUHMine, UApriori, UFPGrowth, UHMine
from repro.db import UncertainDatabase

TRANSACTIONS = [
    {1, 2, 3},
    {1, 2},
    {2, 3},
    {1, 2, 3, 4},
    {2, 4},
    {1, 3},
]


def deterministic_db() -> UncertainDatabase:
    return UncertainDatabase.from_records(
        [{item: 1.0 for item in items} for items in TRANSACTIONS], name="deterministic"
    )


def classic_frequent_itemsets(min_count: int):
    """Plain deterministic frequent itemset mining by enumeration."""
    items = sorted({item for transaction in TRANSACTIONS for item in transaction})
    frequent = set()
    for size in range(1, len(items) + 1):
        for candidate in itertools.combinations(items, size):
            support = sum(1 for t in TRANSACTIONS if set(candidate) <= t)
            if support >= min_count:
                frequent.add(candidate)
    return frequent


@pytest.mark.parametrize("min_ratio", [0.3, 0.5, 0.8])
@pytest.mark.parametrize("miner_class", [UApriori, UHMine, UFPGrowth])
def test_expected_support_miners_reduce_to_classic_mining(miner_class, min_ratio):
    database = deterministic_db()
    min_count = int(len(database) * min_ratio + 0.9999)
    result = miner_class().mine(database, min_esup=min_ratio)
    assert {record.itemset.items for record in result} == classic_frequent_itemsets(min_count)


@pytest.mark.parametrize("min_ratio", [0.3, 0.5])
@pytest.mark.parametrize("miner_class", [DPMiner, DCMiner, NDUApriori, NDUHMine])
def test_probabilistic_miners_reduce_to_classic_mining(miner_class, min_ratio):
    database = deterministic_db()
    min_count = int(len(database) * min_ratio + 0.9999)
    result = miner_class().mine(database, min_sup=min_ratio, pft=0.9)
    assert {record.itemset.items for record in result} == classic_frequent_itemsets(min_count)


def test_supports_are_integers_and_variance_zero():
    database = deterministic_db()
    result = UApriori(track_variance=True).mine(database, min_esup=0.3)
    for record in result:
        assert record.expected_support == pytest.approx(round(record.expected_support))
        assert record.variance == pytest.approx(0.0)


def test_frequent_probabilities_are_zero_or_one():
    database = deterministic_db()
    result = DCMiner().mine(database, min_sup=0.5, pft=0.5)
    for record in result:
        assert record.frequent_probability == pytest.approx(1.0)
