"""Tests for the approximate probabilistic miners (PDUApriori, NDUApriori, NDUH-Mine)."""

import pytest

from repro.algorithms import DCMiner, NDUApriori, NDUHMine, PDUApriori
from repro.eval import compare_results

from helpers import make_random_database


def large_random_db(seed: int = 0):
    """A database large enough for the CLT approximations to be accurate."""
    return make_random_database(n_transactions=300, n_items=7, density=0.5, seed=seed)


class TestNDUApriori:
    def test_probabilities_close_to_exact(self):
        database = large_random_db()
        approximate = NDUApriori().mine(database, min_sup=0.3, pft=0.9)
        exact = DCMiner().mine(database, min_sup=0.3, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.precision >= 0.9
        assert report.recall >= 0.9
        assert report.max_probability_error is None or report.max_probability_error < 0.05

    def test_returns_frequent_probabilities(self, paper_db):
        result = NDUApriori().mine(paper_db, min_sup=0.5, pft=0.7)
        assert all(record.frequent_probability is not None for record in result)
        assert all(record.variance is not None for record in result)

    def test_results_respect_pft(self):
        database = large_random_db(1)
        result = NDUApriori().mine(database, min_sup=0.3, pft=0.8)
        assert all(record.frequent_probability > 0.8 for record in result)


class TestPDUApriori:
    def test_membership_close_to_exact_on_large_database(self):
        database = large_random_db(2)
        approximate = PDUApriori().mine(database, min_sup=0.3, pft=0.9)
        exact = DCMiner().mine(database, min_sup=0.3, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.recall >= 0.8
        assert report.precision >= 0.8

    def test_does_not_report_probabilities_by_default(self, paper_db):
        result = PDUApriori().mine(paper_db, min_sup=0.5, pft=0.7)
        assert all(record.frequent_probability is None for record in result)

    def test_optional_probability_estimates(self, paper_db):
        result = PDUApriori(report_probabilities=True).mine(paper_db, min_sup=0.5, pft=0.7)
        assert all(0.0 <= record.frequent_probability <= 1.0 for record in result)

    def test_lambda_threshold_recorded(self, paper_db):
        result = PDUApriori().mine(paper_db, min_sup=0.5, pft=0.7)
        assert result.statistics.notes["poisson_lambda_threshold"] > 0.0
        assert result.statistics.algorithm == "pdu-apriori"


class TestNDUHMine:
    def test_matches_nduapriori_on_large_database(self):
        """Both Normal-approximation miners must return (nearly) the same itemsets."""
        database = large_random_db(3)
        uh = NDUHMine().mine(database, min_sup=0.3, pft=0.9)
        apriori = NDUApriori().mine(database, min_sup=0.3, pft=0.9)
        assert uh.itemset_keys() == apriori.itemset_keys()
        for record in uh:
            assert record.frequent_probability == pytest.approx(
                apriori[record.itemset].frequent_probability, abs=1e-9
            )

    def test_close_to_exact(self):
        database = large_random_db(4)
        approximate = NDUHMine().mine(database, min_sup=0.25, pft=0.9)
        exact = DCMiner().mine(database, min_sup=0.25, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.precision >= 0.9
        assert report.recall >= 0.9

    def test_search_threshold_low_pft_is_conservative(self):
        """With pft < 0.5 the search threshold must drop below min_count - 0.5."""
        threshold_high = NDUHMine._search_threshold(50, 0.9, 200)
        threshold_low = NDUHMine._search_threshold(50, 0.2, 200)
        assert threshold_high == pytest.approx(49.5)
        assert threshold_low < 49.5

    def test_low_pft_does_not_lose_itemsets(self):
        database = large_random_db(5)
        approximate = NDUHMine().mine(database, min_sup=0.3, pft=0.3)
        exact = DCMiner().mine(database, min_sup=0.3, pft=0.3)
        report = compare_results(approximate, exact)
        assert report.recall >= 0.9

    def test_statistics_algorithm_name(self, paper_db):
        result = NDUHMine().mine(paper_db, min_sup=0.5, pft=0.7)
        assert result.statistics.algorithm == "nduh-mine"
        assert "search_expected_support_threshold" in result.statistics.notes


class TestApproximationQualityImprovesWithSize:
    """The paper's central claim: the two definitions unify as N grows."""

    @pytest.mark.parametrize("algorithm_class", [NDUApriori, NDUHMine])
    def test_precision_and_recall_reach_one_on_large_data(self, algorithm_class):
        database = make_random_database(n_transactions=500, n_items=6, density=0.6, seed=11)
        approximate = algorithm_class().mine(database, min_sup=0.4, pft=0.9)
        exact = DCMiner().mine(database, min_sup=0.4, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.precision == pytest.approx(1.0)
        assert report.recall == pytest.approx(1.0)

    def test_small_database_may_disagree_but_large_does_not(self):
        small = make_random_database(n_transactions=20, n_items=6, density=0.6, seed=12)
        large = make_random_database(n_transactions=400, n_items=6, density=0.6, seed=12)
        small_report = compare_results(
            NDUApriori().mine(small, min_sup=0.4, pft=0.9),
            DCMiner().mine(small, min_sup=0.4, pft=0.9),
        )
        large_report = compare_results(
            NDUApriori().mine(large, min_sup=0.4, pft=0.9),
            DCMiner().mine(large, min_sup=0.4, pft=0.9),
        )
        assert large_report.f1 >= small_report.f1 - 1e-9


class TestTinyAbsoluteThresholds:
    """Regression tests: internal expected-support thresholds below 1 must not
    be re-interpreted as ratios of the database size."""

    def test_nduh_mine_with_min_count_of_one(self):
        database = make_random_database(n_transactions=30, n_items=5, density=0.5, seed=21)
        # min_sup low enough that min_count == 1 -> search threshold 0.5 (absolute).
        approximate = NDUHMine().mine(database, min_sup=0.03, pft=0.9)
        exact = DCMiner().mine(database, min_sup=0.03, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.recall >= 0.95

    def test_pdu_apriori_with_min_count_of_one(self):
        database = make_random_database(n_transactions=30, n_items=5, density=0.5, seed=22)
        approximate = PDUApriori().mine(database, min_sup=0.03, pft=0.3)
        exact = DCMiner().mine(database, min_sup=0.03, pft=0.3)
        report = compare_results(approximate, exact)
        assert report.recall >= 0.8
