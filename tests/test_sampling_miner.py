"""Tests for the possible-world sampling miner."""

import pytest

from repro.algorithms import DCMiner, WorldSamplingMiner
from repro.eval import compare_results

from helpers import make_random_database


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorldSamplingMiner(n_worlds=0)
        with pytest.raises(ValueError):
            WorldSamplingMiner(slack=1.0)

    def test_error_bound_shrinks_with_worlds(self):
        small = WorldSamplingMiner(n_worlds=100).error_bound()
        large = WorldSamplingMiner(n_worlds=10_000).error_bound()
        assert large < small

    def test_error_bound_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            WorldSamplingMiner().error_bound(delta=0.0)


class TestCorrectness:
    def test_paper_example(self, paper_db):
        """{A} (Pr = 0.8) and {C} (Pr ~ 0.95) are found at pft = 0.7."""
        result = WorldSamplingMiner(n_worlds=2000, seed=1).mine(
            paper_db, min_sup=0.5, pft=0.7
        )
        a = paper_db.vocabulary.id_of("A")
        c = paper_db.vocabulary.id_of("C")
        assert {record.itemset.items for record in result} == {(a,), (c,)}
        assert result[(a,)].frequent_probability == pytest.approx(0.8, abs=0.05)

    def test_estimates_close_to_exact_probabilities(self):
        database = make_random_database(n_transactions=40, n_items=6, density=0.5, seed=3)
        sampled = WorldSamplingMiner(n_worlds=1500, seed=2).mine(
            database, min_sup=0.25, pft=0.5
        )
        exact = DCMiner().mine(database, min_sup=0.25, pft=0.5)
        for record in sampled:
            exact_record = exact.get(record.itemset)
            if exact_record is not None:
                assert record.frequent_probability == pytest.approx(
                    exact_record.frequent_probability, abs=0.08
                )

    def test_membership_close_to_exact(self):
        database = make_random_database(n_transactions=60, n_items=6, density=0.5, seed=4)
        sampled = WorldSamplingMiner(n_worlds=800, seed=5).mine(
            database, min_sup=0.3, pft=0.9
        )
        exact = DCMiner().mine(database, min_sup=0.3, pft=0.9)
        report = compare_results(sampled, exact)
        assert report.recall >= 0.9
        assert report.precision >= 0.8

    def test_deterministic_given_seed(self, paper_db):
        first = WorldSamplingMiner(n_worlds=300, seed=9).mine(paper_db, min_sup=0.5, pft=0.7)
        second = WorldSamplingMiner(n_worlds=300, seed=9).mine(paper_db, min_sup=0.5, pft=0.7)
        assert first.itemset_keys() == second.itemset_keys()
        for record in first:
            assert record.frequent_probability == second[record.itemset].frequent_probability

    def test_registered_in_registry(self, paper_db):
        import repro

        assert "world-sampling" in repro.algorithm_names()
        result = repro.mine(
            paper_db, algorithm="world-sampling", min_sup=0.5, pft=0.7, n_worlds=500
        )
        assert len(result) >= 1

    def test_statistics(self, paper_db):
        result = WorldSamplingMiner(n_worlds=100).mine(paper_db, min_sup=0.5, pft=0.7)
        assert result.statistics.notes["worlds_sampled"] == 100.0
        assert result.statistics.exact_evaluations > 0
