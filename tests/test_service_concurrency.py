"""Concurrency hardening: hammering, admission, timeouts, leaks, locking.

* an N-thread hammer mixing datasets and algorithms gets every reply
  byte-correct for *its* request (no cross-request result bleed),
* admission is bounded: with workers=1 and queue=1 a third concurrent
  request is rejected immediately with ``overloaded``,
* per-request timeouts produce a structured ``timeout`` reply,
* a serve session leaves nothing behind: no live worker pools, no
  ``/dev/shm/repro_*`` segments (the PR-6 leak-check pattern),
* :class:`~repro.db.cache.ByteBudgetLRU` survives a multi-threaded
  hammer with exact byte accounting — the reentrancy regression test for
  the lock added alongside the service layer.
"""

from __future__ import annotations

import glob
import random
import threading
import time

import numpy as np
import pytest

from repro.core.miner import mine
from repro.core.parallel import live_pool_count
from repro.db.cache import ByteBudgetLRU, _payload_nbytes
from repro.service import (
    MiningClient,
    MiningServer,
    ServiceError,
    decode_records,
    record_keys,
)

from helpers import make_random_database


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/repro_*"))


def _inline_spec(database) -> dict:
    return {
        "kind": "inline",
        "records": [
            [[item, probability] for item, probability in sorted(t.units.items())]
            for t in database.transactions
        ],
    }


@pytest.fixture(scope="module")
def databases():
    # Disjoint item universes: any cross-request bleed is unmissable.
    low = make_random_database(n_transactions=30, n_items=5, density=0.5, seed=21)
    high_raw = make_random_database(n_transactions=25, n_items=5, density=0.6, seed=22)
    from repro.db import UncertainDatabase

    high = UncertainDatabase.from_records(
        [
            {item + 100: probability for item, probability in t.units.items()}
            for t in high_raw.transactions
        ],
        name="high",
    )
    return {"low": low, "high": high}


class TestHammer:
    def test_no_cross_request_bleed(self, databases):
        requests = [
            ("low", {"algorithm": "uapriori", "min_esup": 0.2}),
            ("low", {"algorithm": "dpb", "min_sup": 0.3, "pft": 0.5}),
            ("high", {"algorithm": "uapriori", "min_esup": 0.25}),
            ("high", {"algorithm": "pdu-apriori", "min_sup": 0.3, "pft": 0.6}),
        ]
        expected = {}
        for name, params in requests:
            database = databases[name]
            kwargs = {k: v for k, v in params.items() if k != "algorithm"}
            result = mine(database, algorithm=params["algorithm"], **kwargs)
            expected[(name, tuple(sorted(params.items())))] = record_keys(
                result.itemsets
            )

        failures = []
        with MiningServer(max_workers=4, max_queue=64) as server:
            for name, database in databases.items():
                server.registry.register(name, _inline_spec(database))
            host, port = server.address

            def hammer(seed: int) -> None:
                rng = random.Random(seed)
                try:
                    with MiningClient(host, port) as client:
                        for _ in range(12):
                            name, params = rng.choice(requests)
                            reply = client.mine(name, **params)
                            got = record_keys(decode_records(reply["itemsets"]))
                            want = expected[(name, tuple(sorted(params.items())))]
                            if got != want:
                                failures.append((name, params, reply["cache"]))
                except Exception as error:  # noqa: BLE001 - collected below
                    failures.append(("exception", repr(error), None))

            threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
        assert failures == []

    def test_hammer_mixed_with_topk_and_errors(self, databases):
        failures = []
        expected_topk = record_keys(
            __import__("repro.core.topk", fromlist=["mine_topk"])
            .mine_topk(databases["low"], 5, algorithm="esup")
            .itemsets
        )
        with MiningServer(max_workers=4, max_queue=64) as server:
            server.registry.register("low", _inline_spec(databases["low"]))
            host, port = server.address

            def worker(seed: int) -> None:
                rng = random.Random(1000 + seed)
                try:
                    with MiningClient(host, port) as client:
                        for _ in range(10):
                            roll = rng.random()
                            if roll < 0.4:
                                reply = client.mine_topk("low", 5)
                                got = record_keys(decode_records(reply["itemsets"]))
                                if got != expected_topk:
                                    failures.append(("topk", reply["cache"]))
                            elif roll < 0.7:
                                client.mine("low", algorithm="uapriori", min_esup=0.3)
                            else:
                                # Bad requests interleaved with good ones
                                # must produce structured errors only.
                                try:
                                    client.mine("missing-dataset")
                                    failures.append(("no-error", None))
                                except ServiceError as error:
                                    if error.type != "unknown-dataset":
                                        failures.append(("wrong-type", error.type))
                except Exception as error:  # noqa: BLE001
                    failures.append(("exception", repr(error)))

            threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
        assert failures == []


class TestAdmissionControl:
    def test_bounded_queue_rejects_third_concurrent_request(self):
        with MiningServer(max_workers=1, max_queue=1) as server:
            host, port = server.address
            replies = {}

            def occupy(slot: str) -> None:
                with MiningClient(host, port) as client:
                    replies[slot] = client.ping(delay_seconds=0.6)

            first = threading.Thread(target=occupy, args=("first",))
            second = threading.Thread(target=occupy, args=("second",))
            first.start()
            time.sleep(0.15)
            second.start()
            time.sleep(0.15)
            # workers+queue = 2 slots are now held; the third must bounce.
            # retries=0: the default client retries overloaded rejections
            # (honouring retry-after), which would inflate the rejection
            # counter this test pins.
            with MiningClient(host, port, retries=0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ping(delay_seconds=0.1)
                assert excinfo.value.type == "overloaded"
                assert excinfo.value.retry_after_seconds is not None
                started = time.monotonic()
                assert client.ping()["pong"] is True  # light ops bypass admission
                assert time.monotonic() - started < 0.5
            first.join(timeout=10.0)
            second.join(timeout=10.0)
            assert replies["first"]["pong"] and replies["second"]["pong"]
            # Slots were released: heavy requests are admitted again.
            with MiningClient(host, port) as client:
                assert client.ping(delay_seconds=0.01)["pong"] is True
            assert server.requests_rejected == 1

    def test_rejection_does_not_leak_admission_slots(self):
        with MiningServer(max_workers=1, max_queue=0) as server:
            host, port = server.address
            holder = threading.Thread(
                target=lambda: MiningClient(host, port).__enter__().ping(
                    delay_seconds=0.5
                )
            )
            holder.start()
            time.sleep(0.15)
            # retries=0: each rejection must surface, not be retried away.
            with MiningClient(host, port, retries=0) as client:
                for _ in range(5):
                    with pytest.raises(ServiceError):
                        client.ping(delay_seconds=0.05)
            holder.join(timeout=10.0)
            with MiningClient(host, port) as client:
                assert client.ping(delay_seconds=0.01)["pong"] is True


class TestTimeouts:
    def test_server_side_timeout_is_structured(self):
        with MiningServer(max_workers=2, max_queue=2, timeout_seconds=0.2) as server:
            host, port = server.address
            with MiningClient(host, port) as client:
                started = time.monotonic()
                with pytest.raises(ServiceError) as excinfo:
                    client.ping(delay_seconds=1.0)
                elapsed = time.monotonic() - started
                assert excinfo.value.type == "timeout"
                assert elapsed < 0.9  # the reply beat the stranded sleep
                assert server.requests_timed_out == 1

    def test_per_request_timeout_caps_below_server_default(self):
        with MiningServer(max_workers=2, max_queue=2, timeout_seconds=30.0) as server:
            host, port = server.address
            with MiningClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ping(delay_seconds=0.8, timeout_seconds=0.1)
                assert excinfo.value.type == "timeout"


class TestLeaks:
    def test_serve_session_leaves_no_pools_or_segments(self, databases):
        pools_before = live_pool_count()
        segments_before = _shm_segments()
        server = MiningServer(max_workers=2, max_queue=8).start()
        try:
            server.registry.register("low", _inline_spec(databases["low"]))
            host, port = server.address
            with MiningClient(host, port) as client:
                # workers=2 engages the partition-parallel engine (process
                # pool + shared-memory fan-out) inside the request.
                reply = client.mine(
                    "low", algorithm="uapriori", min_esup=0.2, workers=2, shards=2
                )
                sequential = client.mine(
                    "low", algorithm="uapriori", min_esup=0.2, cache=False
                )
                assert reply["itemsets"] == sequential["itemsets"]
        finally:
            server.close()
        assert live_pool_count() == pools_before
        assert _shm_segments() == segments_before


class TestByteBudgetLRUThreadSafety:
    def test_threaded_hammer_keeps_exact_accounting(self):
        cache = ByteBudgetLRU(budget_bytes=4096)
        arrays = [np.zeros(size, dtype=np.uint8) for size in (64, 128, 256, 512)]
        stop = threading.Event()
        errors = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                while not stop.is_set():
                    key = rng.randrange(40)
                    roll = rng.random()
                    if roll < 0.5:
                        cache.put(key, rng.choice(arrays))
                    elif roll < 0.8:
                        cache.get(key)
                    elif roll < 0.9:
                        cache.pop(key)
                    else:
                        cache.peek(key)
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.6)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == []
        # The invariant the lock protects: nbytes equals the exact sum of
        # the retained payloads, and never exceeds the budget.
        retained = sum(_payload_nbytes(cache.peek(k)) for k in cache.keys())
        assert cache.nbytes == retained
        assert cache.nbytes <= cache.budget_bytes

    def test_concurrent_put_single_key_no_double_count(self):
        cache = ByteBudgetLRU(budget_bytes=1 << 20)
        value = np.zeros(1024, dtype=np.uint8)
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for _ in range(200):
                cache.put("k", value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(cache) == 1
        assert cache.nbytes == value.nbytes


class TestShutdownUnderLoad:
    def test_close_during_hammer_never_hangs_clients(self, databases):
        server = MiningServer(max_workers=4, max_queue=16).start()
        server.registry.register("low", _inline_spec(databases["low"]))
        host, port = server.address
        outcomes = []

        def client_loop(seed: int) -> None:
            rng = random.Random(seed)
            try:
                with MiningClient(host, port, timeout_seconds=15.0) as client:
                    while True:
                        client.mine(
                            "low",
                            algorithm="uapriori",
                            min_esup=0.2 + rng.random() / 4,
                        )
            except ServiceError as error:
                outcomes.append(error.type)  # structured mid-shutdown reply
            except (ConnectionError, OSError):
                outcomes.append("disconnected")  # pre-structured-client net

        threads = [threading.Thread(target=client_loop, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        server.close()
        for thread in threads:
            thread.join(timeout=20.0)
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) == 4
        # connection-lost: the client now types a mid-request connection
        # death (and its exhausted retries) instead of leaking the raw
        # ConnectionError.
        assert set(outcomes) <= {"shutting-down", "connection-lost", "disconnected"}
