"""Tests for the experiment scenarios, the sweep runner and the reporting layer."""

import pytest

from repro.eval import (
    ExperimentSpec,
    all_scenarios,
    figure4_scalability,
    figure4_time_and_memory,
    figure5_min_sup,
    figure6_min_sup,
    format_accuracy_table,
    format_summary_matrix,
    format_sweep_table,
    format_table,
    run_accuracy_experiment,
    run_experiment,
    summary_matrix,
    sweep_to_series,
    table8_accuracy_dense,
    write_csv,
)
from repro.eval.runner import SweepPoint


class TestScenarioDefinitions:
    def test_every_figure_and_table_has_a_scenario(self):
        identifiers = {spec.experiment_id for spec in all_scenarios()}
        for required in (
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4i", "fig4k",
            "fig5a", "fig5c", "fig5e", "fig5g", "fig5i", "fig5k",
            "fig6a", "fig6c", "fig6e", "fig6g", "fig6i", "fig6k",
            "table8", "table9",
        ):
            assert required in identifiers

    def test_fig4_uses_expected_support_miners(self):
        for spec in figure4_time_and_memory():
            assert set(spec.algorithms) == {"uapriori", "uh-mine", "ufp-growth"}
            assert spec.parameter == "min_esup"

    def test_fig5_uses_exact_miners(self):
        for spec in figure5_min_sup():
            assert set(spec.algorithms) == {"dpnb", "dpb", "dcnb", "dcb"}

    def test_fig6_includes_dcb_reference(self):
        for spec in figure6_min_sup():
            assert "dcb" in spec.algorithms
            assert "nduh-mine" in spec.algorithms

    def test_memory_variant(self):
        spec = figure4_scalability()
        memory_spec = spec.with_memory_tracking()
        assert memory_spec.track_memory
        assert memory_spec.experiment_id.endswith("-memory")
        assert not spec.track_memory


class TestRunner:
    @pytest.fixture(scope="class")
    def tiny_spec(self):
        return ExperimentSpec(
            experiment_id="unit-test",
            title="tiny sweep",
            dataset="gazelle",
            algorithms=("uapriori", "uh-mine"),
            parameter="min_esup",
            values=(0.1, 0.05),
            dataset_kwargs={"scale": 0.001},
        )

    def test_run_experiment_produces_one_point_per_algorithm_and_value(self, tiny_spec):
        points = run_experiment(tiny_spec)
        assert len(points) == 4
        assert {point.algorithm for point in points} == {"uapriori", "uh-mine"}
        assert all(point.elapsed_seconds >= 0 for point in points)
        assert all(point.n_itemsets >= 0 for point in points)

    def test_max_points_truncates(self, tiny_spec):
        points = run_experiment(tiny_spec, max_points=1)
        assert len(points) == 2
        assert {point.value for point in points} == {0.1}

    def test_dataset_shaping_parameter_rebuilds(self):
        spec = ExperimentSpec(
            experiment_id="unit-scal",
            title="scalability",
            dataset="t25i15d",
            algorithms=("uh-mine",),
            parameter="n_transactions",
            values=(60, 120),
            fixed={"min_esup": 0.1},
        )
        points = run_experiment(spec)
        assert len(points) == 2

    def test_accuracy_experiment(self):
        spec = ExperimentSpec(
            experiment_id="unit-acc",
            title="accuracy",
            dataset="gazelle",
            algorithms=("ndu-apriori",),
            parameter="min_sup",
            values=(0.05,),
            dataset_kwargs={"scale": 0.001},
            fixed={"pft": 0.9},
        )
        points = run_accuracy_experiment(spec)
        assert len(points) == 1
        assert 0.0 <= points[0].precision <= 1.0
        assert 0.0 <= points[0].recall <= 1.0


class TestReporting:
    def make_points(self):
        return [
            SweepPoint("fig", "ds", "alg-a", "min_esup", 0.5, 1.0, 100, 5),
            SweepPoint("fig", "ds", "alg-b", "min_esup", 0.5, 2.0, 200, 5),
            SweepPoint("fig", "ds", "alg-a", "min_esup", 0.4, 3.0, 150, 9),
            SweepPoint("fig", "ds", "alg-b", "min_esup", 0.4, 1.5, 250, 9),
        ]

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}], ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")

    def test_sweep_to_series(self):
        series = sweep_to_series(self.make_points())
        assert series["alg-a"] == [(0.4, 3.0), (0.5, 1.0)]

    def test_format_sweep_table_contains_all_algorithms(self):
        text = format_sweep_table(self.make_points())
        assert "alg-a" in text and "alg-b" in text
        assert "0.4" in text and "0.5" in text

    def test_format_sweep_table_empty(self):
        assert format_sweep_table([]) == "(no data)"

    def test_summary_matrix_picks_fastest(self):
        winners = summary_matrix(self.make_points())
        # alg-a total 4.0s vs alg-b total 3.5s
        assert winners == {"fig": "alg-b"}
        assert "alg-b" in format_summary_matrix(winners)

    def test_write_csv(self, tmp_path):
        path = tmp_path / "points.csv"
        write_csv(self.make_points(), path)
        content = path.read_text().splitlines()
        assert content[0].startswith("experiment_id,")
        assert len(content) == 5

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")

    def test_format_accuracy_table(self):
        spec = table8_accuracy_dense()
        from repro.eval.runner import AccuracyPoint

        points = [
            AccuracyPoint(spec.experiment_id, "accident", "ndu-apriori", "min_sup", 0.3, 1.0, 0.98)
        ]
        text = format_accuracy_table(points)
        assert "P=1.00" in text and "R=0.98" in text
