"""Shared fixtures for the test-suite."""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.db import DatabaseBuilder, UncertainDatabase, paper_example_database


@pytest.fixture
def paper_db() -> UncertainDatabase:
    """The paper's Table 1 example (4 transactions, items A-F)."""
    return paper_example_database()


@pytest.fixture
def tiny_db() -> UncertainDatabase:
    """A three-transaction database small enough for exhaustive world enumeration."""
    builder = DatabaseBuilder(name="tiny")
    builder.add_transaction([(0, 0.5), (1, 0.9)])
    builder.add_transaction([(0, 1.0), (2, 0.4)])
    builder.add_transaction([(1, 0.3), (2, 0.8)])
    return builder.build()


def make_random_database(
    n_transactions: int = 30,
    n_items: int = 8,
    density: float = 0.4,
    seed: int = 0,
    name: str = "random",
) -> UncertainDatabase:
    """Build a reproducible random uncertain database for consistency tests."""
    rng = random.Random(seed)
    records: List[Dict[int, float]] = []
    for _ in range(n_transactions):
        units: Dict[int, float] = {}
        for item in range(n_items):
            if rng.random() < density:
                units[item] = round(rng.uniform(0.05, 1.0), 3)
        records.append(units)
    return UncertainDatabase.from_records(records, name=name)


@pytest.fixture
def random_db() -> UncertainDatabase:
    """A medium random database (30 transactions, 8 items)."""
    return make_random_database()


@pytest.fixture(params=[1, 2, 3])
def seeded_random_db(request) -> UncertainDatabase:
    """Several random databases with different seeds."""
    return make_random_database(seed=request.param, name=f"random-{request.param}")
