"""Shared fixtures for the test-suite.

Plain helper functions live in :mod:`tests.helpers` (imported explicitly by
the test modules that need them) so that this conftest never has to be an
import target — ``import conftest`` is ambiguous whenever another conftest
(e.g. the benchmark harness's) is also on ``sys.path``.
"""

from __future__ import annotations

import pytest

from repro.db import DatabaseBuilder, UncertainDatabase, paper_example_database

from helpers import make_random_database


@pytest.fixture
def paper_db() -> UncertainDatabase:
    """The paper's Table 1 example (4 transactions, items A-F)."""
    return paper_example_database()


@pytest.fixture
def tiny_db() -> UncertainDatabase:
    """A three-transaction database small enough for exhaustive world enumeration."""
    builder = DatabaseBuilder(name="tiny")
    builder.add_transaction([(0, 0.5), (1, 0.9)])
    builder.add_transaction([(0, 1.0), (2, 0.4)])
    builder.add_transaction([(1, 0.3), (2, 0.8)])
    return builder.build()


@pytest.fixture
def random_db() -> UncertainDatabase:
    """A medium random database (30 transactions, 8 items)."""
    return make_random_database()


@pytest.fixture(params=[1, 2, 3])
def seeded_random_db(request) -> UncertainDatabase:
    """Several random databases with different seeds."""
    return make_random_database(seed=request.param, name=f"random-{request.param}")
