"""Tests for the UFP-growth miner and the UFP-tree structure."""

import pytest

from repro.algorithms import UApriori, UFPGrowth
from repro.algorithms.ufp_growth import UFPTree

from helpers import make_random_database


class TestUFPTree:
    def test_nodes_shared_only_on_identical_item_and_probability(self):
        tree = UFPTree(item_order={1: 0, 2: 1})
        tree.insert([(1, 0.5), (2, 0.3)])
        tree.insert([(1, 0.5), (2, 0.4)])
        tree.insert([(1, 0.6)])
        # item 1 with probability 0.5 is shared; 0.6 creates a second node.
        assert len(tree.nodes_of(1)) == 2
        # item 2 probabilities differ, so two distinct nodes exist.
        assert len(tree.nodes_of(2)) == 2

    def test_item_expected_support_accumulates(self):
        tree = UFPTree(item_order={1: 0})
        tree.insert([(1, 0.5)])
        tree.insert([(1, 0.5)])
        tree.insert([(1, 0.2)])
        assert tree.item_expected_support[1] == pytest.approx(1.2)

    def test_prefix_path(self):
        tree = UFPTree(item_order={1: 0, 2: 1, 3: 2})
        tree.insert([(1, 0.9), (2, 0.8), (3, 0.7)])
        node = tree.nodes_of(3)[0]
        assert tree.prefix_path(node) == [(1, 0.9), (2, 0.8)]

    def test_shared_prefix_increases_count(self):
        tree = UFPTree(item_order={1: 0, 2: 1})
        tree.insert([(1, 0.9), (2, 0.8)])
        tree.insert([(1, 0.9)])
        node = tree.nodes_of(1)[0]
        assert node.count == 2


class TestPaperExample:
    def test_matches_paper_at_quarter_support(self, paper_db):
        """The paper builds the UFP-tree for Table 1 at min_esup = 0.25."""
        result = UFPGrowth().mine(paper_db, min_esup=0.25)
        vocabulary = paper_db.vocabulary
        labels = {
            frozenset(vocabulary.labels_of(record.itemset.items)) for record in result
        }
        assert frozenset({"A"}) in labels
        assert frozenset({"C"}) in labels
        assert frozenset({"A", "C"}) in labels
        assert frozenset({"C", "E"}) in labels

    def test_item_order_by_expected_support(self, paper_db):
        """The paper orders items C, A, F, B, E, D for the Table 1 database."""
        miner = UFPGrowth()
        from repro.algorithms.common import frequent_items_by_expected_support

        frequent = frequent_items_by_expected_support(paper_db, 1.0)
        tree = miner._build_global_tree(paper_db, frequent)
        vocabulary = paper_db.vocabulary
        ordered = sorted(tree.item_order, key=tree.item_order.get)
        assert vocabulary.labels_of(ordered) == ["C", "A", "F", "B", "E", "D"]


class TestCorrectness:
    @pytest.mark.parametrize("min_esup", [0.1, 0.2, 0.35])
    def test_matches_uapriori(self, seeded_random_db, min_esup):
        tree_result = UFPGrowth().mine(seeded_random_db, min_esup=min_esup)
        apriori_result = UApriori().mine(seeded_random_db, min_esup=min_esup)
        assert tree_result.itemset_keys() == apriori_result.itemset_keys()

    @pytest.mark.parametrize("min_esup", [0.15, 0.3])
    def test_expected_supports_are_exact(self, random_db, min_esup):
        result = UFPGrowth().mine(random_db, min_esup=min_esup)
        for record in result:
            assert record.expected_support == pytest.approx(
                random_db.expected_support(record.itemset), abs=1e-9
            )

    def test_probability_rounding_option(self, random_db):
        """Coarse rounding keeps the same frequent items (it only merges nodes)."""
        exact = UFPGrowth().mine(random_db, min_esup=0.3)
        rounded = UFPGrowth(probability_precision=6).mine(random_db, min_esup=0.3)
        assert exact.itemset_keys() == rounded.itemset_keys()

    def test_single_item_variance_when_tracked(self, paper_db):
        result = UFPGrowth(track_variance=True).mine(paper_db, min_esup=0.5)
        a = paper_db.vocabulary.id_of("A")
        assert result[(a,)].variance == pytest.approx(paper_db.support_variance((a,)))


class TestBehaviour:
    def test_limited_sharing_produces_many_nodes(self):
        """Distinct probabilities prevent node sharing (the paper's criticism)."""
        database = make_random_database(n_transactions=40, n_items=6, density=0.8, seed=9)
        miner = UFPGrowth()
        result = miner.mine(database, min_esup=0.1)
        # With continuous probabilities, the global tree has nearly one node per unit.
        total_units = sum(len(t) for t in database)
        assert result.statistics.notes["global_tree_nodes"] >= 0.75 * total_units

    def test_conditional_tree_count_recorded(self, random_db):
        result = UFPGrowth().mine(random_db, min_esup=0.15)
        assert result.statistics.notes.get("conditional_trees", 0) >= len(result)

    def test_empty_result_above_max_support(self, paper_db):
        assert len(UFPGrowth().mine(paper_db, min_esup=0.95)) == 0

    def test_statistics_algorithm_name(self, paper_db):
        result = UFPGrowth().mine(paper_db, min_esup=0.5)
        assert result.statistics.algorithm == "ufp-growth"


class TestProbabilityPrecisionClamp:
    """Regression: rounding for node sharing must stay inside ``(0, 1]`` —
    a sub-grid existential probability that rounds to 0.0 would silently
    delete the unit from the tree."""

    def test_sub_grid_probabilities_survive_rounding(self):
        from repro.db import UncertainDatabase

        precision = 3
        # 0.0004 < 0.5 * 10**-3: bare round() maps it to 0.0, dropping the
        # unit; the clamp keeps it at the grid floor 0.001 instead.
        records = [{0: 0.9, 1: 0.0004} for _ in range(5)] + [
            {0: 0.8} for _ in range(3)
        ]
        database = UncertainDatabase.from_records(records)
        threshold = 0.0002  # ratio -> absolute 0.0016, below esup({1}) = 0.002

        exact = UApriori().mine(database, min_esup=threshold)
        rounded = UFPGrowth(probability_precision=precision).mine(
            database, min_esup=threshold
        )

        # The tiny-probability item (and its 2-itemset) must not be dropped.
        exact_keys = {record.itemset.items for record in exact}
        assert (1,) in exact_keys
        assert {record.itemset.items for record in rounded} == exact_keys

        # Expected supports agree within the rounding tolerance:
        # one grid step per contributing transaction.
        tolerance = len(database) * 10.0 ** -precision
        for record in rounded:
            assert record.expected_support == pytest.approx(
                exact[record.itemset].expected_support, abs=tolerance
            )

    def test_rounding_does_not_exceed_certainty(self):
        from repro.db import UncertainDatabase

        database = UncertainDatabase.from_records(
            [{0: 0.99996, 1: 1.0} for _ in range(4)]
        )
        result = UFPGrowth(probability_precision=2).mine(database, min_esup=0.1)
        for record in result:
            # Clamped rounding can never push an expected support above the
            # transaction count.
            assert record.expected_support <= len(database) + 1e-9

    def test_precision_below_one_rejected(self):
        # precision 0 would clamp every probability to 1.0 (the grid step
        # is the whole unit interval), silently making the database certain.
        with pytest.raises(ValueError, match="probability_precision"):
            UFPGrowth(probability_precision=0)
