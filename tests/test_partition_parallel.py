"""Partition-parallel engine: shard-merge exactness across every miner.

The contract pinned here is deliberately stronger than "numerically close":
a mining run with any ``(workers, shards)`` configuration must return
*byte-identical* frequent itemsets, expected supports, variances and tail
probabilities to the serial columnar path, because

* per-shard compressed vectors concatenate to the serial vectors bitwise
  (per-transaction products are row-local),
* candidate-chunked DP/DC tails run the identical serial kernels per chunk,
* item statistics and moments are always derived with the serial reductions.

The :class:`~repro.core.support.MergeableSupportStats` *algebra* (moments
merged by addition, PMFs merged by convolution) is exact arithmetic-wise
but may differ from the serial reductions in the last ulp, so it is tested
to 1e-12 as the issue specifies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import mine
from repro.core.parallel import (
    ParallelExecutor,
    even_chunks,
    resolve_shards,
    resolve_workers,
)
from repro.core.registry import algorithm_names, get_algorithm
from repro.core.support import (
    MergeableSupportStats,
    SupportEngine,
    frequent_probabilities_dp_batch,
    pack_probability_matrix,
)
from repro.db.partition import shard_bounds

from helpers import make_random_database

EXPECTED_MINERS = ["uapriori", "uh-mine", "ufp-growth", "exhaustive-expected"]
PROBABILISTIC_MINERS = [
    "dpb",
    "dpnb",
    "dcb",
    "dcnb",
    "pdu-apriori",
    "ndu-apriori",
    "nduh-mine",
    "world-sampling",
    "exhaustive-prob",
]

#: (workers, shards) configurations exercised against the serial reference
PARALLEL_CONFIGS = [(1, 3), (2, 2), (2, 4)]


@pytest.fixture(params=["paper_db", "dense_random_db", "sparse_random_db"])
def any_db(request):
    if request.param == "dense_random_db":
        return make_random_database(n_transactions=40, n_items=6, density=0.8, seed=31)
    if request.param == "sparse_random_db":
        return make_random_database(n_transactions=60, n_items=12, density=0.15, seed=32)
    return request.getfixturevalue(request.param)


def _assert_byte_identical(parallel, serial):
    assert parallel.itemset_keys() == serial.itemset_keys()
    for record in parallel:
        reference = serial[record.itemset]
        assert record.expected_support == reference.expected_support
        assert record.variance == reference.variance
        assert record.frequent_probability == reference.frequent_probability


class TestRegistryCoverage:
    def test_every_registered_algorithm_is_covered(self):
        assert set(EXPECTED_MINERS + PROBABILISTIC_MINERS) == set(algorithm_names())

    def test_all_factories_accept_workers_and_shards(self):
        for name in algorithm_names():
            miner = get_algorithm(name).factory(workers=2, shards=3)
            assert miner.workers == 2
            assert miner.shards == 3


class TestMinersByteIdentical:
    @pytest.mark.parametrize("algorithm", EXPECTED_MINERS)
    @pytest.mark.parametrize("workers,shards", PARALLEL_CONFIGS)
    def test_expected_miners(self, any_db, algorithm, workers, shards):
        serial = mine(any_db, algorithm=algorithm, min_esup=0.2)
        parallel = mine(
            any_db, algorithm=algorithm, min_esup=0.2, workers=workers, shards=shards
        )
        _assert_byte_identical(parallel, serial)

    @pytest.mark.parametrize("algorithm", PROBABILISTIC_MINERS)
    @pytest.mark.parametrize("workers,shards", PARALLEL_CONFIGS)
    def test_probabilistic_miners(self, any_db, algorithm, workers, shards):
        serial = mine(any_db, algorithm=algorithm, min_sup=0.3, pft=0.7)
        parallel = mine(
            any_db,
            algorithm=algorithm,
            min_sup=0.3,
            pft=0.7,
            workers=workers,
            shards=shards,
        )
        _assert_byte_identical(parallel, serial)

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_randomized_databases_exact_miners(self, seed):
        database = make_random_database(
            n_transactions=50, n_items=7, density=0.5, seed=seed
        )
        for algorithm in ("dpb", "dcnb"):
            serial = mine(database, algorithm=algorithm, min_sup=0.25, pft=0.6)
            parallel = mine(
                database,
                algorithm=algorithm,
                min_sup=0.25,
                pft=0.6,
                workers=2,
                shards=3,
            )
            _assert_byte_identical(parallel, serial)


class TestPartition:
    def test_shard_bounds_cover_rows_without_overlap(self):
        for n, k in [(10, 3), (7, 7), (5, 9), (0, 4), (100, 1)]:
            bounds = shard_bounds(n, k)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == n
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            assert all(stop >= start for start, stop in bounds)

    def test_shard_vectors_concatenate_bitwise(self):
        database = make_random_database(n_transactions=45, n_items=8, seed=41)
        view = database.columnar()
        partition = database.partition(4)
        candidates = [(0,), (1, 2), (0, 1, 3), (5, 6)]
        full = view.batch_vectors(candidates)
        merged = partition.batch_vectors(candidates)
        for reference, vector in zip(full, merged):
            assert np.array_equal(reference, vector)

    def test_itemset_column_merges_to_global_rows(self):
        database = make_random_database(n_transactions=30, n_items=5, seed=42)
        rows, probs = database.partition(3).itemset_column((0, 1))
        reference_rows, reference_probs = database.columnar().itemset_column((0, 1))
        assert np.array_equal(rows, reference_rows)
        assert np.array_equal(probs, reference_probs)

    def test_partition_is_cached_per_shard_count(self):
        database = make_random_database(seed=43)
        assert database.partition(2) is database.partition(2)
        assert database.partition(2) is not database.partition(3)

    def test_slice_rows_rejects_bad_ranges(self):
        view = make_random_database(seed=44).columnar()
        with pytest.raises(ValueError):
            view.slice_rows(-1, 2)
        with pytest.raises(ValueError):
            view.slice_rows(5, 2)
        with pytest.raises(ValueError):
            view.slice_rows(0, len(view) + 1)


class TestMergeableSupportStats:
    def _partition_and_candidates(self, seed=51, shards=3):
        database = make_random_database(
            n_transactions=40, n_items=6, density=0.6, seed=seed
        )
        candidates = [(0,), (0, 1), (1, 2, 3), (4, 5)]
        return database, database.partition(shards), candidates

    def test_additive_merge_matches_serial_moments_within_1e12(self):
        database, partition, candidates = self._partition_and_candidates()
        stats = MergeableSupportStats.from_partition(partition, candidates)
        engine = SupportEngine(database.columnar().batch_vectors(candidates))
        np.testing.assert_allclose(
            stats.expected, engine.expected_supports(), rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(
            stats.variance, engine.variances(), rtol=0, atol=1e-12
        )
        assert np.array_equal(stats.max_supports, engine.nonzero_counts())

    def test_pmf_convolution_merge_matches_serial_tails_within_1e12(self):
        database, partition, candidates = self._partition_and_candidates(seed=52)
        stats = MergeableSupportStats.from_partition(
            partition, candidates, with_pmfs=True
        )
        engine = SupportEngine(database.columnar().batch_vectors(candidates))
        for min_count in (1, 3, 8):
            np.testing.assert_allclose(
                stats.frequent_probabilities(min_count),
                engine.frequent_probabilities(min_count),
                rtol=0,
                atol=1e-12,
            )

    def test_engine_over_merged_vectors_is_byte_exact(self):
        database, partition, candidates = self._partition_and_candidates(seed=53)
        stats = MergeableSupportStats.from_partition(partition, candidates)
        serial = SupportEngine(database.columnar().batch_vectors(candidates))
        merged = stats.engine()
        assert np.array_equal(merged.expected_supports(), serial.expected_supports())
        assert np.array_equal(
            merged.frequent_probabilities(4), serial.frequent_probabilities(4)
        )

    def test_merge_rejects_mismatched_parts(self):
        left = MergeableSupportStats.from_vectors([[0.5]])
        right = MergeableSupportStats.from_vectors([[0.5], [0.25]])
        with pytest.raises(ValueError):
            left.merge(right)
        with_pmf = MergeableSupportStats.from_vectors([[0.5]], with_pmfs=True)
        with pytest.raises(ValueError):
            left.merge(with_pmf)
        with pytest.raises(ValueError):
            MergeableSupportStats.merge_all([])

    def test_frequent_probabilities_require_pmfs(self):
        stats = MergeableSupportStats.from_vectors([[0.5]])
        with pytest.raises(ValueError):
            stats.frequent_probabilities(1)


class TestParallelExecutor:
    def test_chunked_dp_tails_bitwise_identical(self):
        database = make_random_database(n_transactions=50, n_items=6, seed=61)
        vectors = database.columnar().batch_vectors([(0,), (1,), (0, 1), (2, 3)])
        serial = frequent_probabilities_dp_batch(pack_probability_matrix(vectors), 6)
        with ParallelExecutor(workers=2) as executor:
            assert np.array_equal(executor.dp_tails(vectors, 6), serial)

    def test_chunked_dc_tails_bitwise_identical(self):
        database = make_random_database(n_transactions=50, n_items=6, seed=62)
        vectors = database.columnar().batch_vectors([(0,), (1,), (0, 1), (2, 3)])
        serial = SupportEngine(vectors).frequent_probabilities(
            6, method="divide_conquer"
        )
        with ParallelExecutor(workers=2) as executor:
            assert np.array_equal(executor.dc_tails(vectors, 6), serial)

    def test_engine_delegates_to_executor(self):
        database = make_random_database(n_transactions=30, n_items=5, seed=63)
        vectors = database.columnar().batch_vectors([(0,), (1,), (2,)])
        serial = SupportEngine(vectors).frequent_probabilities(4)
        with ParallelExecutor(workers=2) as executor:
            delegated = SupportEngine(vectors, executor=executor).frequent_probabilities(4)
        assert np.array_equal(delegated, serial)

    def test_per_shard_result_cache(self):
        database = make_random_database(n_transactions=20, n_items=5, seed=64)
        partition = database.partition(2)
        candidates = [(0,), (1,), (0, 1)]
        with ParallelExecutor(workers=1, shard_views=partition.shards) as executor:
            first = executor.shard_vectors(candidates)
            assert executor.cache_hits == 0
            second = executor.shard_vectors(candidates)
            assert executor.cache_hits == len(partition.shards)
        for left, right in zip(first, second):
            assert np.array_equal(left, right)

    def test_shard_vectors_requires_shards(self):
        with ParallelExecutor(workers=1) as executor:
            with pytest.raises(RuntimeError):
                executor.shard_vectors([(0,)])

    def test_even_chunks_preserve_order(self):
        items = list(range(11))
        chunks = even_chunks(items, 3)
        assert [item for chunk in chunks for item in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
        assert even_chunks([], 4) == []


class TestResolution:
    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) >= 1

    def test_resolve_workers_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_resolve_shards_defaults_to_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None, workers=4) == 4
        monkeypatch.setenv("REPRO_SHARDS", "6")
        assert resolve_shards(None, workers=2) == 6
        assert resolve_shards(3, workers=2) == 3
        with pytest.raises(ValueError):
            resolve_shards(0, workers=2)

    def test_env_vars_reach_the_miners(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARDS", "3")
        miner = get_algorithm("uapriori").factory()
        assert miner.workers == 2
        assert miner.shards == 3

    def test_statistics_record_parallel_configuration(self):
        database = make_random_database(seed=71)
        result = mine(database, algorithm="uapriori", min_esup=0.3, workers=1, shards=2)
        assert result.statistics.notes["workers"] == 1.0
        assert result.statistics.notes["shards"] == 2.0


class TestShardResultCacheLru:
    """The coordinator cache is a true LRU and can hold legitimate ``None``s."""

    class _Shard:
        """Duck-typed shard counting how often each method is evaluated."""

        def __init__(self):
            self.calls = 0

        def answer(self, payload):
            self.calls += 1
            return payload

        def nothing(self):
            self.calls += 1
            return None

    def test_hit_refreshes_recency(self):
        shard = self._Shard()
        # cache_size bounds entries at cache_size * n_shards = 2.
        with ParallelExecutor(
            workers=1, shard_views=[shard], cache_size=2
        ) as executor:
            executor.map_shard_method("answer", "a")  # cache: [a]
            executor.map_shard_method("answer", "b")  # cache: [a, b]
            executor.map_shard_method("answer", "a")  # hit refreshes a: [b, a]
            assert executor.cache_hits == 1
            executor.map_shard_method("answer", "c")  # evicts b (LRU), not a
            assert executor.map_shard_method("answer", "a") == ["a"]
            assert executor.cache_hits == 2  # a stayed resident
            assert shard.calls == 3  # a, b, c computed once each

    def test_fifo_regression_hot_entry_survives(self):
        # The pre-fix FIFO behaviour evicted the oldest *inserted* entry even
        # when it was the hottest; with move_to_end the repeatedly-queried
        # entry survives an arbitrary number of cold insertions.
        shard = self._Shard()
        with ParallelExecutor(
            workers=1, shard_views=[shard], cache_size=2
        ) as executor:
            executor.map_shard_method("answer", "hot")
            for cold in range(5):
                executor.map_shard_method("answer", f"cold-{cold}")
                executor.map_shard_method("answer", "hot")
            # hot: 1 computation + 5 hits; cold: 5 computations.
            assert shard.calls == 6
            assert executor.cache_hits == 5

    def test_none_results_are_cached(self):
        shard = self._Shard()
        with ParallelExecutor(
            workers=1, shard_views=[shard], cache_size=4
        ) as executor:
            assert executor.map_shard_method("nothing") == [None]
            assert executor.map_shard_method("nothing") == [None]
            assert shard.calls == 1  # the None was served from the cache
            assert executor.cache_hits == 1


class TestExecutorLifecycle:
    """A mid-mine exception must not leak (or block on) a live worker pool."""

    def test_exception_terminates_pool(self):
        executor = ParallelExecutor(workers=2)
        with pytest.raises(RuntimeError):
            with executor:
                executor._ensure_pool()
                assert executor._pool is not None
                raise RuntimeError("mid-mine failure")
        assert executor._pool is None

    def test_clean_exit_closes_pool(self):
        with ParallelExecutor(workers=2) as executor:
            executor._ensure_pool()
            assert executor._pool is not None
        assert executor._pool is None

    def test_terminate_and_close_are_idempotent(self):
        executor = ParallelExecutor(workers=2)
        executor._ensure_pool()
        executor.terminate()
        executor.terminate()
        executor.close()
        assert executor._pool is None

    def test_failing_miner_does_not_leak_pool_processes(self, monkeypatch):
        import multiprocessing

        from repro.algorithms.uapriori import UApriori
        from repro.core.search import ExpectedSupportKernel

        database = make_random_database(n_transactions=24, n_items=5, seed=71)

        def explode(*args, **kwargs):
            raise RuntimeError("evaluator blew up mid-mine")

        miner = UApriori(workers=2, shards=2)
        monkeypatch.setattr(ExpectedSupportKernel, "evaluate", explode)
        with pytest.raises(RuntimeError):
            miner.mine(database, min_esup=0.1)
        # The executor context manager tore the pool down on the error path.
        for process in multiprocessing.active_children():
            process.join(timeout=5)
        assert not multiprocessing.active_children()
