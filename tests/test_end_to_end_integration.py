"""End-to-end integration tests crossing all layers of the library.

These tests walk the full pipeline a user of the library would: generate a
benchmark analogue, persist it to disk, reload it, mine it with algorithms
from every family, compare the results, and feed them through the evaluation
harness — asserting the qualitative findings of the paper along the way.
"""

import pytest

import repro
from repro.datasets import GaussianProbabilityModel, make_benchmark, make_kosarak
from repro.db import read_uncertain, validate_database, write_uncertain
from repro.eval import compare_results


@pytest.fixture(scope="module")
def kosarak_small():
    return make_kosarak(scale=0.001, seed=5)


class TestPersistenceRoundTrip:
    def test_generated_benchmark_survives_disk_roundtrip(self, tmp_path, kosarak_small):
        path = tmp_path / "kosarak.udb"
        write_uncertain(kosarak_small, path)
        reloaded = read_uncertain(path, name="kosarak-reloaded")
        assert len(reloaded) == len(kosarak_small)
        assert validate_database(reloaded).ok

        original = repro.mine(kosarak_small, algorithm="uh-mine", min_esup=0.01)
        restored = repro.mine(reloaded, algorithm="uh-mine", min_esup=0.01)
        assert original.itemset_keys() == restored.itemset_keys()


class TestCrossFamilyConsistencyOnBenchmarks:
    def test_expected_support_miners_agree_on_generated_benchmark(self, kosarak_small):
        results = {
            name: repro.mine(kosarak_small, algorithm=name, min_esup=0.02)
            for name in ("uapriori", "uh-mine", "ufp-growth")
        }
        reference = results["uapriori"].itemset_keys()
        assert reference  # the scenario must be non-trivial
        for result in results.values():
            assert result.itemset_keys() == reference

    def test_exact_miners_agree_on_generated_benchmark(self, kosarak_small):
        results = {
            name: repro.mine(kosarak_small, algorithm=name, min_sup=0.02, pft=0.9)
            for name in ("dpb", "dcnb", "dcb")
        }
        reference = results["dcb"].itemset_keys()
        for result in results.values():
            assert result.itemset_keys() == reference

    def test_normal_approximation_matches_exact_on_benchmark(self, kosarak_small):
        exact = repro.mine(kosarak_small, algorithm="dcb", min_sup=0.02, pft=0.9)
        approximate = repro.mine(kosarak_small, algorithm="nduh-mine", min_sup=0.02, pft=0.9)
        report = compare_results(approximate, exact)
        assert report.recall >= 0.95
        assert report.precision >= 0.9


class TestPaperFindingsQualitative:
    def test_uapriori_wins_on_dense_high_threshold(self):
        """Paper finding: dense data + high min_esup favours UApriori."""
        dense = make_benchmark("connect", scale=0.002)
        uapriori = repro.mine(dense, algorithm="uapriori", min_esup=0.6)
        uh_mine = repro.mine(dense, algorithm="uh-mine", min_esup=0.6)
        ufp = repro.mine(dense, algorithm="ufp-growth", min_esup=0.6)
        assert uapriori.itemset_keys() == uh_mine.itemset_keys() == ufp.itemset_keys()
        assert (
            uapriori.statistics.elapsed_seconds
            <= 3 * min(uh_mine.statistics.elapsed_seconds, ufp.statistics.elapsed_seconds)
        )

    def test_uh_mine_beats_uapriori_on_sparse_low_threshold(self, kosarak_small):
        """Paper finding: sparse data + low threshold favours UH-Mine.

        The timing comparison is pinned to the row backend: the finding is
        about the algorithms inside the paper's per-transaction scanning
        framework, whereas the columnar backend vectorizes UApriori's
        level-wise scans away (see benchmarks/bench_backend_columnar.py).
        """
        uapriori = repro.mine(
            kosarak_small, algorithm="uapriori", min_esup=0.01, backend="rows"
        )
        uh_mine = repro.mine(
            kosarak_small, algorithm="uh-mine", min_esup=0.01, backend="rows"
        )
        assert uh_mine.itemset_keys() == uapriori.itemset_keys()
        assert uh_mine.statistics.elapsed_seconds <= uapriori.statistics.elapsed_seconds

    def test_chernoff_pruning_reduces_exact_evaluations(self, kosarak_small):
        """Paper finding: the Chernoff bound is the key accelerator for exact miners."""
        bounded = repro.mine(kosarak_small, algorithm="dcb", min_sup=0.05, pft=0.9)
        unbounded = repro.mine(kosarak_small, algorithm="dcnb", min_sup=0.05, pft=0.9)
        assert bounded.itemset_keys() == unbounded.itemset_keys()
        assert (
            bounded.statistics.exact_evaluations
            <= unbounded.statistics.exact_evaluations
        )

    def test_most_frequent_probabilities_are_one_on_large_databases(self):
        """Paper finding: on large databases the frequent probability is usually 1."""
        database = make_benchmark(
            "accident",
            scale=0.003,
            probability_model=GaussianProbabilityModel(mean=0.5, variance=0.5, seed=3),
        )
        result = repro.mine(database, algorithm="dcb", min_sup=0.2, pft=0.9)
        assert len(result) > 0
        share_of_ones = sum(
            1 for record in result if record.frequent_probability > 0.999
        ) / len(result)
        assert share_of_ones >= 0.5
