"""Exact-boundary behaviour of the two frequent-itemset definitions.

The paper's definitions draw their lines differently:

* **Definition 2** (expected support) is *inclusive*: ``esup(X) >= min_esup``;
* **Definition 4** (probabilistic frequentness) is *strict*:
  ``Pr[sup(X) >= min_count] > pft``.

These tests construct databases whose statistics land **exactly on** the
thresholds — dyadic probabilities, so the floating-point values are exact —
and pin the convention for every registered miner.  Conventions living in
``core/thresholds.py`` and the individual miners cannot silently drift
per-miner without failing here.
"""

import math

import pytest

from repro.core.miner import mine
from repro.core.registry import algorithms_in_family
from repro.core.support import normal_tail_probability, poisson_tail_probability
from repro.core.thresholds import ProbabilisticThreshold
from repro.db import UncertainDatabase
from repro.stream import StreamingDP, StreamingUApriori, TransactionStream

#: a hair above 1.0 — scaled thresholds stay exactly representable
ULP_UP = 1.0 + 2.0**-50

EXPECTED_MINERS = sorted(algorithms_in_family("expected"))
EXACT_MINERS = sorted(algorithms_in_family("exact"))


def boundary_database(n_transactions=4):
    """Every transaction {1: 0.5, 2: 1.0}: esup(1) = esup(1,2) = N/2 exactly."""
    return UncertainDatabase.from_records(
        [{1: 0.5, 2: 1.0} for _ in range(n_transactions)]
    )


class TestDefinition2InclusiveBoundary:
    """``esup >= min_esup``: a value exactly at the threshold qualifies."""

    @pytest.mark.parametrize("algorithm", EXPECTED_MINERS)
    def test_exact_boundary_is_frequent(self, algorithm):
        database = boundary_database()
        result = mine(database, algorithm=algorithm, min_esup=2.0)
        assert (1,) in result
        assert (2,) in result
        assert (1, 2) in result

    @pytest.mark.parametrize("algorithm", EXPECTED_MINERS)
    def test_just_above_boundary_is_not(self, algorithm):
        database = boundary_database()
        result = mine(database, algorithm=algorithm, min_esup=2.0 * ULP_UP)
        assert (1,) not in result
        assert (1, 2) not in result
        assert (2,) in result  # esup 4.0 comfortably above

    @pytest.mark.parametrize("algorithm", EXPECTED_MINERS)
    def test_ratio_threshold_resolves_to_same_boundary(self, algorithm):
        # ratio 0.5 of 4 transactions -> absolute 2.0, exactly
        database = boundary_database()
        result = mine(database, algorithm=algorithm, min_esup=0.5)
        assert (1,) in result and (1, 2) in result

    def test_streaming_uapriori_shares_the_convention(self):
        stream = TransactionStream.from_records(
            [{1: 0.5, 2: 1.0} for _ in range(4)]
        )
        miner = StreamingUApriori(4, min_esup=2.0)
        result = miner.advance(stream, 4)
        assert (1,) in result and (1, 2) in result

        stream = TransactionStream.from_records(
            [{1: 0.5, 2: 1.0} for _ in range(4)]
        )
        miner = StreamingUApriori(4, min_esup=2.0 * ULP_UP)
        result = miner.advance(stream, 4)
        assert (1,) not in result and (2,) in result


class TestDefinition4StrictBoundary:
    """``Pr > pft``: a probability exactly at the threshold does NOT qualify."""

    @staticmethod
    def two_coin_database():
        # Pr[sup({1}) >= 1] = 1 - 0.5 * 0.5 = 0.75 exactly; item 2 is
        # certain, so Pr[sup({2}) >= 1] = 1.0.
        return UncertainDatabase.from_records([{1: 0.5, 2: 1.0}, {1: 0.5, 2: 1.0}])

    @pytest.mark.parametrize("algorithm", EXACT_MINERS)
    def test_exact_boundary_is_excluded(self, algorithm):
        database = self.two_coin_database()
        result = mine(database, algorithm=algorithm, min_sup=0.5, pft=0.75)
        assert (1,) not in result
        assert (2,) in result  # Pr = 1.0 > 0.75

    @pytest.mark.parametrize("algorithm", EXACT_MINERS)
    def test_just_below_boundary_is_included(self, algorithm):
        database = self.two_coin_database()
        result = mine(database, algorithm=algorithm, min_sup=0.5, pft=0.74)
        assert (1,) in result
        assert result[(1,)].frequent_probability == 0.75

    def test_min_count_rounds_up(self):
        # The smallest integer support satisfying sup >= N * min_sup.
        assert ProbabilisticThreshold(0.5).min_count(5) == 3
        assert ProbabilisticThreshold(0.5).min_count(4) == 2
        assert ProbabilisticThreshold(0.3).min_count(10) == 3

    def test_streaming_dp_shares_the_convention(self):
        records = [{1: 0.5, 2: 1.0}, {1: 0.5, 2: 1.0}]
        miner = StreamingDP(2, min_sup=0.5, pft=0.75)
        result = miner.advance(TransactionStream.from_records(records), 2)
        assert (1,) not in result and (2,) in result
        miner = StreamingDP(2, min_sup=0.5, pft=0.74)
        result = miner.advance(TransactionStream.from_records(records), 2)
        assert (1,) in result


class TestApproximateMinersStrictBoundary:
    """The approximate miners apply the same strict ``> pft`` convention.

    Each test computes the miner's own approximation of the frequent
    probability with the shared kernel, then sets ``pft`` exactly equal to
    it: the itemset must be excluded.  Nudging ``pft`` below by more than
    the kernels' determinism (they are pure functions — the identical call
    returns identical bits) must include it.
    """

    def test_ndu_apriori(self):
        database = boundary_database()  # esup(1) = 2.0, var(1) = 1.0
        min_count = ProbabilisticThreshold(0.5).min_count(4)  # = 2
        value = normal_tail_probability(2.0, 1.0, min_count)
        assert 0.0 < value < 1.0
        at_boundary = mine(database, algorithm="ndu-apriori", min_sup=0.5, pft=value)
        assert (1,) not in at_boundary
        below = mine(
            database, algorithm="ndu-apriori", min_sup=0.5, pft=value - 1e-9
        )
        assert (1,) in below

    def test_nduh_mine(self):
        database = boundary_database()
        min_count = ProbabilisticThreshold(0.5).min_count(4)
        value = normal_tail_probability(2.0, 1.0, min_count)
        at_boundary = mine(database, algorithm="nduh-mine", min_sup=0.5, pft=value)
        assert (1,) not in at_boundary
        below = mine(database, algorithm="nduh-mine", min_sup=0.5, pft=value - 1e-9)
        assert (1,) in below

    def test_pdu_apriori(self):
        # PDUApriori converts (min_count, pft) into the smallest Poisson
        # rate with tail > pft.  With pft set to the exact tail at the
        # itemset's expected support, that rate lies strictly above the
        # expected support, so the itemset must be excluded.
        database = boundary_database()
        min_count = 3
        value = poisson_tail_probability(2.0, min_count)
        assert 0.0 < value < 1.0
        at_boundary = mine(
            database, algorithm="pdu-apriori", min_sup=float(min_count), pft=value
        )
        assert (1,) not in at_boundary
        below = mine(
            database,
            algorithm="pdu-apriori",
            min_sup=float(min_count),
            pft=value - 1e-9,
        )
        assert (1,) in below

    def test_world_sampling(self):
        # Deterministic given the seed: read the estimate once, then pin the
        # strict comparison against that exact value on an identical run.
        database = self.larger_coin_database()
        probe = mine(
            database,
            algorithm="world-sampling",
            min_sup=0.5,
            pft=0.01,
            n_worlds=64,
            seed=7,
        )
        estimate = probe[(1,)].frequent_probability
        assert 0.0 < estimate < 1.0
        at_boundary = mine(
            database,
            algorithm="world-sampling",
            min_sup=0.5,
            pft=estimate,
            n_worlds=64,
            seed=7,
        )
        assert (1,) not in at_boundary
        below = mine(
            database,
            algorithm="world-sampling",
            min_sup=0.5,
            pft=estimate - 1e-9,
            n_worlds=64,
            seed=7,
        )
        assert (1,) in below

    @staticmethod
    def larger_coin_database():
        return UncertainDatabase.from_records([{1: 0.5} for _ in range(8)])


class TestKernelBoundaryEdges:
    """Degenerate threshold inputs shared by all miners."""

    def test_min_count_zero_means_always_frequent(self):
        from repro.core.support import (
            frequent_probability_dynamic_programming,
            poisson_tail_probability,
        )

        assert frequent_probability_dynamic_programming([0.5], 0) == 1.0
        assert poisson_tail_probability(0.5, 0) == 1.0
        assert normal_tail_probability(0.5, 0.25, 0) == 1.0

    def test_pft_bounds_are_enforced(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, pft=0.0)
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, pft=1.0)
        assert math.isclose(ProbabilisticThreshold(0.5, pft=0.9).pft, 0.9)
