"""Tests for the shared miner subroutines (the 'common implementation framework')."""

import pytest

from repro.algorithms.common import (
    apriori_join,
    frequent_items_by_expected_support,
    has_infrequent_subset,
    instrumented_run,
    item_statistics,
    itemset_probability_vector,
    trim_transactions,
)
from repro.core.results import MiningStatistics


class TestItemStatistics:
    def test_expected_support_and_variance(self, paper_db):
        statistics = item_statistics(paper_db)
        a = paper_db.vocabulary.id_of("A")
        assert statistics[a][0] == pytest.approx(2.1)
        assert statistics[a][1] == pytest.approx(paper_db.support_variance((a,)))

    def test_all_items_present(self, paper_db):
        assert set(item_statistics(paper_db)) == set(paper_db.items())

    def test_frequent_items_filtering(self, paper_db):
        frequent = frequent_items_by_expected_support(paper_db, 2.0)
        labels = set(paper_db.vocabulary.labels_of(sorted(frequent)))
        assert labels == {"A", "C"}


class TestAprioriJoin:
    def test_joins_itemsets_sharing_prefix(self):
        candidates = apriori_join([(1, 2), (1, 3), (2, 3)])
        assert candidates == [(1, 2, 3)]

    def test_join_of_single_items(self):
        candidates = apriori_join([(1,), (2,), (3,)])
        assert set(candidates) == {(1, 2), (1, 3), (2, 3)}

    def test_no_join_without_shared_prefix(self):
        assert apriori_join([(1, 2), (3, 4)]) == []

    def test_has_infrequent_subset(self):
        frequent = {(1, 2), (1, 3)}
        assert has_infrequent_subset((1, 2, 3), frequent)  # (2, 3) missing
        frequent.add((2, 3))
        assert not has_infrequent_subset((1, 2, 3), frequent)


class TestTrimAndVectors:
    def test_trim_keeps_transaction_count(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        trimmed = trim_transactions(paper_db, {a})
        assert len(trimmed) == len(paper_db)
        assert trimmed[3] == {}

    def test_probability_vector_skips_zero_entries(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        c = paper_db.vocabulary.id_of("C")
        trimmed = trim_transactions(paper_db, {a, c})
        vector = itemset_probability_vector(trimmed, (a, c))
        assert vector == pytest.approx([0.72, 0.72, 0.4])

    def test_probability_vector_of_absent_itemset_is_empty(self, paper_db):
        trimmed = trim_transactions(paper_db, set(paper_db.items()))
        assert itemset_probability_vector(trimmed, (999,)) == []


class TestInstrumentation:
    def test_elapsed_time_recorded(self):
        statistics = MiningStatistics()
        with instrumented_run(statistics):
            sum(range(1000))
        assert statistics.elapsed_seconds > 0.0
        assert statistics.peak_memory_bytes == 0

    def test_memory_tracking(self):
        statistics = MiningStatistics()
        with instrumented_run(statistics, track_memory=True):
            _ = [0] * 100_000
        assert statistics.peak_memory_bytes > 100_000

    def test_elapsed_time_recorded_even_on_exception(self):
        statistics = MiningStatistics()
        with pytest.raises(RuntimeError):
            with instrumented_run(statistics):
                raise RuntimeError("boom")
        assert statistics.elapsed_seconds >= 0.0
