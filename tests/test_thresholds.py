"""Tests for threshold resolution (ratios vs absolute values)."""

import pytest

from repro.core import ExpectedSupportThreshold, ProbabilisticThreshold


class TestExpectedSupportThreshold:
    def test_ratio_resolution(self):
        assert ExpectedSupportThreshold(0.5).absolute(100) == pytest.approx(50.0)

    def test_absolute_passthrough(self):
        assert ExpectedSupportThreshold(30).absolute(100) == pytest.approx(30.0)

    def test_one_is_treated_as_ratio(self):
        assert ExpectedSupportThreshold(1.0).absolute(40) == pytest.approx(40.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExpectedSupportThreshold(-0.1)


class TestProbabilisticThreshold:
    def test_min_count_rounds_up(self):
        assert ProbabilisticThreshold(0.5, 0.9).min_count(5) == 3
        assert ProbabilisticThreshold(0.5, 0.9).min_count(4) == 2

    def test_exact_integer_boundary_not_inflated(self):
        # N * min_sup = 2.0 exactly; ceil must give 2, not 3.
        assert ProbabilisticThreshold(0.2, 0.9).min_count(10) == 2

    def test_absolute_count_passthrough(self):
        assert ProbabilisticThreshold(7, 0.9).min_count(100) == 7

    def test_pft_bounds_enforced(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, 0.0)
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, 1.0)

    def test_negative_min_sup_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(-1, 0.9)

    def test_default_pft(self):
        assert ProbabilisticThreshold(0.5).pft == 0.9
