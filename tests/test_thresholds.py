"""Tests for threshold resolution (ratios vs absolute values)."""

import pytest

from repro.core import ExpectedSupportThreshold, ProbabilisticThreshold


class TestExpectedSupportThreshold:
    def test_ratio_resolution(self):
        assert ExpectedSupportThreshold(0.5).absolute(100) == pytest.approx(50.0)

    def test_absolute_passthrough(self):
        assert ExpectedSupportThreshold(30).absolute(100) == pytest.approx(30.0)

    def test_one_is_treated_as_ratio(self):
        with pytest.warns(UserWarning):  # the ambiguous-boundary warning
            assert ExpectedSupportThreshold(1.0).absolute(40) == pytest.approx(40.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExpectedSupportThreshold(-0.1)


class TestProbabilisticThreshold:
    def test_min_count_rounds_up(self):
        assert ProbabilisticThreshold(0.5, 0.9).min_count(5) == 3
        assert ProbabilisticThreshold(0.5, 0.9).min_count(4) == 2

    def test_exact_integer_boundary_not_inflated(self):
        # N * min_sup = 2.0 exactly; ceil must give 2, not 3.
        assert ProbabilisticThreshold(0.2, 0.9).min_count(10) == 2

    def test_absolute_count_passthrough(self):
        assert ProbabilisticThreshold(7, 0.9).min_count(100) == 7

    def test_pft_bounds_enforced(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, 0.0)
        with pytest.raises(ValueError):
            ProbabilisticThreshold(0.5, 1.0)

    def test_negative_min_sup_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(-1, 0.9)

    def test_default_pft(self):
        assert ProbabilisticThreshold(0.5).pft == 0.9


class TestAmbiguousOneBoundary:
    """The ``value == 1.0`` boundary keeps the ratio interpretation
    (``1.0 * N``), warns about the ambiguity, and flips to absolute counts
    for anything strictly above 1."""

    def test_expected_one_is_ratio_and_warns(self):
        with pytest.warns(UserWarning, match="ambiguous"):
            assert ExpectedSupportThreshold(1.0).absolute(40) == pytest.approx(40.0)

    def test_expected_just_above_one_is_absolute_and_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ExpectedSupportThreshold(1.0 + 1e-9).absolute(40) == pytest.approx(
                1.0
            )

    def test_probabilistic_one_is_ratio_and_warns(self):
        with pytest.warns(UserWarning, match="ambiguous"):
            assert ProbabilisticThreshold(1.0, 0.9).min_count(100) == 100

    def test_probabilistic_just_above_one_is_absolute_and_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Absolute counts are ceiled to the next attainable support.
            assert ProbabilisticThreshold(1.0 + 1e-9, 0.9).min_count(100) == 2

    def test_ratio_below_one_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ExpectedSupportThreshold(0.999).absolute(1000) == pytest.approx(
                999.0
            )
