"""Tests for the Quest and dense/sparse transaction generators."""

import numpy as np
import pytest

from repro.datasets import (
    ConstantProbabilityModel,
    DenseSparseGenerator,
    GaussianProbabilityModel,
    QuestGenerator,
    attach_probabilities,
)


class TestAttachProbabilities:
    def test_default_probabilities_are_one(self):
        database = attach_probabilities([[1, 2], [2, 3]])
        assert database[0].units == {1: 1.0, 2: 1.0}

    def test_probability_model_applied(self):
        database = attach_probabilities([[1, 2]], ConstantProbabilityModel(0.4))
        assert database[0].units == {1: 0.4, 2: 0.4}

    def test_name_is_kept(self):
        database = attach_probabilities([[1]], name="demo")
        assert database.name == "demo"


class TestQuestGenerator:
    def test_transaction_count(self):
        generator = QuestGenerator(n_items=100, avg_transaction_length=8, seed=1)
        assert len(generator.generate_item_lists(50)) == 50

    def test_average_length_close_to_target(self):
        generator = QuestGenerator(n_items=200, avg_transaction_length=10, seed=2)
        lists = generator.generate_item_lists(400)
        average = np.mean([len(items) for items in lists])
        assert 8 <= average <= 12

    def test_items_within_vocabulary(self):
        generator = QuestGenerator(n_items=50, avg_transaction_length=5, seed=3)
        for items in generator.generate_item_lists(100):
            assert all(0 <= item < 50 for item in items)
            assert len(items) == len(set(items))

    def test_deterministic_given_seed(self):
        first = QuestGenerator(n_items=60, avg_transaction_length=6, seed=9)
        second = QuestGenerator(n_items=60, avg_transaction_length=6, seed=9)
        assert first.generate_item_lists(20) == second.generate_item_lists(20)

    def test_generate_builds_named_database(self):
        generator = QuestGenerator(n_items=60, avg_transaction_length=6, seed=4)
        database = generator.generate(30, GaussianProbabilityModel(0.9, 0.1, seed=5))
        assert len(database) == 30
        assert database.name.startswith("T6I")

    def test_patterns_create_cooccurrence(self):
        """Quest data must contain correlated items (frequent 2-itemsets)."""
        generator = QuestGenerator(n_items=100, avg_transaction_length=10, seed=6)
        lists = generator.generate_item_lists(300)
        pair_counts = {}
        for items in lists:
            ordered = sorted(items)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1 :]:
                    pair_counts[(left, right)] = pair_counts.get((left, right), 0) + 1
        assert max(pair_counts.values()) > 30

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QuestGenerator(n_items=0)
        with pytest.raises(ValueError):
            QuestGenerator(avg_transaction_length=0)


class TestDenseSparseGenerator:
    def test_average_length_calibrated(self):
        generator = DenseSparseGenerator(n_items=129, avg_transaction_length=43, seed=1)
        lists = generator.generate_item_lists(300)
        average = np.mean([len(items) for items in lists])
        assert 39 <= average <= 47

    def test_dense_profile_has_head_of_common_items(self):
        generator = DenseSparseGenerator(
            n_items=129, avg_transaction_length=43, popularity_decay=0.6, max_inclusion=0.95
        )
        inclusion = generator.inclusion_probabilities
        assert inclusion[0] == pytest.approx(0.95)
        assert (inclusion >= 0.8).sum() >= 8

    def test_sparse_profile_has_long_rare_tail(self):
        generator = DenseSparseGenerator(
            n_items=1000, avg_transaction_length=8, popularity_decay=1.1, max_inclusion=0.9
        )
        inclusion = generator.inclusion_probabilities
        assert (inclusion < 0.05).sum() > 700

    def test_inclusion_sums_to_average_length(self):
        generator = DenseSparseGenerator(n_items=500, avg_transaction_length=12)
        assert generator.inclusion_probabilities.sum() == pytest.approx(12, rel=0.01)

    def test_transactions_never_empty(self):
        generator = DenseSparseGenerator(n_items=400, avg_transaction_length=2, seed=8)
        assert all(len(items) >= 1 for items in generator.generate_item_lists(200))

    def test_deterministic_given_seed(self):
        first = DenseSparseGenerator(n_items=50, avg_transaction_length=5, seed=11)
        second = DenseSparseGenerator(n_items=50, avg_transaction_length=5, seed=11)
        assert first.generate_item_lists(10) == second.generate_item_lists(10)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DenseSparseGenerator(n_items=10, avg_transaction_length=20)
        with pytest.raises(ValueError):
            DenseSparseGenerator(n_items=10, avg_transaction_length=5, max_inclusion=0.0)
