"""Tests for the support-distribution mathematics (core.support).

These tests anchor every miner: the exact PMF computations are validated
against brute-force enumeration and against each other, and the
approximations (Poisson, Normal, Chernoff) are validated against the exact
tail probabilities.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.support import (
    SupportDistribution,
    chernoff_upper_bound,
    exact_pmf_divide_conquer,
    exact_pmf_dynamic_programming,
    frequent_probability_dynamic_programming,
    normal_tail_probability,
    poisson_lambda_for_threshold,
    poisson_tail_probability,
)

probability_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=40
)


def brute_force_pmf(probabilities):
    """Exponential-time reference PMF (only for short vectors)."""
    pmf = np.zeros(len(probabilities) + 1)
    n = len(probabilities)
    for mask in range(2 ** n):
        probability = 1.0
        support = 0
        for index in range(n):
            if mask & (1 << index):
                probability *= probabilities[index]
                support += 1
            else:
                probability *= 1.0 - probabilities[index]
        pmf[support] += probability
    return pmf


class TestExactPmf:
    def test_single_bernoulli(self):
        assert exact_pmf_dynamic_programming([0.3]).tolist() == pytest.approx([0.7, 0.3])

    def test_dp_matches_brute_force(self):
        probabilities = [0.8, 0.8, 0.5, 0.1, 0.9]
        assert exact_pmf_dynamic_programming(probabilities) == pytest.approx(
            brute_force_pmf(probabilities)
        )

    def test_divide_conquer_matches_brute_force(self):
        probabilities = [0.8, 0.8, 0.5, 0.1, 0.9]
        assert exact_pmf_divide_conquer(probabilities) == pytest.approx(
            brute_force_pmf(probabilities)
        )

    def test_paper_table2_style_distribution(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        pmf = exact_pmf_dynamic_programming(paper_db.itemset_probabilities((a,)))
        # A occurs with probabilities 0.8, 0.8, 0.5 (and 0 in T4).
        assert pmf[0] == pytest.approx(0.02)
        assert pmf[1] == pytest.approx(0.18)
        assert pmf[2] == pytest.approx(0.48)
        assert pmf[3] == pytest.approx(0.32)

    @given(probability_vectors)
    @settings(max_examples=60, deadline=None)
    def test_dp_and_dc_agree(self, probabilities):
        dp = exact_pmf_dynamic_programming(probabilities)
        dc = exact_pmf_divide_conquer(probabilities)
        assert dp == pytest.approx(dc, abs=1e-9)

    @given(probability_vectors)
    @settings(max_examples=60, deadline=None)
    def test_pmf_is_a_distribution(self, probabilities):
        pmf = exact_pmf_dynamic_programming(probabilities)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)

    @given(probability_vectors)
    @settings(max_examples=60, deadline=None)
    def test_pmf_mean_matches_expected_support(self, probabilities):
        pmf = exact_pmf_dynamic_programming(probabilities)
        mean = float(np.dot(np.arange(len(pmf)), pmf))
        assert mean == pytest.approx(sum(probabilities), abs=1e-8)

    def test_fft_and_direct_convolution_agree(self):
        rng = np.random.default_rng(3)
        probabilities = rng.random(300)
        with_fft = exact_pmf_divide_conquer(probabilities, use_fft=True)
        without_fft = exact_pmf_divide_conquer(probabilities, use_fft=False)
        assert with_fft == pytest.approx(without_fft, abs=1e-9)


class TestFrequentProbabilityDP:
    def test_matches_tail_of_pmf(self):
        probabilities = [0.9, 0.4, 0.7, 0.2, 0.5]
        pmf = exact_pmf_dynamic_programming(probabilities)
        for min_count in range(0, 7):
            expected_tail = float(pmf[min_count:].sum()) if min_count <= 5 else 0.0
            assert frequent_probability_dynamic_programming(
                probabilities, min_count
            ) == pytest.approx(expected_tail, abs=1e-9)

    def test_zero_min_count_is_certain(self):
        assert frequent_probability_dynamic_programming([0.1], 0) == 1.0

    def test_min_count_above_n_is_impossible(self):
        assert frequent_probability_dynamic_programming([0.9, 0.9], 3) == 0.0

    @given(probability_vectors, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_min_count(self, probabilities, min_count):
        higher = frequent_probability_dynamic_programming(probabilities, min_count + 1)
        lower = frequent_probability_dynamic_programming(probabilities, min_count)
        assert higher <= lower + 1e-9


class TestApproximations:
    def test_poisson_tail_sane(self):
        # P[Poisson(2) >= 1] = 1 - e^-2
        assert poisson_tail_probability(2.0, 1) == pytest.approx(1 - math.exp(-2))

    def test_poisson_tail_zero_rate(self):
        assert poisson_tail_probability(0.0, 1) == 0.0
        assert poisson_tail_probability(0.0, 0) == 1.0

    def test_normal_tail_continuity_correction(self):
        # Symmetric case: expectation exactly at the corrected threshold.
        assert normal_tail_probability(9.5, 4.0, 10) == pytest.approx(0.5)

    def test_normal_tail_degenerate_variance(self):
        assert normal_tail_probability(5.0, 0.0, 3) == 1.0
        assert normal_tail_probability(2.0, 0.0, 3) == 0.0

    def test_normal_approximation_converges_to_exact(self):
        """The CLT argument of the paper: error shrinks as N grows."""
        rng = np.random.default_rng(0)
        errors = []
        for n in (20, 200, 2000):
            probabilities = rng.uniform(0.3, 0.9, size=n)
            distribution = SupportDistribution(probabilities)
            min_count = int(0.6 * n)
            exact = distribution.frequent_probability(min_count)
            approximate = distribution.normal_frequent_probability(min_count)
            errors.append(abs(exact - approximate))
        assert errors[-1] < 0.01
        assert errors[-1] <= errors[0] + 1e-6

    @given(probability_vectors, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_chernoff_is_an_upper_bound(self, probabilities, min_count):
        distribution = SupportDistribution(probabilities)
        exact = distribution.frequent_probability(min_count)
        bound = chernoff_upper_bound(distribution.expected_support, min_count)
        assert bound >= exact - 1e-9

    def test_chernoff_uninformative_when_expectation_exceeds_threshold(self):
        assert chernoff_upper_bound(10.0, 5) == 1.0

    def test_poisson_lambda_threshold_is_monotone_inverse(self):
        for min_count in (2, 5, 20):
            for pft in (0.3, 0.7, 0.9):
                lam = poisson_lambda_for_threshold(min_count, pft)
                assert poisson_tail_probability(lam, min_count) >= pft - 1e-6
                assert poisson_tail_probability(lam * 0.95, min_count) <= pft + 1e-3

    def test_poisson_lambda_rejects_bad_pft(self):
        with pytest.raises(ValueError):
            poisson_lambda_for_threshold(5, 1.5)


class TestSupportDistribution:
    def test_moments(self):
        distribution = SupportDistribution([0.5, 0.5, 1.0])
        assert distribution.expected_support == pytest.approx(2.0)
        assert distribution.variance == pytest.approx(0.5)
        assert distribution.n_transactions == 3

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SupportDistribution([0.5, 1.2])

    def test_pmf_methods_agree(self):
        probabilities = [0.2, 0.9, 0.6, 0.5]
        dp = SupportDistribution(probabilities).pmf(method="dynamic_programming")
        dc = SupportDistribution(probabilities).pmf(method="divide_conquer")
        assert dp == pytest.approx(dc)

    def test_unknown_pmf_method_rejected(self):
        with pytest.raises(ValueError):
            SupportDistribution([0.5]).pmf(method="quantum")

    def test_frequent_probability_edge_cases(self):
        distribution = SupportDistribution([0.5, 0.5])
        assert distribution.frequent_probability(0) == 1.0
        assert distribution.frequent_probability(3) == 0.0

    def test_frequent_probability_methods_agree(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        distribution = SupportDistribution(paper_db.itemset_probabilities((a,)))
        assert distribution.frequent_probability(2) == pytest.approx(
            distribution.frequent_probability(2, method="dynamic_programming")
        )
        assert distribution.frequent_probability(2) == pytest.approx(0.8)

    def test_pmf_as_dict_drops_negligible_entries(self):
        distribution = SupportDistribution([1.0, 1.0])
        assert distribution.pmf_as_dict() == {2: pytest.approx(1.0)}


class TestDivideConquerRenormalization:
    """DC's renormalisation is tolerance-gated, keeping DC and DP tails aligned.

    An unconditional renormalisation silently masked FFT drift *and*
    perturbed well-conditioned PMFs, so the DC tail of a candidate could
    differ from the DP tail by more than the convolution round-off itself.
    """

    def test_dc_and_dp_tails_agree_within_1e12_on_dense_inputs(self):
        from repro.core.support import (
            frequent_probabilities_dp_batch,
            pack_probability_matrix,
        )

        rng = np.random.default_rng(17)
        # Dense regime: 300 transactions, occurrence probabilities in
        # [0.3, 1.0) — the FFT path engages (> 64 entries per half).
        vectors = [rng.uniform(0.3, 1.0, size=300) for _ in range(8)]
        for min_count in (1, 60, 150, 250):
            dp = frequent_probabilities_dp_batch(
                pack_probability_matrix(vectors), min_count
            )
            dc = np.array(
                [
                    float(exact_pmf_divide_conquer(vector)[min_count:].sum())
                    for vector in vectors
                ]
            )
            assert np.max(np.abs(dp - dc)) <= 1e-12

    def test_well_conditioned_pmf_is_not_perturbed(self):
        # Direct (non-FFT) convolution of exact dyadic probabilities is
        # exact; renormalising would divide every entry by a sum a few ulps
        # off 1.0 and destroy that exactness.
        pmf = exact_pmf_divide_conquer([0.5, 0.25, 0.75, 0.5])
        reference = exact_pmf_dynamic_programming([0.5, 0.25, 0.75, 0.5])
        assert np.array_equal(pmf, reference)

    def test_negatives_are_clipped(self):
        rng = np.random.default_rng(5)
        pmf = exact_pmf_divide_conquer(rng.uniform(0.0, 1.0, size=400))
        assert np.all(pmf >= 0.0)

    def test_large_drift_still_renormalises(self, monkeypatch):
        import repro.core.support as support_module

        original = support_module.convolve_pmfs

        def drifting(left, right, use_fft=True, span=None):
            return original(left, right, use_fft, span=span) * 1.001

        monkeypatch.setattr(support_module, "convolve_pmfs", drifting)
        pmf = support_module.exact_pmf_divide_conquer(np.full(8, 0.5))
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_total_mass_stays_within_tolerance_of_one(self):
        from repro.core.support import PMF_RENORMALIZE_TOLERANCE

        rng = np.random.default_rng(23)
        for length in (10, 100, 500):
            pmf = exact_pmf_divide_conquer(rng.uniform(0.0, 1.0, size=length))
            assert abs(pmf.sum() - 1.0) <= PMF_RENORMALIZE_TOLERANCE
