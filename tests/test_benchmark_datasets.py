"""Tests for the benchmark analogues (Table 6/7 shapes) and the dataset registry."""

import pytest

from repro.datasets import (
    BENCHMARKS,
    ZipfProbabilityModel,
    dataset_names,
    load_dataset,
    make_accident,
    make_benchmark,
    make_connect,
    make_gazelle,
    make_kosarak,
    make_t25i15d,
    make_zipf_dense,
    register_dataset,
)
from repro.db import UncertainDatabase, validate_database


class TestBenchmarkSpecs:
    def test_all_five_paper_datasets_present(self):
        assert set(BENCHMARKS) == {"connect", "accident", "kosarak", "gazelle", "t25i15d320k"}

    def test_published_shapes_recorded(self):
        assert BENCHMARKS["connect"].n_items == 129
        assert BENCHMARKS["kosarak"].n_transactions == 990_002
        assert BENCHMARKS["t25i15d320k"].avg_transaction_length == 25.0


class TestAnalogueShapes:
    def test_connect_is_dense_with_long_transactions(self):
        stats = make_connect(scale=0.002).stats()
        assert stats.n_items <= 129
        assert 35 <= stats.average_length <= 50
        assert stats.density > 0.25
        assert stats.average_probability > 0.8  # Gaussian(0.95, 0.05)

    def test_accident_profile(self):
        stats = make_accident(scale=0.002).stats()
        assert 28 <= stats.average_length <= 40
        assert 0.4 <= stats.average_probability <= 0.6  # Gaussian(0.5, 0.5)

    def test_kosarak_is_sparse(self):
        stats = make_kosarak(scale=0.002).stats()
        assert stats.average_length < 12
        assert stats.n_items >= 500
        assert stats.density < 0.02

    def test_gazelle_short_transactions_high_probability(self):
        stats = make_gazelle(scale=0.002).stats()
        assert stats.average_length < 4
        assert stats.average_probability > 0.8

    def test_t25i15d_average_length(self):
        stats = make_t25i15d(n_transactions=400).stats()
        assert 20 <= stats.average_length <= 30

    def test_explicit_transaction_count(self):
        database = make_benchmark("connect", n_transactions=77)
        assert len(database) == 77

    def test_scale_controls_size(self):
        small = make_accident(scale=0.001)
        large = make_accident(scale=0.003)
        assert len(large) > len(small)

    def test_generated_databases_are_valid(self):
        for name in ("connect", "accident", "kosarak", "gazelle"):
            database = make_benchmark(name, scale=0.001)
            assert validate_database(database).ok

    def test_deterministic_given_seed(self):
        first = make_connect(scale=0.001, seed=3)
        second = make_connect(scale=0.001, seed=3)
        assert first[0].units == second[0].units

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark("netflix")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            make_benchmark("connect", scale=0.0)
        with pytest.raises(ValueError):
            make_benchmark("connect", scale=2.0)

    def test_custom_probability_model(self):
        database = make_benchmark(
            "connect", scale=0.001, probability_model=ZipfProbabilityModel(skew=1.5, seed=1)
        )
        probabilities = {p for t in database for _, p in t}
        assert probabilities <= set(ZipfProbabilityModel(skew=1.5).levels.tolist())

    def test_zipf_dense_skew_reduces_probability_mass(self):
        flat = make_zipf_dense(skew=0.8, n_transactions=200).stats()
        steep = make_zipf_dense(skew=2.0, n_transactions=200).stats()
        assert steep.average_probability < flat.average_probability


class TestDatasetRegistry:
    def test_default_registrations(self):
        names = dataset_names()
        for expected in ("connect", "accident", "kosarak", "gazelle", "t25i15d", "zipf-dense"):
            assert expected in names

    def test_load_dataset_forwards_kwargs(self):
        database = load_dataset("t25i15d", n_transactions=123)
        assert isinstance(database, UncertainDatabase)
        assert len(database) == 123

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("unknown-dataset")

    def test_register_custom_dataset(self):
        register_dataset("custom-test-ds", lambda **kw: make_connect(scale=0.001), overwrite=True)
        assert "custom-test-ds" in dataset_names()
        assert len(load_dataset("custom-test-ds")) > 0

    def test_duplicate_registration_needs_overwrite(self):
        with pytest.raises(ValueError):
            register_dataset("connect", make_connect)
