"""Tests for the brute-force baseline miners (the test-suite's own ground truth)."""

import pytest

from repro.algorithms import (
    ExhaustiveExpectedSupportMiner,
    ExhaustiveProbabilisticMiner,
    possible_world_expected_support,
)


class TestExhaustiveExpectedSupport:
    def test_paper_example(self, paper_db):
        result = ExhaustiveExpectedSupportMiner().mine(paper_db, min_esup=0.5)
        labels = {
            tuple(paper_db.vocabulary.labels_of(record.itemset.items)) for record in result
        }
        assert labels == {("A",), ("C",)}

    def test_max_size_limits_enumeration(self, paper_db):
        result = ExhaustiveExpectedSupportMiner(max_size=1).mine(paper_db, min_esup=0.25)
        assert result.max_size() == 1

    def test_variance_reported(self, paper_db):
        result = ExhaustiveExpectedSupportMiner().mine(paper_db, min_esup=0.5)
        a = paper_db.vocabulary.id_of("A")
        assert result[(a,)].variance == pytest.approx(paper_db.support_variance((a,)))


class TestExhaustiveProbabilistic:
    def test_paper_example(self, paper_db):
        result = ExhaustiveProbabilisticMiner().mine(paper_db, min_sup=0.5, pft=0.7)
        a = paper_db.vocabulary.id_of("A")
        c = paper_db.vocabulary.id_of("C")
        assert result.itemset_keys() == {result[(a,)].itemset, result[(c,)].itemset}
        assert result[(a,)].frequent_probability == pytest.approx(0.8)

    def test_respects_pft_strictly(self, paper_db):
        result = ExhaustiveProbabilisticMiner().mine(paper_db, min_sup=0.5, pft=0.8)
        a = paper_db.vocabulary.id_of("A")
        assert result.get((a,)) is None


class TestPossibleWorldEstimate:
    def test_close_to_analytic_expected_support(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        estimate = possible_world_expected_support(paper_db, (a,), n_worlds=4000, seed=1)
        assert estimate == pytest.approx(2.1, abs=0.1)

    def test_pair_estimate(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        c = paper_db.vocabulary.id_of("C")
        estimate = possible_world_expected_support(paper_db, (a, c), n_worlds=4000, seed=2)
        assert estimate == pytest.approx(1.84, abs=0.1)
