"""Tests for the UH-Mine miner and the UH-Struct."""

import pytest

from repro.algorithms import UApriori, UHMine, build_uh_struct
from repro.algorithms.common import frequent_items_by_expected_support

from helpers import make_random_database


class TestUHStruct:
    def test_struct_orders_cells_by_global_order(self, paper_db):
        frequent = frequent_items_by_expected_support(paper_db, 1.0)
        order = {
            item: rank
            for rank, (item, _) in enumerate(
                sorted(frequent.items(), key=lambda kv: (-kv[1][0], kv[0]))
            )
        }
        struct = build_uh_struct(paper_db, order)
        assert len(struct) == 4
        for cells in struct:
            ranks = [order[item] for item, _ in cells]
            assert ranks == sorted(ranks)

    def test_struct_preserves_probabilities(self, paper_db):
        vocabulary = paper_db.vocabulary
        a = vocabulary.id_of("A")
        order = {a: 0}
        struct = build_uh_struct(paper_db, order)
        # Only transactions containing A are kept, with A's probabilities.
        assert [cells[0][1] for cells in struct] == pytest.approx([0.8, 0.8, 0.5])

    def test_infrequent_items_are_dropped(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        struct = build_uh_struct(paper_db, {a: 0})
        assert all(all(item == a for item, _ in cells) for cells in struct)


class TestPaperExample:
    def test_frequent_items_at_half_support(self, paper_db):
        result = UHMine().mine(paper_db, min_esup=0.5)
        labels = {
            tuple(paper_db.vocabulary.labels_of(record.itemset.items)) for record in result
        }
        assert labels == {("A",), ("C",)}

    def test_prefix_extension_finds_pairs(self, paper_db):
        result = UHMine().mine(paper_db, min_esup=0.25)
        a, c = paper_db.vocabulary.id_of("A"), paper_db.vocabulary.id_of("C")
        assert result[(a, c)].expected_support == pytest.approx(1.84)


class TestCorrectness:
    @pytest.mark.parametrize("min_esup", [0.1, 0.2, 0.35])
    def test_matches_uapriori(self, seeded_random_db, min_esup):
        uh = UHMine().mine(seeded_random_db, min_esup=min_esup)
        apriori = UApriori().mine(seeded_random_db, min_esup=min_esup)
        assert uh.itemset_keys() == apriori.itemset_keys()

    @pytest.mark.parametrize("min_esup", [0.15, 0.3])
    def test_expected_supports_are_exact(self, random_db, min_esup):
        result = UHMine().mine(random_db, min_esup=min_esup)
        for record in result:
            assert record.expected_support == pytest.approx(
                random_db.expected_support(record.itemset), abs=1e-9
            )

    def test_variance_tracking_matches_database(self, random_db):
        result = UHMine(track_variance=True).mine(random_db, min_esup=0.2)
        for record in result:
            assert record.variance == pytest.approx(
                random_db.support_variance(record.itemset), abs=1e-9
            )

    def test_dense_high_probability_database(self):
        database = make_random_database(n_transactions=25, n_items=5, density=0.95, seed=4)
        uh = UHMine().mine(database, min_esup=0.05)
        apriori = UApriori().mine(database, min_esup=0.05)
        assert uh.itemset_keys() == apriori.itemset_keys()


class TestBehaviour:
    def test_struct_size_recorded(self, paper_db):
        result = UHMine().mine(paper_db, min_esup=0.25)
        assert result.statistics.notes["uh_struct_cells"] > 0

    def test_empty_result_above_max_support(self, paper_db):
        assert len(UHMine().mine(paper_db, min_esup=0.95)) == 0

    def test_candidate_accounting(self, paper_db):
        result = UHMine().mine(paper_db, min_esup=0.25)
        statistics = result.statistics
        assert statistics.candidates_generated >= statistics.candidates_pruned
        assert statistics.algorithm == "uh-mine"

    def test_empty_database(self):
        from repro.db import UncertainDatabase

        assert len(UHMine().mine(UncertainDatabase([]), min_esup=1)) == 0
