"""Tests for the top-k ranked mining subsystem.

The acceptance property: for every miner family that supports a ranking,
``mine_topk(k)`` returns exactly the k best itemsets of full threshold-free
mining under the deterministic tie-break (score desc, size asc,
lexicographic items) — identical across backends and every (workers,
shards) configuration, with the threshold-raising floor changing only the
amount of work, never the result.
"""

import pytest

from repro.algorithms.topk import TopKMiner, exhaustive_topk
from repro.core import FrequentItemset, Itemset, MiningResult, mine
from repro.core.topk import (
    TopKBuffer,
    mine_topk,
    rank_itemsets,
    ranking_of,
    resolve_evaluator,
    truncate_result,
    truncation_baseline,
)
from repro.db import UncertainDatabase

from helpers import make_random_database

#: evaluators of the probabilistic ranking (Definition 4 ordering)
PROBABILITY_EVALUATORS = ("dp", "dc", "normal", "poisson")


@pytest.fixture(scope="module")
def random_db() -> UncertainDatabase:
    return make_random_database(n_transactions=40, n_items=7, density=0.5, seed=11)


def dyadic_db(n: int = 32) -> UncertainDatabase:
    """All probabilities exact binary fractions: every score is float-exact."""
    import random as _random

    rng = _random.Random(5)
    records = [
        {
            item: rng.choice((0.25, 0.5, 0.75, 1.0))
            for item in range(6)
            if rng.random() < 0.5
        }
        for _ in range(n)
    ]
    return UncertainDatabase.from_records(records, name="dyadic")


class TestTopKBuffer:
    def test_keeps_k_best_by_score(self):
        buffer = TopKBuffer(2)
        buffer.offer(1.0, FrequentItemset(Itemset((1,)), 1.0))
        buffer.offer(3.0, FrequentItemset(Itemset((2,)), 3.0))
        buffer.offer(2.0, FrequentItemset(Itemset((3,)), 2.0))
        assert [r.itemset.items for r in buffer.records()] == [(2,), (3,)]

    def test_floor_is_zero_until_full_then_kth_best(self):
        buffer = TopKBuffer(2)
        assert buffer.floor == 0.0
        buffer.offer(3.0, FrequentItemset(Itemset((1,)), 3.0))
        assert buffer.floor == 0.0
        buffer.offer(1.0, FrequentItemset(Itemset((2,)), 1.0))
        assert buffer.floor == 1.0
        buffer.offer(2.0, FrequentItemset(Itemset((3,)), 2.0))
        assert buffer.floor == 2.0  # the floor only rises

    def test_tie_break_size_then_lexicographic(self):
        buffer = TopKBuffer(3)
        buffer.offer(1.0, FrequentItemset(Itemset((2, 3)), 1.0))
        buffer.offer(1.0, FrequentItemset(Itemset((5,)), 1.0))
        buffer.offer(1.0, FrequentItemset(Itemset((1, 2)), 1.0))
        buffer.offer(1.0, FrequentItemset(Itemset((4,)), 1.0))
        assert [r.itemset.items for r in buffer.records()] == [(4,), (5,), (1, 2)]

    def test_strictly_worse_scores_rejected_when_full(self):
        buffer = TopKBuffer(1)
        buffer.offer(2.0, FrequentItemset(Itemset((1,)), 2.0))
        assert not buffer.offer(1.0, FrequentItemset(Itemset((2,)), 1.0))
        assert buffer.floor == 2.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)


class TestEvaluatorResolution:
    def test_algorithm_names_map_to_evaluators(self):
        assert resolve_evaluator("uapriori") == "esup"
        assert resolve_evaluator("ufp-growth") == "esup"
        assert resolve_evaluator("uh-mine") == "esup"
        assert resolve_evaluator("dpb") == resolve_evaluator("dpnb") == "dp"
        assert resolve_evaluator("dcb") == resolve_evaluator("dcnb") == "dc"
        assert resolve_evaluator("ndu-apriori") == "normal"
        assert resolve_evaluator("nduh-mine") == "normal"
        assert resolve_evaluator("pdu-apriori") == "poisson"

    def test_rankings(self):
        assert ranking_of("uapriori") == "esup"
        for evaluator in PROBABILITY_EVALUATORS:
            assert ranking_of(evaluator) == "probability"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            resolve_evaluator("no-such-miner")


class TestExpectedRankingEqualsTruncation:
    """Expected-support ranking pinned against every expected-family miner."""

    @pytest.mark.parametrize("algorithm", ["uapriori", "ufp-growth", "uh-mine"])
    def test_topk_equals_mine_then_truncate(self, random_db, algorithm):
        k = 8
        top = mine_topk(random_db, k, algorithm=algorithm)
        full = mine(random_db, algorithm=algorithm, min_esup=1e-9)
        truncated = truncate_result(full, k, "esup")
        assert [r.itemset.items for r in top] == [
            r.itemset.items for r in truncated
        ]
        for ours, theirs in zip(top, truncated):
            assert ours.expected_support == pytest.approx(
                theirs.expected_support, rel=1e-9
            )

    def test_uapriori_scores_bitwise(self, random_db):
        # Same batched engine kernels on both sides: byte-identical scores.
        top = mine_topk(random_db, 10, algorithm="uapriori")
        baseline = truncation_baseline(random_db, 10, "esup", reference=top)
        assert top.ranked_keys() == baseline.ranked_keys()


class TestProbabilisticRankingEqualsTruncation:
    """Definition 4 ranking pinned against the exact probabilistic miners."""

    @pytest.mark.parametrize("algorithm", ["dpb", "dpnb", "dcb", "dcnb"])
    def test_topk_equals_mine_then_truncate(self, random_db, algorithm):
        k, min_sup = 6, 0.2
        top = mine_topk(random_db, k, algorithm=algorithm, min_sup=min_sup)
        full = mine(random_db, algorithm=algorithm, min_sup=min_sup, pft=1e-12)
        truncated = truncate_result(full, k, "probability")
        assert top.ranked_keys() == truncated.ranked_keys()

    def test_self_calibrated_baseline_matches(self, random_db):
        top = mine_topk(random_db, 6, algorithm="dp", min_sup=0.2)
        baseline = truncation_baseline(
            random_db, 6, "dp", min_sup=0.2, reference=top
        )
        assert top.ranked_keys() == baseline.ranked_keys()

    def test_poisson_matches_pdu_truncation(self, random_db):
        top = mine_topk(random_db, 6, algorithm="pdu-apriori", min_sup=0.2)
        baseline = truncation_baseline(
            random_db, 6, "poisson", min_sup=0.2, reference=top
        )
        assert top.ranked_keys() == baseline.ranked_keys()

    def test_poisson_keeps_low_max_support_itemsets(self):
        # Regression: the Poisson score is positive even when an itemset
        # occurs in fewer than min_count transactions (PDUApriori applies
        # no occurrence-count cut), so top-k must not prune it either.
        database = UncertainDatabase.from_records(
            [{1: 1.0} for _ in range(3)] + [{2: 0.15} for _ in range(20)]
        )
        top = mine_topk(database, 2, algorithm="poisson", min_sup=0.2)
        assert [record.itemset.items for record in top] == [(1,), (2,)]
        baseline = truncation_baseline(
            database, 2, "poisson", min_sup=0.2, reference=top
        )
        assert top.ranked_keys() == baseline.ranked_keys()

    def test_exact_evaluators_do_cut_low_max_support_itemsets(self):
        # The exact tails genuinely are zero below min_count occurrences.
        database = UncertainDatabase.from_records(
            [{1: 1.0} for _ in range(3)] + [{2: 0.15} for _ in range(20)]
        )
        top = mine_topk(database, 2, algorithm="dp", min_sup=0.2)
        assert [record.itemset.items for record in top] == [(2,)]

    def test_normal_matches_its_baseline(self, random_db):
        # The riskiest family: non-anti-monotone score, coarse descendant
        # envelope, no exact-tail cheap filters.  Its baseline is the
        # exhaustive same-kernel oracle — NDUApriori's own prefilter and
        # downward closure assume anti-monotonicity and can miss genuine
        # top-k members at a high calibrated pft.
        top = mine_topk(random_db, 6, algorithm="ndu-apriori", min_sup=0.2)
        baseline = truncation_baseline(
            random_db, 6, "normal", min_sup=0.2, reference=top
        )
        assert top.ranked_keys() == baseline.ranked_keys()

    def test_normal_baseline_sound_at_extreme_scores(self):
        # Regression: at pft calibrated near 1, ndu-apriori's Markov item
        # prefilter (esup >= min_count * pft) drops the very itemset being
        # verified; the exhaustive oracle must not.
        database = UncertainDatabase.from_records(
            [{1: 0.9999} for _ in range(100)]
        )
        top = mine_topk(database, 1, algorithm="normal", min_sup=100)
        assert [record.itemset.items for record in top] == [(1,)]
        baseline = truncation_baseline(
            database, 1, "normal", min_sup=100, reference=top
        )
        assert top.ranked_keys() == baseline.ranked_keys()

    def test_dp_and_dc_agree_on_the_ranked_set(self, random_db):
        dp = mine_topk(random_db, 6, algorithm="dp", min_sup=0.2)
        dc = mine_topk(random_db, 6, algorithm="dc", min_sup=0.2)
        assert [r.itemset.items for r in dp] == [r.itemset.items for r in dc]
        for left, right in zip(dp.scores(), dc.scores()):
            assert left == pytest.approx(right, abs=1e-9)


class TestPrunedSearchEqualsExhaustive:
    """The threshold-raising floor changes the work, never the result."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_esup(self, seed):
        database = make_random_database(
            n_transactions=35, n_items=7, density=0.5, seed=seed
        )
        for k in (1, 4, 12):
            pruned = mine_topk(database, k, algorithm="esup")
            reference = exhaustive_topk(database, k, evaluator="esup")
            assert pruned.ranked_keys() == reference.ranked_keys()

    @pytest.mark.parametrize("evaluator", PROBABILITY_EVALUATORS)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_probability(self, evaluator, seed):
        database = make_random_database(
            n_transactions=30, n_items=6, density=0.5, seed=seed
        )
        for k in (1, 5):
            pruned = mine_topk(database, k, algorithm=evaluator, min_sup=0.25)
            reference = exhaustive_topk(
                database, k, evaluator=evaluator, min_sup=0.25
            )
            assert pruned.ranked_keys() == reference.ranked_keys()

    def test_floor_actually_prunes_exact_evaluations(self, random_db):
        pruned = mine_topk(random_db, 3, algorithm="dp", min_sup=0.2)
        reference = exhaustive_topk(random_db, 3, evaluator="dp", min_sup=0.2)
        assert (
            pruned.statistics.exact_evaluations
            < reference.statistics.exact_evaluations
        )


class TestDeterministicTieBreaking:
    def test_exact_ties_resolve_by_size_then_items(self):
        # Perfectly symmetric dyadic database: every singleton ties, every
        # pair ties, and the tie-break must order them size-asc then lex.
        database = UncertainDatabase.from_records(
            [{1: 0.5, 2: 0.5, 3: 0.5} for _ in range(8)]
        )
        top = mine_topk(database, 5, algorithm="uapriori")
        assert [record.itemset.items for record in top] == [
            (1,),
            (2,),
            (3,),
            (1, 2),
            (1, 3),
        ]
        assert top.scores() == [4.0, 4.0, 4.0, 2.0, 2.0]

    def test_probabilistic_ties_resolve_identically(self):
        database = UncertainDatabase.from_records(
            [{1: 1.0, 2: 1.0, 3: 1.0} for _ in range(8)]
        )
        top = mine_topk(database, 4, algorithm="dp", min_sup=0.25)
        assert [record.itemset.items for record in top] == [
            (1,),
            (2,),
            (3,),
            (1, 2),
        ]
        assert top.scores() == [1.0, 1.0, 1.0, 1.0]


class TestBackendAndParallelEquivalence:
    def test_rows_equals_columnar_bitwise(self, random_db):
        for algorithm, kwargs in (
            ("uapriori", {}),
            ("dp", {"min_sup": 0.2}),
            ("dc", {"min_sup": 0.2}),
        ):
            rows = mine_topk(
                random_db, 8, algorithm=algorithm, backend="rows", **kwargs
            )
            columnar = mine_topk(
                random_db, 8, algorithm=algorithm, backend="columnar", **kwargs
            )
            assert rows.ranked_keys() == columnar.ranked_keys()

    @pytest.mark.parametrize("workers,shards", [(1, 2), (2, 1), (2, 2)])
    def test_partitioned_runs_bitwise_identical(self, random_db, workers, shards):
        for algorithm, kwargs in (("uapriori", {}), ("dp", {"min_sup": 0.2})):
            serial = mine_topk(
                random_db, 8, algorithm=algorithm, workers=1, shards=1, **kwargs
            )
            partitioned = mine_topk(
                random_db,
                8,
                algorithm=algorithm,
                workers=workers,
                shards=shards,
                **kwargs,
            )
            assert serial.ranked_keys() == partitioned.ranked_keys()


class TestEdgeCasesAndValidation:
    def test_k_larger_than_positive_universe_returns_all(self):
        database = UncertainDatabase.from_records(
            [{1: 0.5} for _ in range(4)] + [{2: 0.25} for _ in range(4)]
        )
        top = mine_topk(database, 50, algorithm="uapriori")
        # All positive-score itemsets, nothing padded.
        assert [record.itemset.items for record in top] == [(1,), (2,)]

    def test_k_one(self, random_db):
        top = mine_topk(random_db, 1, algorithm="uapriori")
        assert len(top) == 1

    def test_invalid_k_rejected(self, random_db):
        with pytest.raises(ValueError):
            mine_topk(random_db, 0, algorithm="uapriori")

    def test_probability_ranking_requires_min_sup(self, random_db):
        with pytest.raises(ValueError, match="min_sup"):
            mine_topk(random_db, 3, algorithm="dp")

    def test_streaming_rejects_unsupported_evaluator(self):
        from repro.stream import StreamingTopK

        with pytest.raises(ValueError):
            StreamingTopK(8, 3, evaluator="normal", min_sup=0.3)

    def test_empty_database(self):
        top = mine_topk(UncertainDatabase([], name="empty"), 3, algorithm="uapriori")
        assert len(top) == 0

    def test_result_helpers(self, random_db):
        top = mine_topk(random_db, 5, algorithm="dp", min_sup=0.2)
        assert len(top.scores()) == len(top) == len(top.ranked_keys())
        assert top.scores() == sorted(top.scores(), reverse=True)
        as_result = top.as_mining_result()
        assert isinstance(as_result, MiningResult)
        assert as_result.itemset_keys() == top.itemset_keys()

    def test_rank_itemsets_drops_nonpositive_scores(self):
        records = [
            FrequentItemset(Itemset((1,)), 0.0),
            FrequentItemset(Itemset((2,)), 2.0),
        ]
        assert [r.itemset.items for r in rank_itemsets(records, "esup")] == [(2,)]


class TestDyadicBitwiseAgainstTruncation:
    """On dyadic probabilities every comparison is float-exact end to end."""

    def test_esup_and_dp_bitwise(self):
        database = dyadic_db()
        top = mine_topk(database, 7, algorithm="uapriori")
        baseline = truncation_baseline(database, 7, "esup", reference=top)
        assert top.ranked_keys() == baseline.ranked_keys()

        top_dp = mine_topk(database, 7, algorithm="dp", min_sup=0.25)
        baseline_dp = truncation_baseline(
            database, 7, "dp", min_sup=0.25, reference=top_dp
        )
        assert top_dp.ranked_keys() == baseline_dp.ranked_keys()

    def test_miner_statistics_labelled(self):
        database = dyadic_db()
        miner = TopKMiner(evaluator="dp")
        result = miner.mine(database, 4, min_sup=0.25)
        assert result.statistics.algorithm == "topk-dp"
        assert result.statistics.notes["k"] == 4.0
