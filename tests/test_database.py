"""Unit and property tests for UncertainDatabase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import UncertainDatabase, UncertainTransaction


def units_strategy():
    return st.dictionaries(
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0.01, max_value=1.0),
        max_size=5,
    )


def database_strategy(max_transactions: int = 12):
    return st.lists(units_strategy(), min_size=1, max_size=max_transactions).map(
        UncertainDatabase.from_records
    )


class TestContainer:
    def test_len_iteration_and_indexing(self, paper_db):
        assert len(paper_db) == 4
        assert [t.tid for t in paper_db] == [0, 1, 2, 3]
        assert paper_db[2].tid == 2

    def test_duplicate_tids_rejected(self):
        transactions = [UncertainTransaction(1, {0: 0.5}), UncertainTransaction(1, {1: 0.5})]
        with pytest.raises(ValueError):
            UncertainDatabase(transactions)

    def test_items_sorted(self, paper_db):
        assert paper_db.items() == sorted(paper_db.items())
        assert len(paper_db.items()) == 6


class TestStats:
    def test_paper_example_stats(self, paper_db):
        stats = paper_db.stats()
        assert stats.n_transactions == 4
        assert stats.n_items == 6
        assert stats.average_length == pytest.approx(4.0)
        assert stats.density == pytest.approx(4.0 / 6.0)

    def test_empty_database_stats(self):
        stats = UncertainDatabase([]).stats()
        assert stats.n_transactions == 0
        assert stats.average_length == 0.0
        assert stats.density == 0.0


class TestProbabilityPrimitives:
    def test_expected_support_of_paper_items(self, paper_db):
        vocabulary = paper_db.vocabulary
        a = vocabulary.id_of("A")
        c = vocabulary.id_of("C")
        assert paper_db.expected_support((a,)) == pytest.approx(2.1)
        assert paper_db.expected_support((c,)) == pytest.approx(2.6)

    def test_expected_support_of_pair(self, paper_db):
        vocabulary = paper_db.vocabulary
        a, c = vocabulary.id_of("A"), vocabulary.id_of("C")
        # A and C co-occur in T1 (0.72), T2 (0.72) and T3 (0.4).
        assert paper_db.expected_support((a, c)) == pytest.approx(1.84)

    def test_itemset_probabilities_vector(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        vector = paper_db.itemset_probabilities((a,))
        assert vector.tolist() == pytest.approx([0.8, 0.8, 0.5, 0.0])

    def test_support_variance_matches_bernoulli_sum(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        probabilities = paper_db.itemset_probabilities((a,))
        expected_variance = float((probabilities * (1 - probabilities)).sum())
        assert paper_db.support_variance((a,)) == pytest.approx(expected_variance)

    @given(database_strategy())
    @settings(max_examples=30, deadline=None)
    def test_expected_support_antimonotone(self, database):
        """esup of a superset never exceeds esup of a subset."""
        items = database.items()
        if len(items) < 2:
            return
        single = database.expected_support(items[:1])
        pair = database.expected_support(items[:2])
        assert pair <= single + 1e-9

    @given(database_strategy())
    @settings(max_examples=30, deadline=None)
    def test_variance_bounded_by_quarter_n(self, database):
        items = database.items()
        if not items:
            return
        variance = database.support_variance(items[:1])
        assert 0.0 <= variance <= len(database) / 4.0 + 1e-9


class TestTransformations:
    def test_restricted_to_preserves_transaction_count(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        restricted = paper_db.restricted_to({a})
        assert len(restricted) == len(paper_db)
        assert restricted.items() == [a]

    def test_head_returns_prefix(self, paper_db):
        head = paper_db.head(2)
        assert len(head) == 2
        assert [t.tid for t in head] == [0, 1]

    def test_head_rejects_negative(self, paper_db):
        with pytest.raises(ValueError):
            paper_db.head(-1)

    def test_split_halves(self, paper_db):
        left, right = paper_db.split()
        assert len(left) == 2 and len(right) == 2
        assert [t.tid for t in left] + [t.tid for t in right] == [0, 1, 2, 3]

    def test_from_labelled_records_builds_vocabulary(self):
        database = UncertainDatabase.from_labelled_records(
            [{"milk": 0.9, "bread": 0.5}, {"milk": 0.3}]
        )
        milk = database.vocabulary.id_of("milk")
        assert database.expected_support((milk,)) == pytest.approx(1.2)

    def test_expected_support_split_additivity(self, paper_db):
        a = paper_db.vocabulary.id_of("A")
        left, right = paper_db.split()
        total = left.expected_support((a,)) + right.expected_support((a,))
        assert total == pytest.approx(paper_db.expected_support((a,)))
