"""Seeded randomized backend-equivalence fuzz: rows == columnar == cascade.

For a grid of generated uncertain databases (density, size, item count and
probability-grid variations), every sampled miner is run through:

* the ``rows`` oracle,
* the columnar backend with the bitset cascade **off** (the pre-cascade
  recursion),
* the columnar backend with the cascade **on**, serial and row-sharded.

The two columnar paths must agree **bitwise** (same kernels, same floats);
the rows oracle must agree exactly on the frequent sets and to 1e-12 on
every score (full-vector reductions may differ in the last ulp between the
row loop and the NumPy reductions).  Top-k rankings are pinned the same
way.  Seeds are fixed so every failure replays.
"""

from __future__ import annotations

import random

import pytest

from repro.core.miner import mine
from repro.core.topk import mine_topk
from repro.db import UncertainDatabase
from repro.db.columnar import bitset_scope

#: (n_transactions, n_items, density, probability grid, seed)
FUZZ_CONFIGS = [
    (30, 6, 0.25, "uniform", 101),
    (60, 8, 0.5, "uniform", 102),
    (120, 10, 0.75, "uniform", 103),
    (80, 12, 0.15, "coarse", 104),
    (100, 7, 0.6, "coarse", 105),
    (50, 9, 0.4, "certain-mix", 106),
]

MINERS = [
    ("uapriori", {"min_esup": 0.2}),
    ("ufp-growth", {"min_esup": 0.2}),
    ("uh-mine", {"min_esup": 0.2}),
    ("dpb", {"min_sup": 0.3, "pft": 0.6}),
    ("dpnb", {"min_sup": 0.3, "pft": 0.6}),
    ("dcb", {"min_sup": 0.3, "pft": 0.6}),
    ("ndu-apriori", {"min_sup": 0.3, "pft": 0.6}),
    ("pdu-apriori", {"min_sup": 0.3, "pft": 0.6}),
    ("nduh-mine", {"min_sup": 0.3, "pft": 0.6}),
]


def fuzz_database(n_transactions, n_items, density, grid, seed) -> UncertainDatabase:
    rng = random.Random(seed)

    def probability() -> float:
        if grid == "coarse":
            return rng.choice([0.25, 0.5, 0.75, 1.0])
        if grid == "certain-mix":
            return 1.0 if rng.random() < 0.3 else round(rng.uniform(0.05, 1.0), 2)
        return round(rng.uniform(0.05, 1.0), 6)

    records = [
        {
            item: probability()
            for item in range(n_items)
            if rng.random() < density
        }
        for _ in range(n_transactions)
    ]
    return UncertainDatabase.from_records(records, name=f"fuzz-{seed}")


def _records_by_key(result):
    return {record.itemset.items: record for record in result}


def _assert_bitwise(result, reference, label):
    assert result.itemset_keys() == reference.itemset_keys(), label
    twins = _records_by_key(reference)
    for record in result:
        twin = twins[record.itemset.items]
        assert record.expected_support == twin.expected_support, (label, record)
        assert record.variance == twin.variance, (label, record)
        assert record.frequent_probability == twin.frequent_probability, (
            label,
            record,
        )


def _assert_close(result, reference, label, tolerance=1e-12):
    assert result.itemset_keys() == reference.itemset_keys(), label
    twins = _records_by_key(reference)
    for record in result:
        twin = twins[record.itemset.items]
        assert record.expected_support == pytest.approx(
            twin.expected_support, abs=tolerance
        ), (label, record)
        if record.frequent_probability is not None and twin.frequent_probability is not None:
            assert record.frequent_probability == pytest.approx(
                twin.frequent_probability, abs=tolerance
            ), (label, record)


@pytest.mark.parametrize("config", FUZZ_CONFIGS, ids=[str(c[-1]) for c in FUZZ_CONFIGS])
@pytest.mark.parametrize("miner,thresholds", MINERS)
def test_fuzz_miner_equivalence(config, miner, thresholds):
    database = fuzz_database(*config)
    label = (miner, config[-1])

    rows = mine(database, algorithm=miner, backend="rows", **thresholds)
    with bitset_scope("off"):
        recursive = mine(database, algorithm=miner, backend="columnar", **thresholds)
    with bitset_scope("on"):
        cascade = mine(database, algorithm=miner, backend="columnar", **thresholds)
        sharded = mine(
            database,
            algorithm=miner,
            backend="columnar",
            shards=3,
            **thresholds,
        )

    # cascade == pre-cascade recursion == sharded cascade, bitwise
    _assert_bitwise(cascade, recursive, label)
    _assert_bitwise(sharded, cascade, label)
    # columnar == rows oracle: exact frequent sets, scores to 1e-12
    _assert_close(cascade, rows, label)


@pytest.mark.parametrize("config", FUZZ_CONFIGS[:3], ids=[str(c[-1]) for c in FUZZ_CONFIGS[:3]])
@pytest.mark.parametrize(
    "evaluator,min_sup", [("esup", None), ("dp", 0.3), ("normal", 0.3)]
)
def test_fuzz_topk_rankings(config, evaluator, min_sup):
    database = fuzz_database(*config)
    k = 8

    with bitset_scope("off"):
        recursive = mine_topk(database, k, algorithm=evaluator, min_sup=min_sup)
    with bitset_scope("on"):
        cascade = mine_topk(database, k, algorithm=evaluator, min_sup=min_sup)
        sharded = mine_topk(
            database, k, algorithm=evaluator, min_sup=min_sup, shards=3
        )
    rows = mine_topk(database, k, algorithm=evaluator, min_sup=min_sup, backend="rows")

    assert cascade.ranked_keys() == recursive.ranked_keys()
    assert sharded.ranked_keys() == cascade.ranked_keys()
    assert rows.ranked_keys() == cascade.ranked_keys()
    for ours, theirs in zip(cascade, recursive):
        assert ours.expected_support == theirs.expected_support
        assert ours.frequent_probability == theirs.frequent_probability
