"""Tests for the exact probabilistic miners (DP and DC, with and without pruning)."""

import pytest

from repro.algorithms import DCMiner, DPMiner, ExhaustiveProbabilisticMiner
from repro.algorithms.pruning import ChernoffPruner
from repro.core import SupportDistribution

from helpers import make_random_database


ALL_CONFIGS = [
    ("dp", True),
    ("dp", False),
    ("dc", True),
    ("dc", False),
]


def make_miner(kind: str, use_pruning: bool):
    if kind == "dp":
        return DPMiner(use_pruning=use_pruning)
    return DCMiner(use_pruning=use_pruning)


class TestPaperExample:
    @pytest.mark.parametrize("kind,use_pruning", ALL_CONFIGS)
    def test_example2_of_the_paper(self, paper_db, kind, use_pruning):
        """{A} is probabilistic frequent at min_sup=0.5, pft=0.7 (Example 2)."""
        result = make_miner(kind, use_pruning).mine(paper_db, min_sup=0.5, pft=0.7)
        a = paper_db.vocabulary.id_of("A")
        record = result.get((a,))
        assert record is not None
        assert record.frequent_probability == pytest.approx(0.8)

    @pytest.mark.parametrize("kind,use_pruning", ALL_CONFIGS)
    def test_high_pft_excludes_borderline_itemsets(self, paper_db, kind, use_pruning):
        result = make_miner(kind, use_pruning).mine(paper_db, min_sup=0.5, pft=0.85)
        a = paper_db.vocabulary.id_of("A")
        c = paper_db.vocabulary.id_of("C")
        assert result.get((a,)) is None  # Pr = 0.8 < 0.85
        assert result.get((c,)) is not None  # Pr ~ 0.954


class TestCorrectness:
    @pytest.mark.parametrize("kind,use_pruning", ALL_CONFIGS)
    @pytest.mark.parametrize("min_sup,pft", [(0.3, 0.9), (0.2, 0.5), (0.4, 0.7)])
    def test_matches_exhaustive_reference(self, random_db, kind, use_pruning, min_sup, pft):
        fast = make_miner(kind, use_pruning).mine(random_db, min_sup=min_sup, pft=pft)
        slow = ExhaustiveProbabilisticMiner(max_size=6).mine(random_db, min_sup=min_sup, pft=pft)
        assert fast.itemset_keys() == slow.itemset_keys()
        for record in fast:
            assert record.frequent_probability == pytest.approx(
                slow[record.itemset].frequent_probability, abs=1e-9
            )

    def test_dp_and_dc_report_identical_probabilities(self, seeded_random_db):
        dp = DPMiner(use_pruning=False).mine(seeded_random_db, min_sup=0.25, pft=0.6)
        dc = DCMiner(use_pruning=False).mine(seeded_random_db, min_sup=0.25, pft=0.6)
        assert dp.itemset_keys() == dc.itemset_keys()
        for record in dp:
            assert record.frequent_probability == pytest.approx(
                dc[record.itemset].frequent_probability, abs=1e-9
            )

    @pytest.mark.parametrize("kind", ["dp", "dc"])
    def test_pruning_does_not_change_results(self, seeded_random_db, kind):
        """Chernoff pruning is sound: DPB == DPNB and DCB == DCNB."""
        with_bound = make_miner(kind, True).mine(seeded_random_db, min_sup=0.3, pft=0.9)
        without_bound = make_miner(kind, False).mine(seeded_random_db, min_sup=0.3, pft=0.9)
        assert with_bound.itemset_keys() == without_bound.itemset_keys()

    def test_item_prefilter_is_lossless(self, random_db):
        filtered = DCMiner(item_prefilter=True).mine(random_db, min_sup=0.3, pft=0.8)
        unfiltered = DCMiner(item_prefilter=False).mine(random_db, min_sup=0.3, pft=0.8)
        assert filtered.itemset_keys() == unfiltered.itemset_keys()

    def test_probabilities_exceed_pft(self, random_db):
        result = DCMiner().mine(random_db, min_sup=0.25, pft=0.75)
        assert all(record.frequent_probability > 0.75 for record in result)

    def test_expected_support_and_variance_reported(self, random_db):
        result = DCMiner().mine(random_db, min_sup=0.25, pft=0.6)
        for record in result:
            assert record.expected_support == pytest.approx(
                random_db.expected_support(record.itemset)
            )
            assert record.variance == pytest.approx(
                random_db.support_variance(record.itemset)
            )

    def test_dc_without_fft_matches_with_fft(self, random_db):
        with_fft = DCMiner(use_fft=True).mine(random_db, min_sup=0.25, pft=0.6)
        without_fft = DCMiner(use_fft=False).mine(random_db, min_sup=0.25, pft=0.6)
        assert with_fft.itemset_keys() == without_fft.itemset_keys()


class TestChernoffPruner:
    def test_disabled_pruner_never_prunes(self):
        pruner = ChernoffPruner(enabled=False)
        assert not pruner.can_prune(0.1, 50, 0.9)
        assert pruner.pruned == 0

    def test_prunes_hopeless_candidates(self):
        pruner = ChernoffPruner()
        assert pruner.can_prune(expected_support=1.0, min_count=50, pft=0.9)
        assert pruner.pruned == 1
        assert pruner.last_bound <= 0.9

    def test_keeps_promising_candidates(self):
        pruner = ChernoffPruner()
        assert not pruner.can_prune(expected_support=60.0, min_count=50, pft=0.9)

    def test_soundness_against_exact_probability(self):
        """A pruned candidate is never probabilistic frequent."""
        database = make_random_database(n_transactions=40, n_items=6, density=0.3, seed=7)
        pruner = ChernoffPruner()
        min_count, pft = 15, 0.7
        for item in range(6):
            probabilities = database.itemset_probabilities((item,))
            distribution = SupportDistribution(probabilities)
            if pruner.can_prune(distribution.expected_support, min_count, pft):
                assert distribution.frequent_probability(min_count) <= pft


class TestStatistics:
    def test_pruning_reduces_exact_evaluations(self):
        database = make_random_database(n_transactions=60, n_items=10, density=0.3, seed=2)
        pruned = DCMiner(use_pruning=True, item_prefilter=False).mine(
            database, min_sup=0.4, pft=0.9
        )
        unpruned = DCMiner(use_pruning=False, item_prefilter=False).mine(
            database, min_sup=0.4, pft=0.9
        )
        assert (
            pruned.statistics.exact_evaluations <= unpruned.statistics.exact_evaluations
        )
        assert pruned.statistics.notes["chernoff_pruned"] >= 0

    def test_algorithm_names_reflect_configuration(self):
        assert DPMiner(use_pruning=True).name == "dpb"
        assert DPMiner(use_pruning=False).name == "dpnb"
        assert DCMiner(use_pruning=True).name == "dcb"
        assert DCMiner(use_pruning=False).name == "dcnb"
