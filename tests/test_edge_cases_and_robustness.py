"""Edge-case and robustness tests across miners and the evaluation stack.

Failure-injection style checks: degenerate databases (empty, single
transaction, all-tiny probabilities), extreme thresholds, and consistency of
the post-processing layer under those conditions.
"""

import pytest

from repro.algorithms import DCMiner, NDUApriori, NDUHMine, UApriori, UFPGrowth, UHMine
from repro.core import Itemset, closed_itemsets, derive_rules, mine
from repro.db import DatabaseBuilder, UncertainDatabase, UncertainTransaction

EXPECTED_MINERS = [UApriori, UHMine, UFPGrowth]
PROBABILISTIC_MINERS = [DCMiner, NDUApriori, NDUHMine]


def single_transaction_db() -> UncertainDatabase:
    return UncertainDatabase([UncertainTransaction(0, {0: 0.6, 1: 0.4})])


def low_probability_db() -> UncertainDatabase:
    records = [{0: 0.01, 1: 0.02} for _ in range(50)]
    return UncertainDatabase.from_records(records)


class TestDegenerateDatabases:
    @pytest.mark.parametrize("miner_class", EXPECTED_MINERS)
    def test_empty_database_expected(self, miner_class):
        assert len(miner_class().mine(UncertainDatabase([]), min_esup=1)) == 0

    @pytest.mark.parametrize("miner_class", PROBABILISTIC_MINERS)
    def test_empty_database_probabilistic(self, miner_class):
        assert len(miner_class().mine(UncertainDatabase([]), min_sup=1, pft=0.9)) == 0

    @pytest.mark.parametrize("miner_class", EXPECTED_MINERS)
    def test_single_transaction(self, miner_class):
        result = miner_class().mine(single_transaction_db(), min_esup=0.5)
        assert {record.itemset.items for record in result} == {(0,)}

    @pytest.mark.parametrize("miner_class", PROBABILISTIC_MINERS)
    def test_single_transaction_probabilistic(self, miner_class):
        result = miner_class().mine(single_transaction_db(), min_sup=1, pft=0.5)
        assert {record.itemset.items for record in result} == {(0,)}

    @pytest.mark.parametrize("miner_class", EXPECTED_MINERS + PROBABILISTIC_MINERS)
    def test_all_low_probabilities_yield_nothing(self, miner_class):
        database = low_probability_db()
        if miner_class in EXPECTED_MINERS:
            result = miner_class().mine(database, min_esup=0.5)
        else:
            result = miner_class().mine(database, min_sup=0.5, pft=0.9)
        assert len(result) == 0

    def test_database_with_empty_transactions_still_counts_them(self):
        builder = DatabaseBuilder()
        builder.add_transaction([(0, 0.9)])
        database = UncertainDatabase(
            list(builder.build()) + [UncertainTransaction(1, {}), UncertainTransaction(2, {})]
        )
        # N = 3, so min_esup = 0.5 requires 1.5 expected occurrences; item 0 has 0.9.
        assert len(UApriori().mine(database, min_esup=0.5)) == 0
        assert len(UApriori().mine(database, min_esup=0.25)) == 1


class TestExtremeThresholds:
    def test_pft_close_to_one(self, paper_db):
        result = DCMiner().mine(paper_db, min_sup=0.5, pft=0.999)
        for record in result:
            assert record.frequent_probability > 0.999

    def test_pft_close_to_zero_returns_everything_with_any_chance(self, paper_db):
        exact = DCMiner().mine(paper_db, min_sup=0.25, pft=0.001)
        approximate = NDUHMine().mine(paper_db, min_sup=0.25, pft=0.001)
        assert exact.itemset_keys() <= approximate.itemset_keys() | exact.itemset_keys()
        assert len(exact) > 0

    def test_min_sup_equal_to_database_size(self, paper_db):
        result = DCMiner().mine(paper_db, min_sup=1.0, pft=0.1)
        # Support N requires the itemset to appear in every transaction.
        for record in result:
            probabilities = paper_db.itemset_probabilities(record.itemset)
            assert (probabilities > 0).all()

    def test_min_esup_zero_like_threshold(self, paper_db):
        result = UApriori().mine(paper_db, min_esup=1e-9)
        items = {record.itemset.items for record in result if len(record.itemset) == 1}
        assert items == {(item,) for item in paper_db.items()}


class TestUFPGrowthRounding:
    def test_coarse_rounding_merges_nodes(self, paper_db):
        exact = UFPGrowth()
        coarse = UFPGrowth(probability_precision=1)
        exact_result = exact.mine(paper_db, min_esup=0.25)
        coarse_result = coarse.mine(paper_db, min_esup=0.25)
        assert (
            coarse_result.statistics.notes["global_tree_nodes"]
            <= exact_result.statistics.notes["global_tree_nodes"]
        )


class TestPostProcessingRobustness:
    def test_rules_on_result_without_pairs(self, paper_db):
        result = mine(paper_db, algorithm="uapriori", min_esup=0.5)  # singletons only
        assert derive_rules(result, paper_db, min_confidence=0.5) == []

    def test_closed_itemsets_of_empty_result(self):
        from repro.core import MiningResult

        assert len(closed_itemsets(MiningResult([]))) == 0

    def test_closed_itemsets_idempotent(self, paper_db):
        result = mine(paper_db, algorithm="uapriori", min_esup=0.25)
        once = closed_itemsets(result)
        twice = closed_itemsets(once)
        assert once.itemset_keys() == twice.itemset_keys()

    def test_rules_from_probabilistic_result(self, paper_db):
        result = mine(paper_db, algorithm="dcb", min_sup=0.25, pft=0.5)
        rules = derive_rules(result, paper_db, min_confidence=0.3)
        for rule in rules:
            assert rule.antecedent.intersection(rule.consequent) == Itemset()


class TestDispatchRobustness:
    def test_unknown_algorithm_raises_keyerror(self, paper_db):
        with pytest.raises(KeyError):
            mine(paper_db, algorithm="nonexistent", min_esup=0.5)

    def test_invalid_pft_rejected_through_dispatch(self, paper_db):
        with pytest.raises(ValueError):
            mine(paper_db, algorithm="dcb", min_sup=0.5, pft=1.5)

    def test_negative_threshold_rejected(self, paper_db):
        with pytest.raises(ValueError):
            mine(paper_db, algorithm="uapriori", min_esup=-0.5)
