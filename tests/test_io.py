"""Tests for reading/writing uncertain databases as text."""

import io

import pytest

from repro.db import read_fimi, read_uncertain, write_fimi, write_uncertain
from repro.db.io import format_uncertain_line, parse_uncertain_line


class TestUncertainFormat:
    def test_parse_line(self):
        assert parse_uncertain_line("3:0.8 17:0.25") == {3: 0.8, 17: 0.25}

    def test_parse_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_uncertain_line("3 17")

    def test_format_line_sorted(self):
        assert format_uncertain_line({17: 0.25, 3: 0.8}) == "3:0.8 17:0.25"

    def test_roundtrip_through_buffer(self, paper_db):
        buffer = io.StringIO()
        write_uncertain(paper_db, buffer)
        buffer.seek(0)
        restored = read_uncertain(buffer)
        assert len(restored) == len(paper_db)
        for original, copy in zip(paper_db, restored):
            assert copy.units == pytest.approx(original.units)

    def test_roundtrip_through_file(self, paper_db, tmp_path):
        path = tmp_path / "paper.txt"
        write_uncertain(paper_db, path)
        restored = read_uncertain(path, name="paper")
        assert restored.name == "paper"
        assert len(restored) == 4

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n1:0.5 2:0.25\n"
        database = read_uncertain(io.StringIO(text))
        assert len(database) == 1
        assert database[0].units == {1: 0.5, 2: 0.25}


class TestFimiFormat:
    def test_read_without_model_gives_certain_items(self):
        database = read_fimi(io.StringIO("1 2 3\n2 3\n"))
        assert len(database) == 2
        assert database[0].units == {1: 1.0, 2: 1.0, 3: 1.0}

    def test_read_with_probability_model(self):
        database = read_fimi(io.StringIO("1 2\n"), probability_model=lambda tid, item: 0.5)
        assert database[0].units == {1: 0.5, 2: 0.5}

    def test_write_fimi_drops_probabilities(self, paper_db, tmp_path):
        path = tmp_path / "paper.fimi"
        write_fimi(paper_db, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert all(":" not in line for line in lines)

    def test_fimi_roundtrip_preserves_structure(self, paper_db, tmp_path):
        path = tmp_path / "paper.fimi"
        write_fimi(paper_db, path)
        restored = read_fimi(path)
        for original, copy in zip(paper_db, restored):
            assert set(copy.units) == set(original.units)
