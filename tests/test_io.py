"""Tests for reading/writing uncertain databases as text."""

import io

import pytest

from repro.db import read_fimi, read_uncertain, write_fimi, write_uncertain
from repro.db.io import format_uncertain_line, parse_uncertain_line


class TestUncertainFormat:
    def test_parse_line(self):
        assert parse_uncertain_line("3:0.8 17:0.25") == {3: 0.8, 17: 0.25}

    def test_parse_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_uncertain_line("3 17")

    def test_format_line_sorted(self):
        assert format_uncertain_line({17: 0.25, 3: 0.8}) == "3:0.8 17:0.25"

    def test_roundtrip_through_buffer(self, paper_db):
        buffer = io.StringIO()
        write_uncertain(paper_db, buffer)
        buffer.seek(0)
        restored = read_uncertain(buffer)
        assert len(restored) == len(paper_db)
        for original, copy in zip(paper_db, restored):
            assert copy.units == pytest.approx(original.units)

    def test_roundtrip_through_file(self, paper_db, tmp_path):
        path = tmp_path / "paper.txt"
        write_uncertain(paper_db, path)
        restored = read_uncertain(path, name="paper")
        assert restored.name == "paper"
        assert len(restored) == 4

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n1:0.5 2:0.25\n"
        database = read_uncertain(io.StringIO(text))
        assert len(database) == 1
        assert database[0].units == {1: 0.5, 2: 0.25}


class TestUncertainErrors:
    def test_bad_item_names_token_and_kind(self):
        with pytest.raises(ValueError, match=r"item 'x' is not an integer"):
            parse_uncertain_line("x:0.5")

    def test_bad_probability_names_token_and_kind(self):
        with pytest.raises(ValueError, match=r"probability 'high' is not a number"):
            parse_uncertain_line("3:high")

    def test_read_reports_path_and_line_number(self, tmp_path):
        path = tmp_path / "broken.txt"
        path.write_text("1:0.5\n# comment\n\n2:0.5 bad\n")
        with pytest.raises(ValueError, match=r"broken\.txt, line 4: malformed"):
            read_uncertain(path)

    def test_read_reports_handle_name(self):
        handle = io.StringIO("oops\n")
        with pytest.raises(ValueError, match=r"<StringIO>, line 1"):
            read_uncertain(handle)


class TestPrecisionBoundaries:
    def test_default_precision_keeps_six_significant_digits(self):
        line = format_uncertain_line({1: 0.1234567890123})
        assert line == "1:0.123457"
        assert parse_uncertain_line(line)[1] == 0.123457

    def test_tiny_probability_survives_scientific_notation(self):
        # %g falls back to scientific notation instead of rounding to 0.0.
        line = format_uncertain_line({1: 1.25e-9})
        assert parse_uncertain_line(line)[1] == 1.25e-9

    def test_near_one_rounds_to_exactly_one_at_precision_six(self):
        line = format_uncertain_line({1: 0.99999995})
        assert parse_uncertain_line(line)[1] == 1.0

    def test_higher_precision_preserves_the_distinction(self):
        line = format_uncertain_line({1: 0.99999995}, precision=12)
        assert parse_uncertain_line(line)[1] == 0.99999995

    def test_roundtrip_is_exact_at_precision_17(self, paper_db):
        buffer = io.StringIO()
        write_uncertain(paper_db, buffer, precision=17)
        buffer.seek(0)
        restored = read_uncertain(buffer)
        for original, copy in zip(paper_db, restored):
            assert copy.units == original.units


class TestSourceKinds:
    def test_path_and_handle_read_identically(self, paper_db, tmp_path):
        path = tmp_path / "paper.txt"
        write_uncertain(paper_db, path)
        from_path = read_uncertain(path)
        with open(path, "r", encoding="utf-8") as handle:
            from_handle = read_uncertain(handle)
        for ours, theirs in zip(from_path, from_handle):
            assert ours.units == theirs.units

    def test_handle_is_not_closed_by_reader(self):
        handle = io.StringIO("1:0.5\n")
        read_uncertain(handle)
        assert not handle.closed

    def test_handle_is_not_closed_by_writer(self, paper_db):
        buffer = io.StringIO()
        write_uncertain(paper_db, buffer)
        assert not buffer.closed


class TestFimiFormat:
    def test_read_without_model_gives_certain_items(self):
        database = read_fimi(io.StringIO("1 2 3\n2 3\n"))
        assert len(database) == 2
        assert database[0].units == {1: 1.0, 2: 1.0, 3: 1.0}

    def test_read_with_probability_model(self):
        database = read_fimi(io.StringIO("1 2\n"), probability_model=lambda tid, item: 0.5)
        assert database[0].units == {1: 0.5, 2: 0.5}

    def test_write_fimi_drops_probabilities(self, paper_db, tmp_path):
        path = tmp_path / "paper.fimi"
        write_fimi(paper_db, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert all(":" not in line for line in lines)

    def test_fimi_roundtrip_preserves_structure(self, paper_db, tmp_path):
        path = tmp_path / "paper.fimi"
        write_fimi(paper_db, path)
        restored = read_fimi(path)
        for original, copy in zip(paper_db, restored):
            assert set(copy.units) == set(original.units)

    def test_malformed_item_reports_path_and_line_number(self, tmp_path):
        path = tmp_path / "broken.fimi"
        path.write_text("1 2\n3 four 5\n")
        with pytest.raises(
            ValueError, match=r"broken\.fimi, line 2: malformed FIMI item 'four'"
        ):
            read_fimi(path)
