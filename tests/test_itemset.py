"""Unit and property tests for Itemset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Itemset

item_lists = st.lists(st.integers(min_value=0, max_value=50), max_size=8)


class TestConstruction:
    def test_items_are_sorted_and_deduplicated(self):
        assert Itemset([3, 1, 3, 2]).items == (1, 2, 3)

    def test_single_int_accepted(self):
        assert Itemset(5).items == (5,)

    def test_copy_constructor(self):
        original = Itemset([1, 2])
        assert Itemset(original) == original

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            Itemset([-1])

    def test_empty_itemset(self):
        assert len(Itemset()) == 0


class TestEqualityAndHashing:
    def test_order_insensitive_equality(self):
        assert Itemset([2, 1]) == Itemset([1, 2])

    def test_equality_with_plain_sequences(self):
        assert Itemset([1, 2]) == (2, 1)
        assert Itemset([1, 2]) == {1, 2}

    def test_hash_consistency(self):
        assert hash(Itemset([2, 1])) == hash(Itemset([1, 2]))
        assert len({Itemset([1, 2]), Itemset([2, 1])}) == 1

    def test_ordering_is_lexicographic(self):
        assert Itemset([1, 2]) < Itemset([1, 3])
        assert sorted([Itemset([2]), Itemset([1, 5])]) == [Itemset([1, 5]), Itemset([2])]


class TestSetAlgebra:
    def test_union(self):
        assert Itemset([1]).union([2, 3]) == Itemset([1, 2, 3])

    def test_intersection(self):
        assert Itemset([1, 2, 3]).intersection([2, 3, 4]) == Itemset([2, 3])

    def test_difference(self):
        assert Itemset([1, 2, 3]).difference([2]) == Itemset([1, 3])

    def test_subset_superset(self):
        assert Itemset([1, 2]).issubset([1, 2, 3])
        assert Itemset([1, 2, 3]).issuperset([3])
        assert not Itemset([1, 4]).issubset([1, 2, 3])

    def test_with_item(self):
        assert Itemset([2]).with_item(1) == Itemset([1, 2])

    def test_subsets_of_size(self):
        subsets = set(Itemset([1, 2, 3]).subsets_of_size(2))
        assert subsets == {Itemset([1, 2]), Itemset([1, 3]), Itemset([2, 3])}

    def test_prefix(self):
        assert Itemset([5, 1, 3]).prefix(2) == Itemset([1, 3])

    def test_contains(self):
        assert 2 in Itemset([1, 2])
        assert 9 not in Itemset([1, 2])


class TestProperties:
    @given(item_lists, item_lists)
    def test_union_is_commutative(self, left, right):
        assert Itemset(left).union(right) == Itemset(right).union(left)

    @given(item_lists, item_lists)
    def test_intersection_subset_of_operands(self, left, right):
        intersection = Itemset(left).intersection(right)
        assert intersection.issubset(Itemset(left))
        assert intersection.issubset(Itemset(right))

    @given(item_lists)
    def test_canonical_form_idempotent(self, items):
        itemset = Itemset(items)
        assert Itemset(itemset.items) == itemset

    @given(item_lists, item_lists)
    def test_difference_disjoint_from_other(self, left, right):
        difference = Itemset(left).difference(right)
        assert difference.intersection(right) == Itemset()
