"""Tests for database validation."""

import pytest

from repro.db import UncertainDatabase, UncertainTransaction, validate_database


def test_clean_database_passes(paper_db):
    report = validate_database(paper_db)
    assert report.ok
    assert report.errors == []


def test_empty_database_warns():
    report = validate_database(UncertainDatabase([]))
    assert report.ok
    assert len(report.warnings) == 1


def test_empty_transaction_warns():
    database = UncertainDatabase([UncertainTransaction(0, {}), UncertainTransaction(1, {0: 0.5})])
    report = validate_database(database)
    assert report.ok
    assert any("empty transaction" in issue.message for issue in report.warnings)


def test_empty_transaction_warning_can_be_disabled():
    database = UncertainDatabase([UncertainTransaction(0, {})])
    report = validate_database(database, warn_on_empty=False)
    assert report.warnings == []


def test_negligible_probability_warns():
    database = UncertainDatabase([UncertainTransaction(0, {0: 1e-12})])
    report = validate_database(database)
    assert report.ok
    assert any("negligible" in issue.message for issue in report.warnings)


def test_mutated_probability_out_of_range_is_an_error():
    transaction = UncertainTransaction(0, {0: 0.5})
    transaction.units[0] = 1.5  # simulate direct mutation bypassing validation
    report = validate_database(UncertainDatabase([transaction]))
    assert not report.ok
    with pytest.raises(ValueError):
        report.raise_if_invalid()


def test_report_separates_errors_and_warnings():
    good = UncertainTransaction(0, {0: 0.5})
    empty = UncertainTransaction(1, {})
    report = validate_database(UncertainDatabase([good, empty]))
    assert len(report.errors) == 0
    assert len(report.warnings) == 1
    assert report.issues == report.warnings
