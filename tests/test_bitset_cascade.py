"""The bitset evaluation cascade: bitmaps, kills, caches, knobs, sharding.

Pins the three stages of the cascade against the pre-cascade recursion:

* stage 1 — packed occupancy bitmaps and popcount kill decisions;
* stage 2 — cross-level byte-budgeted prefix caching (and its bounding);
* stage 3 — the bound-ordered Markov → Chernoff filter-verify pipeline.

Everything here is exactness-focused; the speed claims live in
``benchmarks/bench_bitset_cascade.py``.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.algorithms.pruning import ChernoffPruner
from repro.core.parallel import ParallelExecutor
from repro.core.support import (
    SupportEngine,
    MergeableSupportStats,
    cheap_tail_upper_bound,
    chernoff_upper_bound,
    exact_pmf_dynamic_programming,
    markov_upper_bound,
    staged_tail_filter,
)
from repro.db import UncertainDatabase
from repro.db.cache import ByteBudgetLRU
from repro.db.columnar import (
    BITSET_ENV,
    ColumnarView,
    bitset_scope,
    popcount_rows,
    resolve_bitset,
)

from helpers import make_random_database


@pytest.fixture
def database():
    return make_random_database(n_transactions=80, n_items=9, density=0.5, seed=31)


def _all_levels(view, max_len=3):
    """Every itemset of the database up to ``max_len`` as candidate tuples."""
    from itertools import combinations

    items = view.items()
    candidates = []
    for k in range(1, max_len + 1):
        candidates.extend(combinations(items, k))
    return candidates


class TestPopcountAndBitmaps:
    def test_popcount_rows_matches_unpackbits(self):
        rng = np.random.default_rng(3)
        packed = rng.integers(0, 256, size=(17, 13), dtype=np.uint8)
        expected = np.unpackbits(packed, axis=1).sum(axis=1)
        assert popcount_rows(packed).tolist() == expected.tolist()

    def test_item_bitmap_matches_column(self, database):
        view = database.columnar()
        for item in view.items():
            bitmap = view.item_bitmap(item)
            rows = np.flatnonzero(np.unpackbits(bitmap)[: len(database)])
            assert rows.tolist() == view.column(item)[0].tolist()

    def test_level_occupancy_counts_match_vector_nonzeros(self, database):
        view = database.columnar()
        candidates = _all_levels(view)
        counts = view.level_occupancy_counts(candidates)
        vectors = view.batch_vectors(candidates, bitset="off")
        for candidate, count, vector in zip(candidates, counts, vectors):
            assert count == np.count_nonzero(vector), candidate

    def test_empty_candidate_occupies_every_row(self, database):
        view = database.columnar()
        counts = view.level_occupancy_counts([(), (view.items()[0],)])
        assert counts[0] == len(database)

    def test_ragged_and_uniform_level_bitmaps_agree(self, database):
        view = database.columnar()
        items = view.items()
        ragged = [(items[0],), (items[0], items[1]), (items[0], items[1], items[2])]
        ragged_counts = view.level_occupancy_counts(ragged)
        for candidate, count in zip(ragged, ragged_counts):
            assert count == view.level_occupancy_counts([candidate])[0]

    def test_empty_database_and_empty_level(self):
        empty = UncertainDatabase.from_records([])
        view = empty.columnar()
        assert view.level_occupancy_counts([]).tolist() == []
        assert view.level_occupancy_counts([(1,), (1, 2)]).tolist() == [0, 0]
        assert view.batch_vectors([(1,)], min_count=1) [0].tolist() == []


class TestCascadeEquivalence:
    def test_batch_columns_bitwise_identical_to_recursive(self, database):
        view = database.columnar()
        candidates = _all_levels(view)
        on = view.batch_columns(candidates, bitset="on")
        off = view.batch_columns(candidates, bitset="off")
        for (rows_on, probs_on), (rows_off, probs_off) in zip(on, off):
            assert np.array_equal(rows_on, rows_off)
            assert np.array_equal(probs_on, probs_off)

    def test_kill_threshold_returns_empty_columns_only_below_count(self, database):
        view = database.columnar()
        candidates = _all_levels(view)
        counts = view.level_occupancy_counts(candidates)
        min_count = int(np.median(counts)) + 1
        killed = view.batch_vectors(candidates, min_count=min_count)
        reference = view.batch_vectors(candidates, bitset="off")
        for count, vector, full in zip(counts, killed, reference):
            if count < min_count:
                assert len(vector) == 0
            else:
                assert np.array_equal(vector, full)

    def test_kill_is_sound_for_both_definitions(self, database):
        # A killed candidate could never be frequent: its expected support
        # is bounded by the count, and its exact tail at min_count is zero.
        view = database.columnar()
        candidates = _all_levels(view)
        counts = view.level_occupancy_counts(candidates)
        vectors = view.batch_vectors(candidates, bitset="off")
        min_count = int(np.median(counts)) + 1
        for count, vector in zip(counts, vectors):
            if count < min_count:
                assert float(vector.sum()) < min_count
                pmf = exact_pmf_dynamic_programming(vector)
                assert float(pmf[min_count:].sum()) == 0.0

    def test_cross_level_prefix_cache_serves_second_call(self, database):
        view = ColumnarView(database)
        pairs = [(0, 1), (0, 2), (1, 2)]
        triples = [(0, 1, 2)]
        first = view.batch_columns(pairs)
        hits_before = view._prefix_cache.hits
        second = view.batch_columns(triples)
        assert view._prefix_cache.hits > hits_before  # (0, 1) reused as prefix
        expected = view.batch_columns(triples, bitset="off")
        assert np.array_equal(second[0][1], expected[0][1])
        assert np.array_equal(first[0][1], view.batch_columns(pairs, bitset="off")[0][1])

    def test_killed_candidates_never_poison_the_prefix_cache(self, database):
        # A stage-1 kill returns the empty column; a later, lower-threshold
        # run must still see the candidate's true column.
        view = ColumnarView(database)
        candidates = _all_levels(view, max_len=2)
        counts = view.level_occupancy_counts(candidates)
        min_count = int(counts.max())  # kills almost everything
        view.batch_columns(candidates, min_count=min_count)
        full = view.batch_columns(candidates)  # no threshold: true columns
        reference = view.batch_columns(candidates, bitset="off")
        for (rows_a, probs_a), (rows_b, probs_b) in zip(full, reference):
            assert np.array_equal(rows_a, rows_b)
            assert np.array_equal(probs_a, probs_b)

    def test_single_itemset_queries_unchanged(self, database):
        view = database.columnar()
        for itemset in [(0,), (0, 1), (1, 2, 3), ()]:
            on = view.itemset_column(itemset)
            with bitset_scope("off"):
                off = view.itemset_column(itemset)
            assert np.array_equal(on[0], off[0])
            assert np.array_equal(on[1], off[1])


class TestShardedCascade:
    def test_partition_counts_sum_to_global(self, database):
        view = database.columnar()
        partition = database.partition(3)
        candidates = _all_levels(view)
        assert np.array_equal(
            partition.level_occupancy_counts(candidates),
            view.level_occupancy_counts(candidates),
        )

    def test_partition_kill_uses_global_counts(self):
        # Candidate (1,) has one supporting row in each of two shards; a
        # min_count of 2 is only reachable globally — per-shard evidence
        # alone would kill it and corrupt the concatenated vector.
        db = UncertainDatabase.from_records(
            [{1: 0.5}, {2: 0.25}, {1: 0.75}, {2: 1.0}]
        )
        partition = db.partition(2)
        vectors = partition.batch_vectors([(1,), (1, 2)], min_count=2)
        assert vectors[0].tolist() == [0.5, 0.75]
        assert vectors[1].tolist() == []  # truly below min_count globally

    def test_partition_batch_vectors_match_serial_cascade(self, database):
        view = database.columnar()
        partition = database.partition(4)
        candidates = _all_levels(view)
        min_count = 5
        serial = view.batch_vectors(candidates, min_count=min_count)
        sharded = partition.batch_vectors(candidates, min_count=min_count)
        for left, right in zip(serial, sharded):
            assert np.array_equal(left, right)

    def test_executor_shard_vectors_with_kill(self, database):
        candidates = _all_levels(database.columnar())
        min_count = 5
        serial = database.columnar().batch_vectors(candidates, min_count=min_count)
        with ParallelExecutor(1, shard_views=database.partition(3).shards) as executor:
            fanned = executor.shard_vectors(candidates, min_count=min_count)
        for left, right in zip(serial, fanned):
            assert np.array_equal(left, right)

    def test_mergeable_stats_carry_additive_occupancy_counts(self, database):
        view = database.columnar()
        candidates = _all_levels(view, max_len=2)
        stats = MergeableSupportStats.from_partition(
            database.partition(3), candidates
        )
        assert stats.occupancy_counts is not None
        assert np.array_equal(
            stats.occupancy_counts, view.level_occupancy_counts(candidates)
        )

    def test_shard_pickling_drops_caches(self, database):
        view = database.columnar()
        view.batch_vectors(_all_levels(view), min_count=3)  # fill every cache
        assert len(view._prefix_cache) > 0 and len(view._bitmaps) > 0
        clone = pickle.loads(pickle.dumps(view))
        assert len(clone._prefix_cache) == 0
        assert len(clone._bitmaps) == 0
        assert len(clone._dense_columns) == 0
        candidates = _all_levels(view)
        for left, right in zip(
            clone.batch_vectors(candidates), view.batch_vectors(candidates)
        ):
            assert np.array_equal(left, right)


class TestByteBudgetCaches:
    def test_lru_eviction_order_and_budget(self):
        cache = ByteBudgetLRU(budget_bytes=64)
        cache.put("a", np.zeros(4))
        cache.put("b", np.zeros(4))
        assert cache.get("a") is not None  # refresh "a"; "b" is now coldest
        cache.put("c", np.zeros(4))
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.nbytes <= 64

    def test_oversized_value_is_not_retained(self):
        cache = ByteBudgetLRU(budget_bytes=16)
        cache.put("big", np.zeros(100))
        assert len(cache) == 0

    def test_zero_budget_disables_caching(self):
        cache = ByteBudgetLRU(budget_bytes=0)
        cache.put("a", np.zeros(1))
        assert cache.get("a") is None

    def test_prefix_cache_budget_is_respected_and_only_costs_time(
        self, database, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PREFIX_CACHE_BYTES", "256")
        view = ColumnarView(database)
        candidates = _all_levels(view)
        first = view.batch_vectors(candidates)
        assert view._prefix_cache.nbytes <= 256
        second = view.batch_vectors(candidates)
        reference = view.batch_vectors(candidates, bitset="off")
        for a, b, c in zip(first, second, reference):
            assert np.array_equal(a, c) and np.array_equal(b, c)

    def test_dense_memo_is_bounded(self, database, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_CACHE_BYTES", str(len(database) * 8 * 2))
        view = ColumnarView(database)
        for item in view.items():
            view._dense_column(item)
        assert len(view._dense_columns) <= 2
        assert view._dense_columns.nbytes <= len(database) * 8 * 2


class TestBitsetKnob:
    def test_resolve_values(self):
        assert resolve_bitset(None) is True  # default on
        assert resolve_bitset(True) and not resolve_bitset(False)
        for raw in ("on", "1", "true", "YES"):
            assert resolve_bitset(raw) is True
        for raw in ("off", "0", "false", "No"):
            assert resolve_bitset(raw) is False
        with pytest.raises(ValueError):
            resolve_bitset("maybe")

    def test_env_variable_and_scope(self, monkeypatch):
        monkeypatch.setenv(BITSET_ENV, "off")
        assert resolve_bitset(None) is False
        with bitset_scope("on"):
            assert resolve_bitset(None) is True
        assert resolve_bitset(None) is False
        monkeypatch.delenv(BITSET_ENV)
        with bitset_scope("off"):
            assert resolve_bitset(None) is False
        assert os.environ.get(BITSET_ENV) is None

    def test_cli_accepts_bitset_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "mine",
                "--dataset",
                "accident",
                "--scale",
                "0.0005",
                "--algorithm",
                "uapriori",
                "--min-esup",
                "0.3",
                "--bitset",
                "off",
            ]
        )
        assert code == 0
        assert "frequent itemsets" in capsys.readouterr().out


class TestBoundOrderedVerify:
    def test_markov_bound_is_sound(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            vector = rng.uniform(0.0, 1.0, size=rng.integers(1, 40))
            min_count = int(rng.integers(1, len(vector) + 2))
            exact = float(
                exact_pmf_dynamic_programming(vector)[min_count:].sum()
            )
            assert exact <= markov_upper_bound(float(vector.sum()), min_count) + 1e-12

    def test_staged_filter_matches_min_bound_decision(self):
        rng = np.random.default_rng(12)
        for _ in range(200):
            expected = float(rng.uniform(0.0, 30.0))
            min_count = int(rng.integers(0, 40))
            floor = float(rng.uniform(0.0, 1.0))
            combined = cheap_tail_upper_bound(expected, min_count)
            assert staged_tail_filter(expected, min_count, floor) == (
                combined < floor
            )

    def test_undecided_after_bounds_never_drops_a_frequent_candidate(self):
        rng = np.random.default_rng(13)
        vectors = [rng.uniform(0.0, 1.0, size=rng.integers(0, 30)) for _ in range(60)]
        engine = SupportEngine(vectors)
        min_count, pft = 6, 0.4
        undecided = set(engine.undecided_after_bounds(min_count, pft))
        for index, vector in enumerate(vectors):
            exact = float(exact_pmf_dynamic_programming(vector)[min_count:].sum())
            if exact > pft:
                assert index in undecided, (index, exact)

    def test_bounds_disabled_only_applies_count_filter(self):
        vectors = [np.array([0.2, 0.2]), np.array([0.9] * 6), np.zeros(0)]
        engine = SupportEngine(vectors)
        undecided = engine.undecided_after_bounds(2, 0.9, use_bounds=False)
        assert undecided == [0, 1]  # the empty vector fails the count filter

    def test_pruner_accounting_covers_chernoff_stage_only(self):
        vectors = [np.full(20, 0.05), np.full(20, 0.9)]
        engine = SupportEngine(vectors)
        pruner = ChernoffPruner(enabled=True)
        notes = {}
        min_count, pft = 10, 0.5
        undecided = engine.undecided_after_bounds(
            min_count, pft, pruner=pruner, notes=notes
        )
        # candidate 0: markov bound = 1/10 = 0.1 <= pft, killed before Chernoff
        assert notes["markov_pruned"] == 1.0
        assert pruner.tested == 1  # only candidate 1 reached the Chernoff stage
        assert undecided == [1]
        assert chernoff_upper_bound(18.0, min_count) > pft  # sanity of the setup


class TestEngineEmptyFastPaths:
    def test_moments_and_counts_of_killed_vectors(self):
        engine = SupportEngine([np.zeros(0), np.array([0.5, 0.25])])
        assert engine.expected_supports().tolist() == [0.0, 0.75]
        assert engine.variances().tolist() == [0.0, 0.25 + 0.1875]
        assert engine.nonzero_counts().tolist() == [0, 2]
