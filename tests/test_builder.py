"""Tests for the DatabaseBuilder and the paper example."""

import pytest

from repro.db import DatabaseBuilder, paper_example_database


class TestDatabaseBuilder:
    def test_labelled_transactions_create_vocabulary(self):
        builder = DatabaseBuilder("demo")
        builder.add_transaction([("milk", 0.9), ("bread", 0.4)])
        builder.add_transaction([("milk", 0.5)])
        database = builder.build()
        assert database.name == "demo"
        assert database.vocabulary is not None
        milk = database.vocabulary.id_of("milk")
        assert database.expected_support((milk,)) == pytest.approx(1.4)

    def test_integer_transactions_have_no_vocabulary(self):
        database = DatabaseBuilder().add_transaction([(0, 0.5)]).build()
        assert database.vocabulary is None

    def test_mixing_labels_and_integers_rejected(self):
        builder = DatabaseBuilder()
        builder.add_transaction([("a", 0.5)])
        with pytest.raises(ValueError):
            builder.add_transaction([(1, 0.5)])

    def test_certain_transaction_defaults_to_probability_one(self):
        database = DatabaseBuilder().add_certain_transaction(["a", "b"]).build()
        assert database[0].units == {0: 1.0, 1: 1.0}

    def test_certain_transaction_with_probability_model(self):
        database = (
            DatabaseBuilder()
            .add_certain_transaction([0, 1], probability_model=lambda tid, item: 0.25)
            .build()
        )
        assert database[0].units == {0: 0.25, 1: 0.25}

    def test_builder_is_chainable(self):
        database = (
            DatabaseBuilder()
            .add_transaction([(0, 0.5)])
            .add_transaction([(1, 0.5)])
            .build()
        )
        assert len(database) == 2


class TestPaperExample:
    def test_shape(self):
        database = paper_example_database()
        assert len(database) == 4
        assert len(database.items()) == 6

    def test_expected_supports_match_paper(self):
        database = paper_example_database()
        vocabulary = database.vocabulary
        expected = {"A": 2.1, "B": 1.4, "C": 2.6, "D": 1.2, "E": 1.3, "F": 1.8}
        for label, value in expected.items():
            item = vocabulary.id_of(label)
            assert database.expected_support((item,)) == pytest.approx(value)
