"""Unit tests for the item Vocabulary."""

import pytest

from repro.db import Vocabulary


class TestVocabulary:
    def test_identifiers_are_dense_and_first_seen(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("apple") == 0
        assert vocabulary.add("banana") == 1
        assert vocabulary.add("apple") == 0
        assert len(vocabulary) == 2

    def test_constructor_accepts_initial_labels(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        assert vocabulary.id_of("c") == 2

    def test_label_roundtrip(self):
        vocabulary = Vocabulary(["x", "y"])
        assert vocabulary.label_of(vocabulary.id_of("y")) == "y"

    def test_labels_of_sequence(self):
        vocabulary = Vocabulary(["x", "y", "z"])
        assert vocabulary.labels_of([2, 0]) == ["z", "x"]

    def test_unknown_label_raises(self):
        vocabulary = Vocabulary(["x"])
        with pytest.raises(KeyError):
            vocabulary.id_of("nope")

    def test_unknown_id_raises(self):
        vocabulary = Vocabulary(["x"])
        with pytest.raises(IndexError):
            vocabulary.label_of(5)
        with pytest.raises(IndexError):
            vocabulary.label_of(-1)

    def test_contains_and_iteration(self):
        vocabulary = Vocabulary(["x", "y"])
        assert "x" in vocabulary
        assert "q" not in vocabulary
        assert list(vocabulary) == ["x", "y"]

    def test_to_dict_returns_copy(self):
        vocabulary = Vocabulary(["x"])
        mapping = vocabulary.to_dict()
        mapping["x"] = 99
        assert vocabulary.id_of("x") == 0

    def test_non_string_labels_are_stringified(self):
        vocabulary = Vocabulary()
        identifier = vocabulary.add(42)
        assert vocabulary.label_of(identifier) == "42"
        assert vocabulary.id_of("42") == identifier
