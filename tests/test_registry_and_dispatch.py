"""Tests for the algorithm registry and the unified mine() front-end."""

import pytest

import repro
from repro.core import algorithm_names, algorithms_in_family, get_algorithm, mine, register_algorithm
from repro.core.registry import AlgorithmInfo


EXPECTED_NAMES = {"uapriori", "ufp-growth", "uh-mine"}
EXACT_NAMES = {"dpnb", "dpb", "dcnb", "dcb"}
APPROXIMATE_NAMES = {"pdu-apriori", "ndu-apriori", "nduh-mine"}


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = set(algorithm_names())
        assert EXPECTED_NAMES <= names
        assert EXACT_NAMES <= names
        assert APPROXIMATE_NAMES <= names

    def test_families(self):
        assert EXPECTED_NAMES <= set(algorithms_in_family("expected"))
        assert EXACT_NAMES <= set(algorithms_in_family("exact"))
        assert APPROXIMATE_NAMES <= set(algorithms_in_family("approximate"))

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("UApriori").name == "uapriori"

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_info_fields(self):
        info = get_algorithm("dcb")
        assert isinstance(info, AlgorithmInfo)
        assert info.family == "exact"
        assert callable(info.factory)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("uapriori", "expected", object)

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("brand-new", "bogus-family", object)


class TestMineDispatch:
    def test_expected_algorithm_requires_min_esup(self, paper_db):
        with pytest.raises(ValueError):
            mine(paper_db, algorithm="uapriori")

    def test_probabilistic_algorithm_requires_min_sup(self, paper_db):
        with pytest.raises(ValueError):
            mine(paper_db, algorithm="dcb")

    def test_expected_dispatch(self, paper_db):
        result = mine(paper_db, algorithm="uapriori", min_esup=0.5)
        assert {record.itemset.items for record in result} == {(0,), (2,)}

    def test_probabilistic_dispatch(self, paper_db):
        result = mine(paper_db, algorithm="dcb", min_sup=0.5, pft=0.7)
        assert len(result) == 2
        assert all(record.frequent_probability is not None for record in result)

    def test_options_forwarded_to_constructor(self, paper_db):
        result = mine(paper_db, algorithm="uapriori", min_esup=0.5, track_variance=True)
        assert all(record.variance is not None for record in result)

    def test_statistics_record_algorithm_name(self, paper_db):
        result = mine(paper_db, algorithm="uh-mine", min_esup=0.5)
        assert result.statistics.algorithm == "uh-mine"

    def test_top_level_reexports(self):
        assert repro.mine is mine
        assert "uapriori" in repro.algorithm_names()
