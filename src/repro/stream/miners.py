"""Streaming miners: re-emit the frequent set after every window slide.

Two streaming variants cover the paper's two frequent-itemset definitions:

* :class:`StreamingUApriori` — expected-support mining (Definition 2,
  ``esup(X) >= min_esup``) over the resident window, the streaming analogue
  of :class:`~repro.algorithms.uapriori.UApriori`;
* :class:`StreamingDP` — exact probabilistic mining (Definition 4,
  ``Pr[sup(X) >= min_count] > pft``), the streaming analogue of the DP
  miner — the frequent probability is read off the window's merged exact
  PMF instead of re-running the DP recurrence from scratch.

Both run the same level-wise search loop as their batch counterparts —
literally: each slide drives :meth:`repro.core.search.LevelwiseSearch.drive`
under the miner's declarative :class:`~repro.core.search.MinerSpec`
(identical join, downward-closure pruning and threshold conversions) — but
every support statistic comes from the
:class:`~repro.stream.index.IncrementalSupportIndex`: a slide of ``k``
transactions refreshes a registered candidate in ``O(k log W)`` bucket
merges, so the per-slide cost tracks the slide step, not the window size.
Mining the same window contents with the corresponding batch miner returns
the same frequent set (pinned by ``tests/test_stream_mining.py``).

Candidate lifecycle: candidates are registered in the index on first sight
(one ``O(W)`` back-fill) and retained as long as the level-wise search
keeps querying them; candidates that fall off the frontier are dropped
after the slide, so the maintained set tracks the live border of the
frequent lattice.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..algorithms.common import instrumented_run
from ..algorithms.pruning import ChernoffPruner
from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult, MiningStatistics
from ..core.search import LevelwiseSearch, MinerSpec, markov_item_prefilter
from ..core.support import markov_upper_bound, staged_tail_filter
from ..core.thresholds import ExpectedSupportThreshold, ProbabilisticThreshold
from ..core.topk import (
    EVALUATOR_RANKINGS,
    ScoredCandidate,
    TopKResult,
    resolve_evaluator,
)
from ..plan import ensure_plan, materialize_plan, plan_scope
from .index import IncrementalSupportIndex
from .window import SlidingWindow, TransactionStream

__all__ = [
    "BATCH_EQUIVALENTS",
    "StreamingMiner",
    "StreamingUApriori",
    "StreamingDP",
    "StreamingTopK",
    "STREAMING_MINERS",
    "make_streaming_miner",
]

Candidate = Tuple[int, ...]


class StreamingMiner:
    """Shared machinery of the sliding-window miners (abstract).

    Parameters
    ----------
    window:
        Window capacity ``W``, or an existing (possibly pre-filled)
        :class:`~repro.stream.window.SlidingWindow` to adopt — the index is
        back-filled from its resident transactions either way.
    use_fft:
        Forwarded to the support index's PMF merges (exact miners only).
    plan:
        An :class:`~repro.plan.ExecutionPlan` (or plan-spec string /
        mapping) pinned around index construction and every slide, so the
        streaming kernels resolve the same knobs as a batch mine under the
        same plan.  ``plan="auto"`` materializes from the adopted window's
        contents when it is non-empty, otherwise from static defaults.
    """

    #: registry name prefix of the emitted statistics
    name = "stream-base"
    #: which optional statistics trees the index must maintain
    index_options: Dict[str, bool] = {}
    #: slides a candidate stays maintained after it was last queried.  A
    #: frequent-set border that oscillates between slides would otherwise
    #: drop and re-register (O(W) back-fill) the same candidates every
    #: slide; a small grace period turns that churn into cheap idle updates.
    retain_slack = 4

    def __init__(self, window, use_fft: bool = True, plan=None) -> None:
        self.window = (
            window if isinstance(window, SlidingWindow) else SlidingWindow(int(window))
        )
        #: the materialized execution plan every slide runs under
        self.plan = materialize_plan(
            ensure_plan(plan),
            self.window.contents() if len(self.window) else None,
        )
        # PMF maintenance is opted into per candidate (StreamingDP ensures
        # PMFs only for candidates surviving its cheap filters).  The index
        # is built under the plan so its conv_span-dependent tree layout
        # matches the batch kernels under the same plan.
        with plan_scope(self.plan):
            self.index = IncrementalSupportIndex(
                self.window.capacity,
                with_pmfs=False,
                use_fft=use_fft,
                **self.index_options,
            )
        if len(self.window):
            self.index.apply(
                [
                    (slot, units)
                    for slot, units in enumerate(self.window.slot_units())
                    if units is not None
                ]
            )
        #: number of slides applied so far
        self.slides = 0
        self._last_queried: Dict[Candidate, int] = {}
        self._pmf_last_queried: Dict[Candidate, int] = {}

    # -- streaming loop ----------------------------------------------------------------
    def advance(
        self, stream: TransactionStream, step: int
    ) -> Optional[MiningResult]:
        """Slide the window by ``step`` arrivals and re-mine it.

        Returns ``None`` when the stream is exhausted (the window did not
        move); otherwise the frequent set of the new window contents.  The
        result's ``elapsed_seconds`` covers the whole slide — ingest, the
        incremental index maintenance *and* the mining pass — so comparing
        it against a batch re-mine is an honest incremental-vs-recompute
        comparison; the mining pass alone is recorded in
        ``notes["mine_seconds"]``.
        """
        started = time.perf_counter()
        changes = self.window.slide(stream, step)
        if not changes:
            return None
        with plan_scope(self.plan):
            self.index.apply_window_changes(changes)
            self.slides += 1
            result = self.mine_window()
        result.statistics.notes["mine_seconds"] = result.statistics.elapsed_seconds
        result.statistics.elapsed_seconds = time.perf_counter() - started
        return result

    def results(
        self,
        stream: TransactionStream,
        step: int,
        max_slides: Optional[int] = None,
    ) -> Iterator[MiningResult]:
        """Iterate ``advance`` until the stream dries up (or ``max_slides``)."""
        emitted = 0
        while max_slides is None or emitted < max_slides:
            result = self.advance(stream, step)
            if result is None:
                return
            emitted += 1
            yield result

    # -- per-window mining -------------------------------------------------------------
    def mine_window(self) -> MiningResult:
        """Mine the resident window through the incremental index."""
        statistics = MiningStatistics(algorithm=self.name)
        statistics.notes["window_fill"] = float(len(self.window))
        statistics.notes["next_sequence"] = float(self.window.next_sequence)
        statistics.notes["registered_before"] = float(len(self.index))
        self._pmf_keep: List[Candidate] = []
        with instrumented_run(statistics):
            records: List[FrequentItemset] = []
            queried: List[Candidate] = []
            self._mine_window(records, queried, statistics)
        statistics.notes["registered_after"] = float(len(self.index))
        horizon = self.slides - self.retain_slack
        for candidate in queried:
            self._last_queried[candidate] = self.slides
        for candidate in self._pmf_keep:
            self._pmf_last_queried[candidate] = self.slides
        self._last_queried = {
            candidate: slide
            for candidate, slide in self._last_queried.items()
            if slide >= horizon
        }
        self._pmf_last_queried = {
            candidate: slide
            for candidate, slide in self._pmf_last_queried.items()
            if slide >= horizon and candidate in self._last_queried
        }
        self.index.retain(self._last_queried)
        self.index.retain_pmfs(self._pmf_last_queried)
        return MiningResult(records, statistics)

    def _mine_window(
        self,
        records: List[FrequentItemset],
        queried: List[Candidate],
        statistics: MiningStatistics,
    ) -> None:
        raise NotImplementedError

    def spec(self) -> MinerSpec:
        """The slide's declarative spec (kernel-free: scoring reads the index)."""
        raise NotImplementedError

    def _drive(
        self,
        seed_level: List[Candidate],
        evaluate,
        statistics: MiningStatistics,
    ) -> None:
        """Run the engine's levelwise loop over index-backed evaluations.

        The loop itself — apriori join with the maintained sort order,
        downward-closure subset prune, generated/pruned accounting — is
        :meth:`repro.core.search.LevelwiseSearch.drive`, shared verbatim
        with the batch miners; the candidate lifecycle (``index.ensure``
        back-fill and the ``queried`` retention bookkeeping) is folded into
        the head of each miner's ``evaluate`` closure.  The seed level is
        sorted (:meth:`~repro.stream.window.SlidingWindow.active_items`)
        and survivors preserve order, so the driver's presorted-join
        invariant holds.
        """
        LevelwiseSearch(self.spec()).drive(seed_level, evaluate, statistics)


class StreamingUApriori(StreamingMiner):
    """Sliding-window expected-support miner (Definition 2, ``esup >= min_esup``).

    Parameters
    ----------
    window:
        Capacity or adopted :class:`SlidingWindow`.
    min_esup:
        Threshold, as a ratio of the *resident* window size (``0 < x <= 1``)
        or an absolute expected support (``x > 1``) — the same convention
        as the batch miners, re-resolved each slide so a partially filled
        window is held to a proportionally smaller absolute bar.
    track_variance:
        Also report each frequent itemset's support variance.
    """

    name = "stream-uapriori"

    def __init__(
        self,
        window,
        min_esup: float,
        track_variance: bool = False,
        use_fft: bool = True,
        plan=None,
    ) -> None:
        # Definition 2 needs only the expected-support tree; skipping the
        # variance/non-zero merges drops two thirds of the per-slide work.
        self.index_options = {
            "track_variance": bool(track_variance),
            "track_nonzero": False,
        }
        super().__init__(window, use_fft=use_fft, plan=plan)
        self.threshold = ExpectedSupportThreshold(float(min_esup))
        self.track_variance = track_variance

    def spec(self) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="expected",
            threshold=self.threshold,
            seed_mode="statistics",
            track_variance=self.track_variance,
        )

    def _mine_window(
        self,
        records: List[FrequentItemset],
        queried: List[Candidate],
        statistics: MiningStatistics,
    ) -> None:
        min_expected_support = self.threshold.absolute(len(self.window))

        def evaluate(candidates: Sequence[Candidate]) -> List[Candidate]:
            self.index.ensure(candidates)
            queried.extend(candidates)
            expected, variance, _ = self.index.root_stats(candidates)
            survivors: List[Candidate] = []
            for position, candidate in enumerate(candidates):
                value = float(expected[position])
                if value >= min_expected_support:
                    records.append(
                        FrequentItemset(
                            Itemset(candidate),
                            value,
                            float(variance[position]) if variance is not None else None,
                        )
                    )
                    survivors.append(candidate)
            return survivors

        items = [(item,) for item in self.window.active_items()]
        self._drive(evaluate(items), evaluate, statistics)


class StreamingDP(StreamingMiner):
    """Sliding-window exact probabilistic miner (Definition 4, ``Pr > pft``).

    The frequent probability of a candidate is the upper tail of the
    window's merged exact PMF — maintained incrementally by convolution
    instead of re-run through the ``O(W * min_count)`` DP recurrence on
    every slide.

    Parameters
    ----------
    window:
        Capacity or adopted :class:`SlidingWindow`.
    min_sup:
        Minimum support, a ratio of the resident window size or an absolute
        count (converted with the shared
        :class:`~repro.core.thresholds.ProbabilisticThreshold` rounding).
    pft:
        Probabilistic frequentness threshold, strict (``Pr > pft``).
    use_pruning:
        Apply the Chernoff-bound filter before the exact evaluation (the
        batch *DPB* configuration).  Sound — it never changes the frequent
        set — and it keeps hopeless candidates out of PMF maintenance.
    item_prefilter:
        Discard items with ``esup < min_count * pft`` before the level-wise
        search (Markov's inequality; always sound), as the batch miner does.
    use_fft:
        FFT-accelerate PMF merges of segments longer than 64 rows.
    """

    name = "stream-dp"

    def __init__(
        self,
        window,
        min_sup: float,
        pft: float = 0.9,
        use_pruning: bool = True,
        item_prefilter: bool = True,
        use_fft: bool = True,
        plan=None,
    ) -> None:
        super().__init__(window, use_fft=use_fft, plan=plan)
        self.threshold = ProbabilisticThreshold(float(min_sup), float(pft))
        self.use_pruning = use_pruning
        self.item_prefilter = item_prefilter

    def spec(self) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=self.threshold,
            bound_chain=(
                ("occupancy", "markov", "chernoff")
                if self.use_pruning
                else ("occupancy",)
            ),
            item_prefilter=markov_item_prefilter if self.item_prefilter else None,
            seed_mode="evaluate",
        )

    def _mine_window(
        self,
        records: List[FrequentItemset],
        queried: List[Candidate],
        statistics: MiningStatistics,
    ) -> None:
        min_count = self.threshold.min_count(len(self.window))
        pft = self.threshold.pft
        pruner = ChernoffPruner(enabled=self.use_pruning)

        def evaluate(candidates: Sequence[Candidate]) -> List[Candidate]:
            self.index.ensure(candidates)
            queried.extend(candidates)
            expected, variance, max_supports = self.index.root_stats(candidates)
            # Bound-ordered filter-verify, same staging as the batch
            # cascade: occupancy count, then Markov (one division), then
            # Chernoff — the merged-PMF tail is only read for candidates no
            # cheap bound could decide.
            alive = [
                position
                for position in range(len(candidates))
                if max_supports[position] >= min_count
                and not (
                    pruner.enabled
                    and markov_upper_bound(float(expected[position]), min_count)
                    <= pft
                )
                and not pruner.can_prune(float(expected[position]), min_count, pft)
            ]
            if not alive:
                return []
            statistics.exact_evaluations += len(alive)
            alive_candidates = [candidates[position] for position in alive]
            # Only the survivors of the cheap filters carry the cost of PMF
            # maintenance across slides.
            self._pmf_keep.extend(alive_candidates)
            probabilities = self.index.frequent_probabilities(
                alive_candidates, min_count
            )
            survivors: List[Candidate] = []
            for position, probability in zip(alive, probabilities):
                if probability > pft:
                    candidate = candidates[position]
                    records.append(
                        FrequentItemset(
                            Itemset(candidate),
                            float(expected[position]),
                            float(variance[position]),
                            float(probability),
                        )
                    )
                    survivors.append(candidate)
            return survivors

        items = [(item,) for item in self.window.active_items()]
        # The prefilter reads the index before the first evaluate call, so
        # the seed's lifecycle runs here (evaluate re-ensures idempotently).
        self.index.ensure(items)
        queried.extend(items)
        if self.item_prefilter:
            # Markov: Pr[sup >= min_count] <= esup / min_count.
            expected = self.index.expected_supports(items)
            items = [
                item
                for position, item in enumerate(items)
                if expected[position] >= min_count * pft
            ]
        self._drive(evaluate(items), evaluate, statistics)


class StreamingTopK(StreamingMiner):
    """Sliding-window top-k ranked miner served from the incremental index.

    Per slide, the same best-first threshold-raising search as the batch
    :class:`~repro.algorithms.topk.TopKMiner` runs over the resident window
    — but every support statistic is read off the
    :class:`~repro.stream.index.IncrementalSupportIndex` roots (moments for
    the expected-support ranking, merged exact PMF tails for the
    probabilistic one) instead of re-scanning the window, so a slide of
    ``k`` arrivals costs the usual ``O(k log W)`` bucket merges plus the
    pruned search, never a full re-mine.  The per-slide top-k equals batch
    top-k over ``window.contents()`` (bitwise on dyadic streams, within
    convolution round-off otherwise), pinned by
    ``tests/test_stream_topk.py``.

    Parameters
    ----------
    window:
        Capacity or adopted :class:`SlidingWindow`.
    k:
        How many itemsets to emit per slide.
    evaluator:
        ``"esup"`` (Definition 2 ordering) or ``"dp"`` (Definition 4
        ordering; the index serves the exact tail from its merged PMFs).
    min_sup:
        Fixed support level of the probabilistic ranking — a ratio of the
        *resident* window size or an absolute count, re-resolved every
        slide like the threshold streaming miners.
    use_pruning:
        Apply the rising floor and the Chernoff / Markov pre-filters.
    track_variance:
        Also report variances under the expected-support ranking.
    """

    name = "stream-topk"

    def __init__(
        self,
        window,
        k: int,
        evaluator: str = "esup",
        min_sup: Optional[float] = None,
        use_pruning: bool = True,
        track_variance: bool = False,
        use_fft: bool = True,
        plan=None,
    ) -> None:
        self.evaluator = resolve_evaluator(evaluator)
        if self.evaluator not in ("esup", "dp"):
            raise ValueError(
                f"no streaming top-k evaluator {evaluator!r}; the index serves "
                "'esup' (moments) and 'dp' (merged exact PMF tails)"
            )
        self.ranking = EVALUATOR_RANKINGS[self.evaluator]
        if self.ranking == "probability":
            if min_sup is None:
                raise ValueError("the probabilistic ranking requires min_sup")
            self.threshold: Optional[ProbabilisticThreshold] = ProbabilisticThreshold(
                float(min_sup)
            )
        else:
            self.threshold = None
        self.k = int(k)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.use_pruning = use_pruning
        self.track_variance = track_variance
        probabilistic = self.ranking == "probability"
        self.index_options = {
            "track_variance": bool(track_variance) or probabilistic,
            "track_nonzero": probabilistic,
        }
        super().__init__(window, use_fft=use_fft, plan=plan)
        self._last_ranked: List[FrequentItemset] = []
        self._last_min_count: Optional[int] = None
        self._last_statistics: Optional[MiningStatistics] = None

    def spec(self) -> MinerSpec:
        return MinerSpec(
            name=f"{self.name}-{self.evaluator}",
            definition="expected" if self.ranking == "esup" else "probabilistic",
            threshold=self.threshold,
            seed_mode="none",
            track_variance=self.track_variance,
        )

    def ranked_result(self) -> TopKResult:
        """The most recent slide's itemsets in rank order (best first)."""
        return TopKResult(
            list(self._last_ranked),
            self.k,
            self.ranking,
            self._last_min_count,
            statistics=self._last_statistics,
        )

    def _mine_window(
        self,
        records: List[FrequentItemset],
        queried: List[Candidate],
        statistics: MiningStatistics,
    ) -> None:
        min_count: Optional[int] = None
        if self.threshold is not None:
            min_count = self.threshold.min_count(len(self.window))
        self._last_min_count = min_count
        self._last_statistics = statistics
        universe = self.window.active_items()

        if self.ranking == "esup":
            evaluate = self._make_esup_evaluate(queried, statistics)
        else:
            evaluate = self._make_probability_evaluate(
                int(min_count), queried, statistics
            )
        buffer = LevelwiseSearch(self.spec()).best_first(
            universe, evaluate, self.k, use_floor=self.use_pruning, statistics=statistics
        )
        self._last_ranked = buffer.records()
        records.extend(self._last_ranked)
        statistics.notes["k"] = float(self.k)
        statistics.notes["floor"] = buffer.floor

    def _make_esup_evaluate(self, queried: List[Candidate], statistics):
        def evaluate(candidates, buffer):
            floor = buffer.floor if (self.use_pruning and buffer.full) else 0.0
            self.index.ensure(candidates)
            queried.extend(candidates)
            expected, variance, _ = self.index.root_stats(candidates)
            scored: List[Optional[ScoredCandidate]] = []
            for position, candidate in enumerate(candidates):
                score = float(expected[position])
                if score <= 0.0 or score < floor:
                    statistics.candidates_pruned += 1
                    scored.append(None)
                    continue
                record = FrequentItemset(
                    Itemset(candidate),
                    score,
                    float(variance[position]) if variance is not None else None,
                )
                scored.append(ScoredCandidate(candidate, score, score, record))
            return scored

        return evaluate

    def _make_probability_evaluate(
        self, min_count: int, queried: List[Candidate], statistics
    ):
        def evaluate(candidates, buffer):
            floor = buffer.floor if (self.use_pruning and buffer.full) else 0.0
            self.index.ensure(candidates)
            queried.extend(candidates)
            expected, variance, max_supports = self.index.root_stats(candidates)
            scored: List[Optional[ScoredCandidate]] = [None] * len(candidates)
            alive: List[int] = []
            for position in range(len(candidates)):
                if max_supports[position] < min_count:
                    statistics.candidates_pruned += 1
                    continue
                if self.use_pruning and staged_tail_filter(
                    float(expected[position]), min_count, floor
                ):
                    statistics.candidates_pruned += 1
                    continue
                alive.append(position)
            if not alive:
                return scored
            alive_candidates = [candidates[position] for position in alive]
            # Only the cheap-filter survivors pay for PMF maintenance.
            self._pmf_keep.extend(alive_candidates)
            probabilities = self.index.frequent_probabilities(
                alive_candidates, min_count
            )
            statistics.exact_evaluations += len(alive)
            for position, probability in zip(alive, probabilities):
                candidate = candidates[position]
                score = float(probability)
                record = None
                if score > 0.0:
                    record = FrequentItemset(
                        Itemset(candidate),
                        float(expected[position]),
                        float(variance[position]),
                        score,
                    )
                scored[position] = ScoredCandidate(candidate, score, score, record)
            return scored

        return evaluate


#: streaming variants by the batch algorithm they shadow
STREAMING_MINERS: Dict[str, Type[StreamingMiner]] = {
    "uapriori": StreamingUApriori,
    "dp": StreamingDP,
}

#: the registered batch algorithm each streaming variant is equivalent to —
#: the single source of truth for every incremental-vs-batch verification
#: (CLI ``--verify``, the eval runner, the windowed benchmark)
BATCH_EQUIVALENTS: Dict[str, str] = {"uapriori": "uapriori", "dp": "dpb"}


def make_streaming_miner(algorithm: str, window, **options) -> StreamingMiner:
    """Instantiate the streaming variant of ``algorithm`` (``uapriori``/``dp``).

    ``options`` are the variant's constructor arguments (``min_esup`` for
    ``uapriori``; ``min_sup``/``pft`` for ``dp``; plus the shared knobs).
    """
    key = algorithm.lower()
    if key not in STREAMING_MINERS:
        raise KeyError(
            f"no streaming variant of {algorithm!r}; known: {sorted(STREAMING_MINERS)}"
        )
    return STREAMING_MINERS[key](window, **options)
