"""Incremental support statistics over a sliding window: a segment tree of buckets.

The partition-parallel engine (PR 2) established that every support
statistic the miners consume has an exact merge operator over disjoint row
sets (:class:`~repro.core.support.MergeableSupportStats`): expectations and
variances add, maximum attainable supports add, exact PMFs convolve.  That
algebra was built for row *shards*; this module cashes it in for row
*slots* of a sliding window.

:class:`IncrementalSupportIndex` keeps a perfect binary segment tree whose
leaves are the window's ring-buffer slots.  A leaf holds a candidate's
single-transaction statistics for whatever transaction currently occupies
the slot (the identity bucket while the slot is empty); an internal node
holds the merge of its children — addition for the moments and non-zero
counts, convolution for the exact PMFs.  The root is therefore the
candidate's statistics over the whole window.  When the window slides by
``k`` transactions exactly ``k`` leaves change, and re-merging only their
ancestors — every dirty node recomputed once, level by level — refreshes
the root in ``O(k + log W)`` node merges instead of the ``O(W)`` (moments)
or ``O(W * min_count)`` (exact tail) of a from-scratch evaluation.

The maintenance is vectorized across candidates: the moment trees of all
registered candidates live in ``(2 * size, n_candidates)`` arrays (a dirty
level re-merge is one fancy-indexed NumPy addition covering every
candidate), and the PMF trees are stored per level as dense
``(n_candidates, n_nodes, span + 1)`` blocks so a level's dirty
convolutions run as one batched direct convolution (spans up to 64) or one
batched FFT (larger spans — the same cutoff as
:func:`~repro.core.support.convolve_pmfs`).  PMF trees are opt-in per
candidate (:meth:`ensure_pmfs`): the expected-support miners never pay for
them, and the exact miner maintains them only for candidates that survive
its cheap filters.

Two exactness properties hold by construction:

* **rebuild equivalence** — every node is a pure function of its children,
  so incremental maintenance is *bitwise identical* to rebuilding the tree
  from the same slot states (pinned by the stream tests for arbitrary
  probability values);
* **batch agreement** — leaf probabilities multiply in candidate order
  exactly like the row and columnar backends, and all merges are exact
  arithmetic re-orderings of the batch reductions, so streaming decisions
  match batch decisions (bitwise on windows whose probabilities are exactly
  representable; within convolution round-off otherwise).

>>> index = IncrementalSupportIndex(capacity=4)
>>> index.ensure([(1,)])
1
>>> index.apply([(0, {1: 0.5}), (1, {1: 0.5})])
>>> index.expected_supports([(1,)]).tolist()
[1.0]
>>> index.frequent_probabilities([(1,)], 1).tolist()
[0.75]
>>> index.apply([(0, {2: 1.0})])        # slot 0 evicts item 1
>>> index.expected_supports([(1,)]).tolist()
[0.5]
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.support import resolve_conv_span

__all__ = ["IncrementalSupportIndex"]

Candidate = Tuple[int, ...]


class IncrementalSupportIndex:
    """Per-candidate support statistics of a sliding window, maintained in place.

    Parameters
    ----------
    capacity:
        The window capacity ``W`` (one tree leaf per ring-buffer slot).
    with_pmfs:
        Maintain exact PMF trees for *every* registered candidate.  The
        streaming miners leave this off and opt candidates in selectively
        through :meth:`ensure_pmfs`; turning it on is convenient for direct
        index users and the equivalence tests.
    use_fft:
        FFT-accelerate PMF merges of segments longer than the ``conv_span``
        plan knob (default 512 — the measured direct-vs-FFT crossover,
        shared with :func:`repro.core.support.convolve_pmfs`).  FFT
        round-off is below 1e-12 but not zero; disable for bitwise
        agreement with direct convolution on large windows (the DC miner's
        ablation, at quadratic cost).
    conv_span:
        Explicit crossover override; ``None`` resolves the ``conv_span``
        knob through the plan pipeline at construction time.

    The index stores the current slot contents itself (one ``{item:
    probability}`` mapping per slot), so candidates registered mid-stream
    are back-filled from the resident transactions without consulting the
    window.
    """

    def __init__(
        self,
        capacity: int,
        with_pmfs: bool = False,
        use_fft: bool = True,
        track_variance: bool = True,
        track_nonzero: bool = True,
        conv_span: Optional[int] = None,
    ) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"index capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.with_pmfs = with_pmfs
        self.use_fft = use_fft
        # Resolved once at construction: the tree layout (dense-vs-spectral
        # level split below) is fixed for the index's lifetime, so a scoped
        # plan at construction time decides it, matching the batch kernels.
        self.conv_span = resolve_conv_span(conv_span)
        # Expected support is always maintained; the variance and non-zero
        # trees are opt-out so consumers that never ask (the streaming
        # expected-support miner) skip two thirds of the merge work.
        self.track_variance = track_variance
        self.track_nonzero = track_nonzero
        #: tree size: capacity rounded up to a power of two (all leaves on
        #: one level, so dirty sets propagate level by level)
        self.size = 1 << (capacity - 1).bit_length() if capacity > 1 else 1
        self._height = self.size.bit_length() - 1
        self._slots: List[Optional[Mapping[int, float]]] = [None] * capacity

        # -- item compaction: window items -> columns of the slot-probability
        # matrix.  Column 0 is a constant 1.0 (the padding column candidate
        # item lists point at beyond their length).
        self._item_column: Dict[int, int] = {}
        self._slot_probs = np.zeros((capacity, 8), dtype=float)
        self._slot_probs[:, 0] = 1.0

        # -- moment trees, one column per registered candidate.  The tracked
        # statistics live as planes of one stacked array so a level re-merge
        # is a single sliced addition covering every plane; ``expected``,
        # ``variance`` and ``nonzero`` are views into the planes (non-zero
        # counts are exact small integers, safely represented in floats).
        self._columns: Dict[Candidate, int] = {}
        self._free: List[int] = []
        self._n_allocated = 0
        self._cand_items = np.zeros((0, 1), dtype=np.int64)
        self._n_planes = 1 + int(track_variance) + int(track_nonzero)
        self._variance_plane = 1 if track_variance else None
        self._nonzero_plane = (
            1 + int(track_variance) if track_nonzero else None
        )
        self._moments = np.zeros((self._n_planes, 2 * self.size, 0), dtype=float)
        self._bind_moment_views()

        # -- PMF trees, stored per level.  Levels whose node span is within
        # the FFT cutoff hold dense PMF blocks of shape
        # (allocated pmf columns, size >> h, (1 << h) + 1) and merge by
        # direct (exact) convolution.  Above the cutoff (``use_fft`` only),
        # nodes are kept in the *frequency domain*: each node stores its
        # PMF's real FFT at the root transform size, so an upper-level merge
        # is one pointwise complex multiplication — per slide only the dirty
        # cutoff-level nodes pay an rfft, and one batched irfft materialises
        # the root PMFs on query.
        self._pmf_columns: Dict[Candidate, int] = {}
        self._pmf_free: List[int] = []
        self._pmf_allocated = 0
        #: highest level stored as dense PMFs (everything when FFT is off)
        self._dense_height = (
            min(self._height, max(1, self.conv_span).bit_length() - 1)
            if use_fft
            else self._height
        )
        self._pmf_levels: List[np.ndarray] = [
            np.zeros((0, self.size >> h, (1 << h) + 1), dtype=float)
            for h in range(self._dense_height + 1)
        ]
        #: real-FFT length covering the root PMF.  The root polynomial has
        #: at most ``capacity + 1`` coefficients (identity leaves are the
        #: constant 1), so the transform only needs the next power of two
        #: above that — half of ``2 * size`` whenever the capacity is a
        #: power of two.
        self._fft_size = 1 << int(capacity).bit_length()
        if self._fft_size < capacity + 1:  # pragma: no cover - capacity pow2-1
            self._fft_size *= 2
        #: per-level node spectra for levels dense_height .. height
        self._pmf_spectra: Dict[int, np.ndarray] = {
            h: np.zeros(
                (0, self.size >> h, self._fft_size // 2 + 1), dtype=complex
            )
            for h in range(self._dense_height, self._height + 1)
        } if self._dense_height < self._height else {}

        #: lifetime counters (benchmark/test introspection)
        self.leaf_updates = 0
        self.node_merges = 0
        self.pmf_node_merges = 0
        self.registrations = 0

    def _bind_moment_views(self) -> None:
        self.expected = self._moments[0]
        self.variance = (
            self._moments[self._variance_plane]
            if self._variance_plane is not None
            else None
        )
        self.nonzero = (
            self._moments[self._nonzero_plane]
            if self._nonzero_plane is not None
            else None
        )

    # -- candidate registry ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, candidate: Iterable[int]) -> bool:
        return tuple(candidate) in self._columns

    def registered(self) -> List[Candidate]:
        """The registered candidates (no particular order)."""
        return list(self._columns)

    def pmf_registered(self) -> List[Candidate]:
        """The candidates whose exact PMF trees are being maintained."""
        return list(self._pmf_columns)

    def _item_columns(self, candidate: Candidate) -> List[int]:
        columns = []
        for item in candidate:
            column = self._item_column.get(item)
            if column is None:
                column = len(self._item_column) + 1
                if column >= self._slot_probs.shape[1]:
                    grown = np.zeros(
                        (self.capacity, 2 * self._slot_probs.shape[1]), dtype=float
                    )
                    grown[:, : self._slot_probs.shape[1]] = self._slot_probs
                    self._slot_probs = grown
                # Back-fill the new item's column from the resident slots.
                self._slot_probs[:, column] = [
                    units.get(item, 0.0) if units is not None else 0.0
                    for units in self._slots
                ]
                self._item_column[item] = column
            columns.append(column)
        return columns

    def _leaf_probabilities(
        self, slot_rows: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """``p_i(X)`` for the given slots x candidate columns, in candidate order.

        The product is accumulated item by item in candidate order starting
        from 1.0, exactly like the row and columnar backends (an absent
        item's 0.0 annihilates the product, matching their early exit).
        """
        gathered = self._slot_probs[slot_rows]
        probabilities = np.ones((len(slot_rows), len(columns)), dtype=float)
        items = self._cand_items[columns]
        for position in range(items.shape[1]):
            probabilities *= gathered[:, items[:, position]]
        return probabilities

    def _allocate_column(self, candidate: Candidate) -> int:
        if self._free:
            column = self._free.pop()
        else:
            column = self._n_allocated
            self._n_allocated += 1
            if column >= self._moments.shape[2]:
                grown_width = max(8, 2 * (column + 1))
                grown = np.zeros(
                    (self._n_planes, 2 * self.size, grown_width), dtype=float
                )
                grown[:, :, : self._moments.shape[2]] = self._moments
                self._moments = grown
                self._bind_moment_views()
                items_grown = np.zeros(
                    (grown_width, self._cand_items.shape[1]), dtype=np.int64
                )
                items_grown[: self._cand_items.shape[0]] = self._cand_items
                self._cand_items = items_grown
        self._columns[candidate] = column
        return column

    def ensure(self, candidates: Sequence[Iterable[int]]) -> int:
        """Register any unregistered candidates, back-filled from the slots.

        Registration costs one ``O(W)`` tree build per new candidate
        (vectorized across the batch); from then on the candidate rides the
        incremental ``O(k log W)`` slide updates.  Returns the number of
        candidates newly registered.
        """
        fresh: List[int] = []
        for candidate in candidates:
            key = tuple(candidate)
            if key in self._columns:
                continue
            item_columns = self._item_columns(key)
            if len(item_columns) > self._cand_items.shape[1]:
                items_grown = np.zeros(
                    (self._cand_items.shape[0], len(item_columns)), dtype=np.int64
                )
                items_grown[:, : self._cand_items.shape[1]] = self._cand_items
                self._cand_items = items_grown
            column = self._allocate_column(key)
            self._cand_items[column] = 0
            self._cand_items[column, : len(item_columns)] = item_columns
            fresh.append(column)
        if not fresh:
            return 0
        self.registrations += len(fresh)
        columns = np.asarray(fresh, dtype=np.int64)
        slots = np.arange(self.capacity, dtype=np.int64)
        occupied = np.array(
            [units is not None for units in self._slots], dtype=bool
        )
        probabilities = self._leaf_probabilities(slots, columns)
        probabilities[~occupied] = 0.0
        self._set_moment_leaves(slots, columns, probabilities)
        self._rebuild_moments(columns)
        if self.with_pmfs:
            self.ensure_pmfs([tuple(candidate) for candidate in candidates])
        return len(fresh)

    def ensure_pmfs(self, candidates: Sequence[Iterable[int]]) -> int:
        """Opt candidates into exact PMF maintenance (registering if needed).

        Returns the number of candidates whose PMF trees were newly built.
        """
        self.ensure(candidates)
        fresh: List[Tuple[int, int]] = []  # (pmf column, moment column)
        for candidate in candidates:
            key = tuple(candidate)
            if key in self._pmf_columns:
                continue
            if self._pmf_free:
                pmf_column = self._pmf_free.pop()
            else:
                pmf_column = self._pmf_allocated
                self._pmf_allocated += 1
                if pmf_column >= self._pmf_levels[0].shape[0]:
                    grown = max(4, 2 * (pmf_column + 1))
                    self._pmf_levels = [
                        self._grow_pmf(level, grown) for level in self._pmf_levels
                    ]
                    self._pmf_spectra = {
                        h: self._grow_pmf(level, grown)
                        for h, level in self._pmf_spectra.items()
                    }
            self._pmf_columns[key] = pmf_column
            fresh.append((pmf_column, self._columns[key]))
        if not fresh:
            return 0
        pmf_columns = np.asarray([pair[0] for pair in fresh], dtype=np.int64)
        moment_columns = np.asarray([pair[1] for pair in fresh], dtype=np.int64)
        # The moment tree's leaf rows already hold every slot's p_i(X);
        # leaves beyond the capacity stay at probability 0 (identity PMF).
        probabilities = np.zeros((len(fresh), self.size), dtype=float)
        probabilities[:, : self.capacity] = self.expected[
            self.size : self.size + self.capacity
        ][:, moment_columns].T
        self._set_pmf_leaves(
            pmf_columns, np.arange(self.size, dtype=np.int64), probabilities
        )
        for height in range(1, self._dense_height + 1):
            nodes = np.arange(self.size >> height, dtype=np.int64)
            self._pull_pmf_level(height, nodes, pmf_columns)
        if self._pmf_spectra:
            nodes = np.arange(self.size >> self._dense_height, dtype=np.int64)
            self._lift_spectra(nodes, pmf_columns)
            for height in range(self._dense_height + 1, self._height + 1):
                nodes = np.arange(self.size >> height, dtype=np.int64)
                self._pull_spectrum_level(height, nodes, pmf_columns)
        return len(fresh)

    @staticmethod
    def _grow_pmf(level: np.ndarray, n_columns: int) -> np.ndarray:
        if level.shape[0] >= n_columns:
            return level
        grown = np.zeros((n_columns,) + level.shape[1:], dtype=level.dtype)
        grown[: level.shape[0]] = level
        return grown

    def discard(self, candidates: Sequence[Iterable[int]]) -> None:
        """Drop candidates from the index (their trees stop being maintained)."""
        for candidate in candidates:
            key = tuple(candidate)
            column = self._columns.pop(key, None)
            if column is not None:
                self._free.append(column)
            pmf_column = self._pmf_columns.pop(key, None)
            if pmf_column is not None:
                self._pmf_free.append(pmf_column)

    def retain(self, keep: Iterable[Iterable[int]]) -> int:
        """Drop every registered candidate not in ``keep``; return the drop count.

        The streaming miners call this after each slide with the candidates
        they actually queried, so the per-slide update cost tracks the live
        candidate frontier instead of growing monotonically.
        """
        keep_keys = {tuple(candidate) for candidate in keep}
        stale = [key for key in self._columns if key not in keep_keys]
        self.discard(stale)
        self._maybe_compact()
        return len(stale)

    def retain_pmfs(self, keep: Iterable[Iterable[int]]) -> int:
        """Stop PMF maintenance for candidates outside ``keep`` (stay registered)."""
        keep_keys = {tuple(candidate) for candidate in keep}
        stale = [key for key in self._pmf_columns if key not in keep_keys]
        for key in stale:
            self._pmf_free.append(self._pmf_columns.pop(key))
        self._maybe_compact()
        return len(stale)

    def _maybe_compact(self) -> None:
        """Shrink the column spaces when over half of them are free.

        The per-slide updates run over the full allocated width (contiguous
        slices beat per-column gathers), so a large free list would tax
        every subsequent slide; compaction renumbers the live columns into a
        dense prefix.  Column copies are bit-preserving, so compaction never
        perturbs any statistic.
        """
        if len(self._free) > max(4, len(self._columns) // 2):
            order = sorted(self._columns, key=self._columns.__getitem__)
            remap = np.array([self._columns[key] for key in order], dtype=np.int64)
            width = len(order) + max(4, len(order) // 4)  # headroom vs re-grow thrash
            moments = np.zeros(
                (self._n_planes, 2 * self.size, width), dtype=float
            )
            moments[:, :, : len(order)] = self._moments[:, :, remap]
            self._moments = moments
            self._bind_moment_views()
            items = np.zeros((width, self._cand_items.shape[1]), dtype=np.int64)
            items[: len(order)] = self._cand_items[remap]
            self._cand_items = items
            self._columns = {key: position for position, key in enumerate(order)}
            self._free = []
            self._n_allocated = len(order)
        if len(self._pmf_free) > max(4, len(self._pmf_columns) // 2):
            order = sorted(self._pmf_columns, key=self._pmf_columns.__getitem__)
            remap = np.array(
                [self._pmf_columns[key] for key in order], dtype=np.int64
            )
            width = len(order) + max(4, len(order) // 4)

            def shrink(level: np.ndarray) -> np.ndarray:
                compacted = np.zeros((width,) + level.shape[1:], dtype=level.dtype)
                compacted[: len(order)] = level[remap]
                return compacted

            self._pmf_levels = [shrink(level) for level in self._pmf_levels]
            self._pmf_spectra = {
                h: shrink(level) for h, level in self._pmf_spectra.items()
            }
            self._pmf_columns = {
                key: position for position, key in enumerate(order)
            }
            self._pmf_free = []
            self._pmf_allocated = len(order)
        self._maybe_retire_items()

    def _maybe_retire_items(self) -> None:
        """Drop slot-probability columns of items no registered candidate uses.

        Item columns are created on demand and, on a stream with a rotating
        item universe, would otherwise grow without bound — every slot reset
        and leaf-probability gather pays the full lifetime width.  When the
        stale columns outnumber the live ones, rebuild the matrix around the
        items the current candidates reference (values are copied verbatim,
        so no statistic changes).
        """
        if self._columns:
            live = np.fromiter(
                self._columns.values(), dtype=np.int64, count=len(self._columns)
            )
            used = set(np.unique(self._cand_items[live]).tolist()) - {0}
        else:
            used = set()
        if len(self._item_column) - len(used) <= max(16, len(used)):
            return
        keep = [item for item, column in self._item_column.items() if column in used]
        width = 1 + len(keep) + max(4, len(keep) // 4)
        slot_probs = np.zeros((self.capacity, width), dtype=float)
        slot_probs[:, 0] = 1.0
        remap = np.zeros(self._slot_probs.shape[1], dtype=np.int64)
        new_index: Dict[int, int] = {}
        for position, item in enumerate(keep, start=1):
            old = self._item_column[item]
            slot_probs[:, position] = self._slot_probs[:, old]
            remap[old] = position
            new_index[item] = position
        # Retired columns remap to the constant pad column; only free
        # candidate rows can reference them and those are rewritten on
        # allocation.
        self._cand_items = remap[self._cand_items]
        self._slot_probs = slot_probs
        self._item_column = new_index

    # -- tree maintenance --------------------------------------------------------------
    def _set_moment_leaves(
        self, slots: np.ndarray, columns: np.ndarray, probabilities: np.ndarray
    ) -> None:
        rows = self.size + slots
        grid = np.ix_(rows, columns)
        self.expected[grid] = probabilities
        if self._variance_plane is not None:
            self.variance[grid] = probabilities * (1.0 - probabilities)
        if self._nonzero_plane is not None:
            self.nonzero[grid] = probabilities > 0.0

    @staticmethod
    def _node_runs(nodes: np.ndarray) -> List[Tuple[int, int]]:
        """Split sorted node indices into maximal contiguous ``[start, stop)`` runs.

        A slide's dirty slots are consecutive arrivals modulo the capacity,
        so each level's dirty set is one run (two when the ring wraps);
        contiguous runs let the level pulls work on array *slices* instead
        of fancy-index gathers.
        """
        if not len(nodes):
            return []
        breaks = np.nonzero(np.diff(nodes) > 1)[0]
        starts = np.concatenate(([0], breaks + 1))
        stops = np.concatenate((breaks + 1, [len(nodes)]))
        return [(int(nodes[a]), int(nodes[b - 1]) + 1) for a, b in zip(starts, stops)]

    @staticmethod
    def _parent_runs(runs: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """The (merged) runs of the parents of the given node runs."""
        parents = sorted(
            ((start >> 1, ((stop - 1) >> 1) + 1) for start, stop in runs)
        )
        merged: List[Tuple[int, int]] = []
        for start, stop in parents:
            if merged and start <= merged[-1][1]:
                if stop > merged[-1][1]:
                    merged[-1] = (merged[-1][0], stop)
            else:
                merged.append((start, stop))
        return merged

    def _pull_moment_run(self, start: int, stop: int) -> None:
        """Re-merge the contiguous global node range ``[start, stop)`` (all columns).

        One sliced addition over the stacked planes refreshes every tracked
        statistic of every candidate at once.
        """
        self._moments[:, start:stop] = (
            self._moments[:, 2 * start : 2 * stop : 2]
            + self._moments[:, 2 * start + 1 : 2 * stop : 2]
        )
        self.node_merges += (stop - start) * len(self._columns)

    def _rebuild_moments(self, columns: np.ndarray) -> None:
        """Build the given columns' whole moment trees from their leaves.

        The fresh columns are copied into a compact scratch buffer so every
        level merge is a contiguous sliced addition (fancy-gathering full
        levels out of the wide shared array costs more than the rebuild
        itself), then the finished trees are scattered back.
        """
        scratch = np.ascontiguousarray(self._moments[:, :, columns])
        half = self.size >> 1
        while half >= 1:
            scratch[:, half : 2 * half] = (
                scratch[:, 2 * half : 4 * half : 2]
                + scratch[:, 2 * half + 1 : 4 * half : 2]
            )
            half >>= 1
        self._moments[:, :, columns] = scratch
        self.node_merges += (self.size - 1) * len(columns)

    def _set_pmf_leaves(
        self, pmf_columns: np.ndarray, slots: np.ndarray, probabilities: np.ndarray
    ) -> None:
        """``probabilities`` has shape (len(pmf_columns), len(slots))."""
        leaves = self._pmf_levels[0]
        leaves[np.ix_(pmf_columns, slots, [0])] = (1.0 - probabilities)[..., None]
        leaves[np.ix_(pmf_columns, slots, [1])] = probabilities[..., None]

    def _pull_pmf_level(
        self, height: int, nodes, pmf_columns: Optional[np.ndarray]
    ) -> None:
        """Re-merge the dense-PMF nodes at ``height`` for the given tree columns.

        One batched direct convolution (exact, no FFT round-off) covers
        every (candidate, node) pair — dense levels only exist for node
        spans within the FFT cutoff.  ``nodes`` is a list of level-local
        ``(start, stop)`` runs when ``pmf_columns`` is None (the all-columns
        incremental path), otherwise an index array.
        """
        child = self._pmf_levels[height - 1]
        if pmf_columns is None:
            for start, stop in nodes:
                left = child[:, 2 * start : 2 * stop : 2, :]
                right = child[:, 2 * start + 1 : 2 * stop : 2, :]
                self._pmf_levels[height][:, start:stop, :] = self._direct_convolve(
                    left, right
                )
                self.pmf_node_merges += (stop - start) * len(self._pmf_columns)
        else:
            left = child[np.ix_(pmf_columns, 2 * nodes)]
            right = child[np.ix_(pmf_columns, 2 * nodes + 1)]
            self._pmf_levels[height][
                np.ix_(pmf_columns, nodes)
            ] = self._direct_convolve(left, right)
            self.pmf_node_merges += len(nodes) * len(pmf_columns)

    @staticmethod
    def _direct_convolve(left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Exact batched convolution along the last axis (no FFT round-off)."""
        length = left.shape[-1]
        merged = np.zeros(left.shape[:-1] + (2 * length - 1,), dtype=float)
        for offset in range(length):
            merged[..., offset : offset + length] += (
                left[..., offset : offset + 1] * right
            )
        return merged

    def _lift_spectra(
        self, nodes, pmf_columns: Optional[np.ndarray]
    ) -> None:
        """Refresh the cached spectra of dense-height nodes after a PMF change.

        One batched real FFT at the root transform size; the frequency-
        domain levels above combine these by pointwise multiplication.
        ``nodes`` follows the :meth:`_pull_pmf_level` convention.
        """
        dense = self._pmf_levels[self._dense_height]
        spectra = self._pmf_spectra[self._dense_height]
        if pmf_columns is None:
            for start, stop in nodes:
                spectra[:, start:stop, :] = np.fft.rfft(
                    dense[:, start:stop, :], self._fft_size
                )
        else:
            spectra[np.ix_(pmf_columns, nodes)] = np.fft.rfft(
                dense[np.ix_(pmf_columns, nodes)], self._fft_size
            )

    def _pull_spectrum_level(
        self, height: int, nodes, pmf_columns: Optional[np.ndarray]
    ) -> None:
        """Merge frequency-domain nodes: convolution is pointwise multiplication.

        The transform length covers the root PMF, so no level ever wraps
        (circular aliasing needs coefficient count > fft size); ``nodes``
        follows the :meth:`_pull_pmf_level` convention.
        """
        child = self._pmf_spectra[height - 1]
        if pmf_columns is None:
            for start, stop in nodes:
                self._pmf_spectra[height][:, start:stop, :] = (
                    child[:, 2 * start : 2 * stop : 2, :]
                    * child[:, 2 * start + 1 : 2 * stop : 2, :]
                )
                self.pmf_node_merges += (stop - start) * len(self._pmf_columns)
        else:
            merged = (
                child[np.ix_(pmf_columns, 2 * nodes)]
                * child[np.ix_(pmf_columns, 2 * nodes + 1)]
            )
            self._pmf_spectra[height][np.ix_(pmf_columns, nodes)] = merged
            self.pmf_node_merges += len(nodes) * len(pmf_columns)

    # -- slot maintenance --------------------------------------------------------------
    def apply(
        self, changes: Sequence[Tuple[int, Optional[Mapping[int, float]]]]
    ) -> None:
        """Install new slot contents and re-merge every registered candidate.

        ``changes`` holds ``(slot, units)`` pairs — the units of the
        transaction now occupying the slot, or ``None`` to clear it.  This
        is the per-slide entry point: pass the units of each change record a
        :meth:`~repro.stream.window.SlidingWindow.slide` returned.  Dirty
        ancestors are re-merged level by level, each exactly once, across
        all candidates at a time.
        """
        deduped: Dict[int, Optional[Mapping[int, float]]] = {}
        for slot, units in changes:
            if not 0 <= slot < self.capacity:
                raise ValueError(f"slot {slot} outside capacity {self.capacity}")
            deduped[slot] = units
        if not deduped:
            return
        for slot, units in deduped.items():
            self._slots[slot] = units
            row = self._slot_probs[slot]
            row[:] = 0.0
            row[0] = 1.0
            if units is not None:
                for item, probability in units.items():
                    column = self._item_column.get(item)
                    if column is not None:
                        row[column] = probability

        slots = np.sort(
            np.fromiter(deduped.keys(), dtype=np.int64, count=len(deduped))
        )
        occupied = np.array(
            [deduped[int(slot)] is not None for slot in slots], dtype=bool
        )
        if self._columns:
            columns = np.arange(self.expected.shape[1], dtype=np.int64)
            probabilities = self._leaf_probabilities(slots, columns)
            probabilities[~occupied] = 0.0
            # Sorted slots make the leaf rows contiguous runs, so the leaf
            # writes are sliced assignments like the level pulls.
            leaf_runs = self._node_runs(self.size + slots)
            row = 0
            for start, stop in leaf_runs:
                block = probabilities[row : row + stop - start]
                self._moments[0, start:stop] = block
                if self._variance_plane is not None:
                    self._moments[self._variance_plane, start:stop] = block * (
                        1.0 - block
                    )
                if self._nonzero_plane is not None:
                    self._moments[self._nonzero_plane, start:stop] = block > 0.0
                row += stop - start
            self.leaf_updates += len(slots) * len(self._columns)
            if self._pmf_columns:
                moment_columns = np.fromiter(
                    (self._columns[key] for key in self._pmf_columns),
                    dtype=np.int64,
                    count=len(self._pmf_columns),
                )
                pmf_columns = np.fromiter(
                    self._pmf_columns.values(),
                    dtype=np.int64,
                    count=len(self._pmf_columns),
                )
                pmf_probabilities = probabilities[:, moment_columns]
                leaves = self._pmf_levels[0]
                row = 0
                for start, stop in leaf_runs:
                    block = pmf_probabilities[row : row + stop - start].T
                    local = slice(start - self.size, stop - self.size)
                    leaves[pmf_columns, local, 0] = 1.0 - block
                    leaves[pmf_columns, local, 1] = block
                    row += stop - start
            # Dirty ancestors, one level at a time.  The runs hold *global*
            # tree index ranges for the moment arrays; the per-level PMF
            # blocks are addressed by the level-local offset.
            runs = self._parent_runs(leaf_runs)
            height = 1
            while runs and runs[0][0] >= 1:
                for start, stop in runs:
                    self._pull_moment_run(start, stop)
                if self._pmf_columns and height <= self._height:
                    offset = self.size >> height
                    local = [(start - offset, stop - offset) for start, stop in runs]
                    if height <= self._dense_height:
                        self._pull_pmf_level(height, local, None)
                        if self._pmf_spectra and height == self._dense_height:
                            self._lift_spectra(local, None)
                    else:
                        self._pull_spectrum_level(height, local, None)
                runs = self._parent_runs(runs)
                height += 1

    def apply_window_changes(self, changes: Sequence[Tuple]) -> None:
        """Consume :meth:`SlidingWindow.slide` change records directly."""
        self.apply([(slot, admitted.units) for slot, _, admitted in changes])

    def slot_units(self) -> List[Optional[Mapping[int, float]]]:
        """The current per-slot contents (the rebuild-equivalence test input)."""
        return list(self._slots)

    # -- statistics queries ------------------------------------------------------------
    #: the root of the implicit tree layout is node 1 (for ``size == 1``
    #: the single leaf lives at index 1 and is its own root)
    ROOT = 1

    def _column_of(self, candidate: Iterable[int]) -> int:
        key = tuple(candidate)
        column = self._columns.get(key)
        if column is None:
            raise KeyError(f"candidate {key} is not registered; call ensure() first")
        return column

    def expected_supports(self, candidates: Sequence[Iterable[int]]) -> np.ndarray:
        """``esup(X)`` of every candidate over the current window."""
        columns = [self._column_of(candidate) for candidate in candidates]
        return self.expected[self.ROOT, columns].astype(float, copy=True)

    def variances(self, candidates: Sequence[Iterable[int]]) -> np.ndarray:
        """``Var[sup(X)]`` of every candidate over the current window."""
        if not self.track_variance:
            raise ValueError("index was built with track_variance=False")
        columns = [self._column_of(candidate) for candidate in candidates]
        return self.variance[self.ROOT, columns].astype(float, copy=True)

    def max_supports(self, candidates: Sequence[Iterable[int]]) -> np.ndarray:
        """Maximum attainable support (non-zero transaction count) per candidate."""
        if not self.track_nonzero:
            raise ValueError("index was built with track_nonzero=False")
        columns = [self._column_of(candidate) for candidate in candidates]
        return self.nonzero[self.ROOT, columns].astype(np.int64)

    def root_stats(
        self, candidates: Sequence[Iterable[int]]
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """``(expected, variance, max_support)`` of every candidate, in one lookup.

        The per-candidate column resolution is shared across the three
        statistics (the miners query all of them per level); untracked
        statistics come back as ``None``.
        """
        columns = [self._column_of(candidate) for candidate in candidates]
        stats = self._moments[:, self.ROOT, :][:, columns]
        expected = stats[0].astype(float, copy=True)
        variance = (
            stats[self._variance_plane].astype(float, copy=True)
            if self._variance_plane is not None
            else None
        )
        max_support = (
            stats[self._nonzero_plane].astype(np.int64)
            if self._nonzero_plane is not None
            else None
        )
        return expected, variance, max_support

    def frequent_probabilities(
        self, candidates: Sequence[Iterable[int]], min_count: int
    ) -> np.ndarray:
        """Exact ``Pr[sup(X) >= min_count]`` per candidate from the merged PMFs.

        Candidates are opted into PMF maintenance on first query.
        """
        min_count = int(min_count)
        self.ensure_pmfs(candidates)
        pmf_columns = np.array(
            [self._pmf_columns[tuple(candidate)] for candidate in candidates],
            dtype=np.int64,
        )
        roots = self.root_pmfs(pmf_columns)
        results = np.empty(len(candidates), dtype=float)
        for position in range(len(candidates)):
            pmf = roots[position]
            if min_count <= 0:
                results[position] = 1.0
            elif min_count >= len(pmf):
                results[position] = 0.0
            else:
                results[position] = max(0.0, min(1.0, float(pmf[min_count:].sum())))
        return results

    def root_pmfs(self, pmf_columns: np.ndarray) -> np.ndarray:
        """Window-level PMFs of the given PMF columns, one row each.

        Dense trees read the root block directly; frequency-domain trees
        materialise the roots with one batched inverse FFT (clipping the
        round-off negatives, as :func:`convolve_pmfs` does).
        """
        if not self._pmf_spectra:
            return self._pmf_levels[self._height][pmf_columns, 0, :]
        spectra = self._pmf_spectra[self._height][pmf_columns, 0, :]
        pmfs = np.fft.irfft(spectra, self._fft_size)[..., : self.capacity + 1]
        np.clip(pmfs, 0.0, None, out=pmfs)
        return pmfs
