"""Sliding-window streaming layer: live ingest over the static mining stack.

The batch library mines a fixed :class:`~repro.db.database.UncertainDatabase`;
this package mines the *most recent* ``W`` transactions of an unbounded
arrival stream, re-emitting the frequent set after every slide:

* :mod:`repro.stream.window` — :class:`TransactionStream` (arrival-ordered,
  sequence-id-stamped transactions) and :class:`SlidingWindow` (ring-buffer
  window with stable slots; append + evict in O(1), change records per
  slide).
* :mod:`repro.stream.index` — :class:`IncrementalSupportIndex`, a segment
  tree of mergeable support buckets per candidate; a slide re-merges only
  O(k log W) tree nodes (moments by addition, exact PMFs by convolution —
  the :class:`~repro.core.support.MergeableSupportStats` algebra applied to
  window slots instead of row shards).
* :mod:`repro.stream.miners` — :class:`StreamingUApriori` (Definition 2)
  and :class:`StreamingDP` (Definition 4), level-wise Apriori searches fed
  by the index; their per-slide frequent sets match batch-mining the same
  window contents.
"""

from .index import IncrementalSupportIndex
from .miners import (
    BATCH_EQUIVALENTS,
    STREAMING_MINERS,
    StreamingDP,
    StreamingMiner,
    StreamingTopK,
    StreamingUApriori,
    make_streaming_miner,
)
from .window import SlidingWindow, TransactionStream

__all__ = [
    "BATCH_EQUIVALENTS",
    "IncrementalSupportIndex",
    "STREAMING_MINERS",
    "SlidingWindow",
    "StreamingDP",
    "StreamingMiner",
    "StreamingTopK",
    "StreamingUApriori",
    "TransactionStream",
    "make_streaming_miner",
]
