"""Streaming ingest: transaction arrival streams and the sliding window.

The paper's miners consume a static :class:`~repro.db.database.UncertainDatabase`;
this module is the thin layer that turns *arriving* transactions into the
sequence of bounded databases a streaming miner re-mines.  Two objects:

* :class:`TransactionStream` — an iterator of uncertain transactions that
  stamps every arrival with a monotonically increasing **sequence id**.
  Sequence ids are the stable row identity of the streaming layer: a
  transaction keeps its id from arrival to eviction, and the id doubles as
  the ``tid`` of the window's materialised database, so window contents can
  be batch-mined (or diffed) without any re-labelling.
* :class:`SlidingWindow` — a count-based window of the ``W`` most recent
  arrivals, stored in a ring buffer.  Appending transaction ``seq`` lands it
  in **slot** ``seq % W``, evicting the transaction that occupied the slot
  ``W`` arrivals earlier.  Slots are the leaves of the
  :class:`~repro.stream.index.IncrementalSupportIndex` segment tree: a slide
  of ``k`` arrivals reports exactly the ``k`` changed slots, which is all
  the index needs to re-merge its statistics in ``O(k log W)`` node updates.

>>> stream = TransactionStream.from_records([{1: 0.5}, {1: 1.0}, {2: 0.25}])
>>> window = SlidingWindow(capacity=2)
>>> [slot for slot, _, _ in window.slide(stream, 2)]
[0, 1]
>>> [t.tid for t in window.contents()]
[0, 1]
>>> changes = window.slide(stream, 1)   # seq 2 overwrites slot 0 (seq 0)
>>> [(slot, old.tid, new.tid) for slot, old, new in changes]
[(0, 0, 2)]
>>> [t.tid for t in window.contents()]
[1, 2]
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from ..db.database import UncertainDatabase
from ..db.transaction import UncertainTransaction

__all__ = ["TransactionStream", "SlidingWindow", "WindowChange"]

#: one window mutation: (slot, evicted transaction or None, new transaction)
WindowChange = Tuple[int, Optional[UncertainTransaction], UncertainTransaction]


class TransactionStream(Iterator[UncertainTransaction]):
    """An arrival-ordered stream of uncertain transactions.

    Parameters
    ----------
    source:
        Any iterable of :class:`~repro.db.transaction.UncertainTransaction`
        or plain ``{item: probability}`` mappings.  Items are consumed
        lazily, so a stream can wrap a generator of live traffic.
    name:
        Optional human-readable name, carried into the window's
        materialised databases.

    Every emitted transaction is re-stamped with its arrival sequence id as
    ``tid`` (original tids of replayed databases are discarded — a stream
    may replay the same database several times, and sequence ids are what
    keep window tids unique).
    """

    def __init__(
        self,
        source: Iterable[Union[UncertainTransaction, Mapping[int, float]]],
        name: str = "",
    ) -> None:
        self._source = iter(source)
        self.name = name
        #: sequence id of the next arrival
        self.next_sequence = 0

    @classmethod
    def from_database(cls, database: UncertainDatabase, name: str = "") -> "TransactionStream":
        """Replay a database's transactions, in order, as a stream."""
        return cls(database, name=name or database.name)

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[int, float]], name: str = ""
    ) -> "TransactionStream":
        """Stream plain ``{item: probability}`` records."""
        return cls(records, name=name)

    def __iter__(self) -> "TransactionStream":
        return self

    def __next__(self) -> UncertainTransaction:
        record = next(self._source)
        if isinstance(record, UncertainTransaction):
            transaction = UncertainTransaction.restamp(self.next_sequence, record)
        else:
            transaction = UncertainTransaction(self.next_sequence, dict(record))
        self.next_sequence += 1
        return transaction

    def take(self, count: int) -> List[UncertainTransaction]:
        """The next ``count`` arrivals (fewer when the stream is exhausted)."""
        taken: List[UncertainTransaction] = []
        for _ in range(count):
            try:
                taken.append(next(self))
            except StopIteration:
                break
        return taken


class SlidingWindow:
    """The ``W`` most recent transactions of a stream, in a ring buffer.

    Parameters
    ----------
    capacity:
        Window size ``W``.  Until ``W`` transactions have arrived the window
        is partially filled; afterwards every arrival evicts the oldest
        resident transaction.

    The window is the single source of truth for *what* is currently in
    scope; the :class:`~repro.stream.index.IncrementalSupportIndex` holds the
    derived support statistics.  Keeping the two separate lets several
    indexes (e.g. one per miner configuration) share one window.
    """

    def __init__(self, capacity: int) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: List[Optional[UncertainTransaction]] = [None] * capacity
        self._next_sequence = 0
        self._item_counts: Dict[int, int] = {}

    # -- shape -------------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of transactions currently resident (``<= capacity``)."""
        return min(self._next_sequence, self.capacity)

    @property
    def next_sequence(self) -> int:
        """Sequence id of the next arrival (== total arrivals so far)."""
        return self._next_sequence

    @property
    def oldest_sequence(self) -> int:
        """Sequence id of the oldest resident transaction."""
        return max(0, self._next_sequence - self.capacity)

    def slot_of(self, sequence: int) -> int:
        """The ring-buffer slot a sequence id occupies (stable for its lifetime)."""
        return sequence % self.capacity

    def active_items(self) -> List[int]:
        """Sorted items occurring in at least one resident transaction."""
        return sorted(item for item, count in self._item_counts.items() if count > 0)

    def item_count(self, item: int) -> int:
        """Number of resident transactions containing ``item``."""
        return self._item_counts.get(item, 0)

    # -- mutation ----------------------------------------------------------------------
    def append(
        self, transaction: Union[UncertainTransaction, Mapping[int, float]]
    ) -> WindowChange:
        """Admit one arrival, evicting the slot's previous resident (if any).

        Returns the ``(slot, evicted, admitted)`` change record the support
        index consumes.  The admitted transaction is re-stamped with its
        sequence id when the caller hands in a raw mapping or a transaction
        whose tid does not already equal the sequence id.
        """
        units = (
            transaction.units
            if isinstance(transaction, UncertainTransaction)
            else transaction
        )
        sequence = self._next_sequence
        if (
            isinstance(transaction, UncertainTransaction)
            and transaction.tid == sequence
        ):
            admitted = transaction
        else:
            admitted = UncertainTransaction(sequence, dict(units))
        slot = sequence % self.capacity
        evicted = self._slots[slot]
        if evicted is not None:
            for item in evicted.units:
                count = self._item_counts[item] - 1
                if count:
                    self._item_counts[item] = count
                else:
                    del self._item_counts[item]
        for item in admitted.units:
            self._item_counts[item] = self._item_counts.get(item, 0) + 1
        self._slots[slot] = admitted
        self._next_sequence = sequence + 1
        return (slot, evicted, admitted)

    def slide(
        self,
        stream: Iterable[Union[UncertainTransaction, Mapping[int, float]]],
        step: int,
    ) -> List[WindowChange]:
        """Admit up to ``step`` arrivals from ``stream``.

        Returns one change record per admitted transaction — an empty list
        means the stream is exhausted.  When ``step >= capacity`` the whole
        window turns over (every slot appears exactly once among the change
        records' final states, because later arrivals overwrite earlier ones
        slot-stably).
        """
        if step < 1:
            raise ValueError(f"slide step must be >= 1, got {step}")
        iterator = iter(stream)
        if iterator is not stream:
            # A re-iterable (list, database, ...) would silently restart
            # from its first record on every slide, so "exhausted" would
            # never be reached; demand a single-pass iterator instead.
            raise TypeError(
                "slide() consumes a single-pass iterator (e.g. a "
                "TransactionStream); wrap re-iterable sources in "
                "TransactionStream(...) first"
            )
        changes: List[WindowChange] = []
        for _ in range(step):
            try:
                arrival = next(iterator)
            except StopIteration:
                break
            changes.append(self.append(arrival))
        return changes

    # -- views -------------------------------------------------------------------------
    def transactions(self) -> List[UncertainTransaction]:
        """Resident transactions in arrival order (oldest first)."""
        return [
            self._slots[sequence % self.capacity]  # type: ignore[misc]
            for sequence in range(self.oldest_sequence, self._next_sequence)
        ]

    def slot_units(self) -> List[Optional[Dict[int, float]]]:
        """Per-slot unit mappings (``None`` for unfilled slots), in slot order.

        This is the leaf view the support index is built from: entry ``s``
        describes ring-buffer slot ``s`` regardless of arrival order.
        """
        return [
            transaction.units if transaction is not None else None
            for transaction in self._slots
        ]

    def contents(self, name: Optional[str] = None) -> UncertainDatabase:
        """The resident window as a database (arrival order, sequence-id tids).

        This is the object the equivalence tests batch-mine: a streaming
        miner's emitted frequent set must match mining ``contents()`` with
        the corresponding static algorithm.
        """
        return UncertainDatabase(
            self.transactions(),
            name=name if name is not None else f"window[{self.oldest_sequence},{self._next_sequence})",
        )
