"""Deterministic, seeded fault injection: the chaos layer of the stack.

Production behaviour under faults must be *measured*, not assumed — but a
fault that fires at a random moment produces unreproducible test failures.
This module makes every injected fault deterministic: a :class:`FaultPlan`
names injection **sites** and, per site, a firing **rule** that depends
only on the plan seed and the site's probe counter — never on wall-clock
time or object identity.  Running the same workload under the same plan
fires the same faults at the same probes, so a chaos failure reproduces
exactly.

**Sites.**  Each site is a named probe point compiled into the layer it
exercises (the probe is a no-op unless a plan is active):

===================  ==============================================================
``worker-crash``     :class:`~repro.core.parallel.ParallelExecutor` SIGKILLs one
                     pool worker right after dispatching a parallel batch
``task-latency``     the executor sleeps ``latency-seconds`` before a dispatch
``socket-drop``      the server closes a connection (RST) instead of replying
``socket-truncate``  the server sends half the reply bytes, then closes
``store-corrupt``    :meth:`~repro.db.store.ColumnarStore.open` flips one byte
                     of the ``probs.bin`` plane on disk before returning
``registry-evict``   :meth:`~repro.service.registry.DatasetRegistry.checkout`
                     drops every warm payload first (an eviction storm)
===================  ==============================================================

**Plans.**  A plan is a comma-separated spec (the ``REPRO_FAULTS``
environment variable, the ``faults`` :class:`~repro.plan.spec.ExecutionPlan`
knob, or :func:`install_faults`)::

    REPRO_FAULTS="seed=7,worker-crash=@1,socket-drop=0.1"

Per-site triggers are either **probe indices** (``@1`` = the site's first
probe; ``@1+3`` = its first and third) or a **rate** in ``[0, 1]`` — rate
firing hashes ``(seed, site, probe index)`` through BLAKE2, so a 10% rate
fires on the *same* 10% of probes every run.  ``seed=N`` reseeds every
rate, ``latency-seconds=F`` configures the ``task-latency`` sleep.

**State.**  Probe/fired counters live on a process-global
:class:`FaultInjector`, one per distinct active spec, so a long-lived
server accumulates fault counters across requests (surfaced by the
``health``/``stats`` ops).  The resolution order for the active spec is
:func:`install_faults` > the ``faults`` plan knob (scope > ``REPRO_FAULTS``
environment > off).

>>> plan = FaultPlan.parse("seed=3,socket-drop=@2")
>>> injector = FaultInjector(plan)
>>> [injector.probe("socket-drop") for _ in range(3)]
[False, True, False]
>>> injector.counters()["socket-drop"]
{'probes': 3, 'fired': 1}
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "FAULTS_ENV",
    "SITES",
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "active_injector",
    "clear_faults",
    "corrupt_store_plane",
    "fault_counters",
    "fire",
    "faults_active",
    "install_faults",
    "latency_seconds",
]

#: environment variable supplying the default fault plan spec
FAULTS_ENV = "REPRO_FAULTS"

#: the closed vocabulary of injection sites
SITES = (
    "worker-crash",
    "task-latency",
    "socket-drop",
    "socket-truncate",
    "store-corrupt",
    "registry-evict",
)

#: default sleep of a fired ``task-latency`` probe
DEFAULT_LATENCY_SECONDS = 0.05


@dataclass(frozen=True)
class FaultRule:
    """When one site fires: fixed probe indices, a seeded rate, or both."""

    rate: float = 0.0
    probes: FrozenSet[int] = frozenset()

    def fires_at(self, seed: int, site: str, probe: int) -> bool:
        if probe in self.probes:
            return True
        if self.rate <= 0.0:
            return False
        return _hash01(seed, site, probe) < self.rate


def _hash01(seed: int, site: str, probe: int) -> float:
    """A stable hash of ``(seed, site, probe)`` mapped into ``[0, 1)``.

    BLAKE2 rather than ``hash()``: Python string hashing is salted per
    process (PYTHONHASHSEED), which would make rate-based firing
    unreproducible across runs — the one thing this module exists to
    prevent.
    """
    digest = hashlib.blake2b(
        f"{seed}:{site}:{probe}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


def _parse_trigger(site: str, raw: str) -> FaultRule:
    raw = raw.strip()
    if raw.startswith("@"):
        try:
            probes = frozenset(int(token) for token in raw[1:].split("+"))
        except ValueError:
            raise ValueError(
                f"bad probe list {raw!r} for fault site {site!r}: "
                "expected '@i' or '@i+j+...'"
            ) from None
        if any(probe < 1 for probe in probes):
            raise ValueError(f"fault probe indices are 1-based, got {raw!r}")
        return FaultRule(probes=probes)
    try:
        rate = float(raw)
    except ValueError:
        raise ValueError(
            f"bad trigger {raw!r} for fault site {site!r}: "
            "expected a rate in [0, 1] or a '@i' probe list"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate for {site!r} must be in [0, 1], got {rate}")
    return FaultRule(rate=rate)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable fault-injection schedule."""

    seed: int = 0
    latency_seconds: float = DEFAULT_LATENCY_SECONDS
    rules: Mapping[str, FaultRule] = field(default_factory=dict)
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``seed=N,site=trigger,...`` spec (see the module docstring).

        >>> plan = FaultPlan.parse("seed=9,worker-crash=@1,socket-drop=0.25")
        >>> plan.seed, sorted(plan.rules)
        (9, ['socket-drop', 'worker-crash'])
        >>> FaultPlan.parse("teleport=1")
        Traceback (most recent call last):
            ...
        ValueError: unknown fault site 'teleport' (known: latency-seconds, registry-evict, seed, socket-drop, socket-truncate, store-corrupt, task-latency, worker-crash)
        """
        seed = 0
        latency = DEFAULT_LATENCY_SECONDS
        rules: Dict[str, FaultRule] = {}
        # ';' is an alternate token separator so a whole fault spec can ride
        # inside one comma-separated REPRO_PLAN token ("faults=seed=1;...").
        for token in str(spec).replace(";", ",").split(","):
            token = token.strip()
            if not token:
                continue
            name, eq, raw = token.partition("=")
            if not eq and "@" in token:
                # 'site@3' shorthand for 'site=@3'.
                name, _, raw = token.partition("@")
                raw, eq = "@" + raw, "@"
            name = name.strip()
            if not eq:
                raise ValueError(
                    f"bad fault spec token {token!r}: expected 'name=value'"
                )
            if name == "seed":
                seed = int(raw)
            elif name == "latency-seconds":
                latency = float(raw)
                if latency < 0.0:
                    raise ValueError(f"latency-seconds must be >= 0, got {latency}")
            elif name in SITES:
                rules[name] = _parse_trigger(name, raw)
            else:
                known = ", ".join(sorted(SITES + ("seed", "latency-seconds")))
                raise ValueError(f"unknown fault site {name!r} (known: {known})")
        return cls(
            seed=seed, latency_seconds=latency, rules=rules, spec=str(spec).strip()
        )

    def is_empty(self) -> bool:
        return not self.rules


class FaultInjector:
    """Stateful probe counters over one :class:`FaultPlan` (thread-safe).

    One injector instance accumulates counters for the lifetime of its
    plan's activation — across requests, pools and connections — which is
    what makes fault activity observable from the service ``health`` op.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._probes: Dict[str, int] = {site: 0 for site in SITES}
        self._fired: Dict[str, int] = {site: 0 for site in SITES}

    def probe(self, site: str) -> bool:
        """Register one probe of ``site``; True when the fault fires."""
        if site not in self._probes:
            raise ValueError(f"unknown fault site {site!r} (known: {SITES})")
        rule = self.plan.rules.get(site)
        with self._lock:
            self._probes[site] += 1
            count = self._probes[site]
            fired = rule is not None and rule.fires_at(self.plan.seed, site, count)
            if fired:
                self._fired[site] += 1
        return fired

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"probes": n, "fired": m}`` — only sites ever probed."""
        with self._lock:
            return {
                site: {"probes": self._probes[site], "fired": self._fired[site]}
                for site in SITES
                if self._probes[site] or site in self.plan.rules
            }

    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fired.values())


# -- activation ------------------------------------------------------------------------

#: explicitly installed injector (install_faults); beats the resolved knob
_INSTALLED: Optional[FaultInjector] = None
#: per-spec injector cache so knob/env-resolved plans keep their counters
_BY_SPEC: Dict[str, FaultInjector] = {}
_STATE_LOCK = threading.Lock()
#: set in pool worker processes: probes belong to the coordinator — a
#: forked worker inheriting an active plan must never fire faults of its
#: own (its counters would be invisible and its schedule unreproducible)
_DISABLED = False


def disable_in_process() -> None:
    """Turn every probe in this process into a no-op (worker processes)."""
    global _DISABLED
    _DISABLED = True


def install_faults(plan: Union[str, FaultPlan]) -> FaultInjector:
    """Activate ``plan`` process-wide (all threads) until :func:`clear_faults`.

    The explicit activation path for tests and the ``serve --faults`` flag;
    it takes precedence over the ``faults`` plan knob and ``REPRO_FAULTS``.
    """
    global _INSTALLED
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.parse(plan)
    injector = FaultInjector(plan)
    with _STATE_LOCK:
        _INSTALLED = injector
    return injector


def clear_faults() -> None:
    """Deactivate any installed plan and forget per-spec counter state."""
    global _INSTALLED
    with _STATE_LOCK:
        _INSTALLED = None
        _BY_SPEC.clear()


@contextmanager
def faults_active(plan: Union[str, FaultPlan]) -> Iterator[FaultInjector]:
    """Scoped :func:`install_faults` (process-wide while the block runs)."""
    injector = install_faults(plan)
    try:
        yield injector
    finally:
        clear_faults()


def active_injector() -> Optional[FaultInjector]:
    """The injector of the currently active fault plan, or ``None``.

    Explicitly installed plans win; otherwise the ``faults`` knob resolves
    through the standard plan pipeline (scope > ``REPRO_FAULTS`` env), and
    the injector is cached per distinct spec so counters persist across
    calls.  With no plan anywhere this is two dictionary lookups — the
    happy-path overhead of a compiled-in probe site.
    """
    if _DISABLED:
        return None
    installed = _INSTALLED
    if installed is not None:
        return installed
    if not os.environ.get(FAULTS_ENV, "").strip() and not _scoped_spec_possible():
        return None
    from .plan.spec import resolve_knob

    spec = str(resolve_knob("faults") or "").strip()
    if not spec:
        return None
    injector = _BY_SPEC.get(spec)
    if injector is None:
        with _STATE_LOCK:
            injector = _BY_SPEC.get(spec)
            if injector is None:
                injector = FaultInjector(FaultPlan.parse(spec))
                _BY_SPEC[spec] = injector
    return injector


def _scoped_spec_possible() -> bool:
    """Whether a plan scope (or ``REPRO_PLAN``) could carry a faults spec."""
    from .plan.spec import PLAN_ENV, active_plan

    scope = active_plan()
    if scope is not None and scope.faults:
        return True
    return bool(os.environ.get(PLAN_ENV, "").strip())


def fire(site: str) -> bool:
    """Probe ``site`` against the active plan; False when no plan is active."""
    injector = active_injector()
    if injector is None:
        return False
    return injector.probe(site)


def latency_seconds() -> float:
    """The configured ``task-latency`` sleep of the active plan."""
    injector = active_injector()
    if injector is None:
        return 0.0
    return injector.plan.latency_seconds


def inject_latency() -> None:
    """Sleep the configured latency if the ``task-latency`` site fires."""
    injector = active_injector()
    if injector is not None and injector.probe("task-latency"):
        time.sleep(injector.plan.latency_seconds)


def fault_counters() -> Dict[str, Dict[str, int]]:
    """Counters of the active injector (empty dict when faults are off)."""
    injector = active_injector()
    return injector.counters() if injector is not None else {}


# -- deterministic store corruption ----------------------------------------------------


def corrupt_store_plane(
    directory: str, plane: str = "probs", seed: int = 0
) -> Tuple[str, int]:
    """Flip one deterministic byte of a store plane file, in place.

    The corruption tool of the chaos suite and the CI smoke: the byte
    offset is ``_hash01``-derived from ``seed``, so the same call corrupts
    the same byte every run.  Returns ``(path, offset)``.  The manifest is
    untouched — the store still *opens*; only checksum verification
    (:meth:`~repro.db.store.ColumnarStore.verify`) can tell.
    """
    from .db.store import _PLANE_FILES

    filename = _PLANE_FILES.get(plane)
    if filename is None:
        raise ValueError(f"unknown store plane {plane!r} (known: {sorted(_PLANE_FILES)})")
    path = os.path.join(os.fspath(directory), filename)
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty plane file {path!r}")
    offset = int(_hash01(seed, f"corrupt:{plane}", 1) * size) % size
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0xFF]))
    return path, offset


def maybe_corrupt_store(directory: str) -> bool:
    """The ``store-corrupt`` injection site (probed by ``ColumnarStore.open``)."""
    injector = active_injector()
    if injector is None or not injector.probe("store-corrupt"):
        return False
    try:
        corrupt_store_plane(directory, "probs", seed=injector.plan.seed)
    except OSError:
        # Nothing on disk to corrupt (store vanished / never finalized) —
        # the open about to happen will surface that as its own error.
        return False
    return True
