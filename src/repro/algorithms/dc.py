"""DC: divide-and-conquer exact probabilistic frequent miner (Sun et al., 2010).

The support PMF of a candidate is assembled by recursively splitting its
per-transaction probability vector, computing the PMF of each half and
convolving the two halves back together.  With FFT-based convolution the
per-itemset cost drops to O(N log N) (O(N log^2 N) including the recursion),
which is why DC dominates DP in most of the paper's experiments.  Registry
configurations: ``dcb`` (with Chernoff-bound pruning) and ``dcnb`` (without).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.support import SupportEngine, exact_pmf_divide_conquer
from .probabilistic_apriori import ProbabilisticAprioriMiner

__all__ = ["DCMiner"]


class DCMiner(ProbabilisticAprioriMiner):
    """Exact probabilistic frequent miner using divide-and-conquer convolution.

    Parameters
    ----------
    use_pruning:
        Enable the Chernoff-bound filter (the *DCB* configuration); disable
        it for *DCNB*.
    use_fft:
        Use FFT-accelerated convolution for large halves (the paper's DC);
        disabling it falls back to quadratic direct convolution, which is
        the ablation exercised by ``benchmarks/bench_ablation_convolution.py``.
    """

    name = "dc"
    exact = True

    def __init__(
        self,
        use_pruning: bool = True,
        use_fft: bool = True,
        item_prefilter: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            use_pruning=use_pruning,
            item_prefilter=item_prefilter,
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.use_fft = use_fft
        self.name = "dcb" if use_pruning else "dcnb"

    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        if min_count <= 0:
            return 1.0
        if min_count > len(probabilities):
            return 0.0
        pmf = exact_pmf_divide_conquer(np.asarray(probabilities, dtype=float), self.use_fft)
        tail = float(pmf[min_count:].sum())
        return max(0.0, min(1.0, tail))

    def _frequent_probabilities_batch(
        self, engine: SupportEngine, min_count: int
    ) -> np.ndarray:
        # The convolution recursion is inherently per-candidate; the engine
        # path covers the FFT default, the direct-convolution ablation keeps
        # the scalar loop.
        if self.use_fft:
            return engine.frequent_probabilities(min_count, method="divide_conquer")
        return super()._frequent_probabilities_batch(engine, min_count)
