"""Shared Apriori framework for the probabilistic frequent miners.

The exact miners (DP, DC) and the Apriori-based approximate miners
(NDUApriori) differ only in how they turn a candidate's per-transaction
probability vector into a frequent-probability value.  This module houses
the level-wise search they all share:

1. one scan collects the expected support (and variance) of every item;
2. the frequent-probability evaluator decides which items are frequent;
3. level ``k + 1`` candidates come from the Apriori join of the frequent
   ``k``-itemsets, pruned by downward closure (which remains valid under
   Definition 4 because the support of a superset is dominated by the
   support of any subset in every possible world);
4. an optional Chernoff-bound test discards candidates before the expensive
   exact evaluation (the *B* vs *NB* variants of the paper).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult
from ..db.database import UncertainDatabase
from .base import ProbabilisticMiner
from .common import (
    apriori_join,
    has_infrequent_subset,
    instrumented_run,
    item_statistics,
    itemset_probability_vector,
    trim_transactions,
)
from .pruning import ChernoffPruner

__all__ = ["ProbabilisticAprioriMiner"]


class ProbabilisticAprioriMiner(ProbabilisticMiner):
    """Level-wise probabilistic frequent itemset miner (abstract).

    Subclasses provide :meth:`_frequent_probability`, the evaluator applied
    to every surviving candidate.

    Parameters
    ----------
    use_pruning:
        Apply the Chernoff-bound filter before the exact evaluation.  The
        paper's DPB/DCB configurations set this to True, DPNB/DCNB to False.
    item_prefilter:
        Discard items whose expected support is below ``min_count * pft``
        before mining starts.  This cheap, always-sound filter (the frequent
        probability of such an item is necessarily below ``pft`` by Markov's
        inequality) keeps the scaled-down benchmark runs honest without
        changing results; it can be disabled for strict faithfulness.
    """

    #: whether the evaluator returns exact probabilities (drives statistics only)
    exact: bool = True

    def __init__(
        self,
        use_pruning: bool = True,
        item_prefilter: bool = True,
        track_memory: bool = False,
    ) -> None:
        super().__init__(track_memory=track_memory)
        self.use_pruning = use_pruning
        self.item_prefilter = item_prefilter

    # -- evaluator ----------------------------------------------------------------------
    @abstractmethod
    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        """Return ``Pr[sup(X) >= min_count]`` from the non-zero probability vector."""

    # -- statistics helpers ---------------------------------------------------------------
    @staticmethod
    def _moments(probabilities: Sequence[float]) -> Tuple[float, float]:
        expected = 0.0
        variance = 0.0
        for probability in probabilities:
            expected += probability
            variance += probability * (1.0 - probability)
        return expected, variance

    # -- main loop ------------------------------------------------------------------------
    def _mine(self, database: UncertainDatabase, min_count: int, pft: float) -> MiningResult:
        statistics = self._new_statistics()
        pruner = ChernoffPruner(enabled=self.use_pruning)
        with instrumented_run(statistics, self.track_memory):
            records: List[FrequentItemset] = []

            stats_by_item = item_statistics(database)
            statistics.database_scans += 1

            if self.item_prefilter:
                # Markov: Pr[sup >= min_count] <= esup / min_count, so items with
                # esup < min_count * pft can never qualify.
                candidate_items = {
                    item: stats
                    for item, stats in stats_by_item.items()
                    if stats[0] >= min_count * pft
                }
            else:
                candidate_items = dict(stats_by_item)

            transactions = trim_transactions(database, candidate_items)

            current_level: List[Tuple[int, ...]] = []
            for item in sorted(candidate_items):
                expected, variance = candidate_items[item]
                record = self._evaluate_candidate(
                    transactions, (item,), expected, variance, min_count, pft, pruner, statistics
                )
                if record is not None:
                    records.append(record)
                    current_level.append((item,))

            while current_level:
                frequent_keys = set(current_level)
                candidates = [
                    candidate
                    for candidate in apriori_join(sorted(current_level))
                    if not has_infrequent_subset(candidate, frequent_keys)
                ]
                statistics.candidates_generated += len(candidates)
                if not candidates:
                    break
                statistics.database_scans += 1
                next_level: List[Tuple[int, ...]] = []
                for candidate in candidates:
                    record = self._evaluate_candidate(
                        transactions, candidate, None, None, min_count, pft, pruner, statistics
                    )
                    if record is not None:
                        records.append(record)
                        next_level.append(candidate)
                current_level = next_level

            statistics.candidates_pruned += pruner.pruned
            statistics.notes["chernoff_tested"] = float(pruner.tested)
            statistics.notes["chernoff_pruned"] = float(pruner.pruned)

        return MiningResult(records, statistics)

    def _evaluate_candidate(
        self,
        transactions: List[Dict[int, float]],
        candidate: Tuple[int, ...],
        expected: Optional[float],
        variance: Optional[float],
        min_count: int,
        pft: float,
        pruner: ChernoffPruner,
        statistics,
    ) -> Optional[FrequentItemset]:
        """Evaluate one candidate; return its record when probabilistic frequent."""
        probabilities = itemset_probability_vector(transactions, candidate)
        if expected is None or variance is None:
            expected, variance = self._moments(probabilities)

        # A candidate can never occur min_count times if it occurs (with any
        # probability) in fewer than min_count transactions.
        if len(probabilities) < min_count:
            return None
        if pruner.can_prune(expected, min_count, pft):
            return None

        statistics.exact_evaluations += 1
        probability = self._frequent_probability(probabilities, min_count)
        if probability > pft:
            return FrequentItemset(Itemset(candidate), expected, variance, probability)
        return None
