"""Shared evaluator bindings for the probabilistic frequent miners.

The exact miners (DP, DC) and the Apriori-based approximate miners
(NDUApriori) differ only in how they turn a candidate's per-transaction
probability vector into a frequent-probability value.  The levelwise
search itself — seeding, Apriori join, downward-closure pruning (valid
under Definition 4 because the support of a superset is dominated by the
support of any subset in every possible world), the occupancy → Markov →
Chernoff bound chain (the *B* vs *NB* variants of the paper), and the
statistics accounting — lives in :class:`~repro.core.search.LevelwiseSearch`
behind a :class:`~repro.core.search.MinerSpec`; this base class contributes
the spec and the evaluator slot of the
:class:`~repro.core.search.TailEvaluationKernel`.

Every level is evaluated in one batch so subclasses can vectorize their
evaluator across candidates through the
:class:`~repro.core.support.SupportEngine` (the DP recurrence advances the
whole level at once; the Normal evaluator rides on the vectorized moments;
divide-and-conquer remains per-candidate but NumPy-heavy).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.search import MinerSpec, TailEvaluationKernel, markov_item_prefilter
from ..core.support import SupportEngine
from .base import ProbabilisticMiner

__all__ = ["ProbabilisticAprioriMiner"]


class ProbabilisticAprioriMiner(ProbabilisticMiner):
    """Level-wise probabilistic frequent itemset miner (abstract).

    Subclasses provide :meth:`_frequent_probability`, the evaluator applied
    to every surviving candidate, and may override
    :meth:`_frequent_probabilities_batch` with a vectorized variant.

    Parameters
    ----------
    use_pruning:
        Apply the Chernoff-bound filter before the exact evaluation.  The
        paper's DPB/DCB configurations set this to True, DPNB/DCNB to False.
    item_prefilter:
        Discard items whose expected support is below ``min_count * pft``
        before mining starts.  This cheap, always-sound filter (the frequent
        probability of such an item is necessarily below ``pft`` by Markov's
        inequality) keeps the scaled-down benchmark runs honest without
        changing results; it can be disabled for strict faithfulness.
    backend:
        ``"columnar"`` (default) or ``"rows"``; see :class:`MinerBase`.
    workers, shards:
        Partition-parallel knobs; see :class:`MinerBase`.  Shards evaluate
        the level's probability vectors in parallel; workers additionally
        split the exact tail evaluation into candidate chunks.
    """

    #: whether the evaluator returns exact probabilities (drives statistics only)
    exact: bool = True

    def __init__(
        self,
        use_pruning: bool = True,
        item_prefilter: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.use_pruning = use_pruning
        self.item_prefilter = item_prefilter

    # -- evaluator ----------------------------------------------------------------------
    @abstractmethod
    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        """Return ``Pr[sup(X) >= min_count]`` from the non-zero probability vector."""

    def _frequent_probabilities_batch(
        self, engine: SupportEngine, min_count: int
    ) -> np.ndarray:
        """Evaluate a batch of surviving candidates.

        The default loops over :meth:`_frequent_probability`; subclasses
        whose evaluator vectorizes across candidates (DP recurrence, Normal
        moments) override this with one call into the engine.
        """
        return np.array(
            [
                self._frequent_probability(vector, min_count)
                for vector in engine.vectors
            ],
            dtype=float,
        )

    # -- statistics helpers ---------------------------------------------------------------
    @staticmethod
    def _moments(probabilities: Sequence[float]) -> Tuple[float, float]:
        expected = 0.0
        variance = 0.0
        for probability in probabilities:
            expected += probability
            variance += probability * (1.0 - probability)
        return expected, variance

    # -- declarative search ---------------------------------------------------------------
    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=threshold,
            kernel=TailEvaluationKernel(self._frequent_probabilities_batch),
            bound_chain=(
                ("occupancy", "markov", "chernoff")
                if self.use_pruning
                else ("occupancy",)
            ),
            item_prefilter=markov_item_prefilter if self.item_prefilter else None,
            seed_mode="evaluate",
        )

