"""Shared Apriori framework for the probabilistic frequent miners.

The exact miners (DP, DC) and the Apriori-based approximate miners
(NDUApriori) differ only in how they turn a candidate's per-transaction
probability vector into a frequent-probability value.  This module houses
the level-wise search they all share:

1. one scan collects the expected support (and variance) of every item;
2. the frequent-probability evaluator decides which items are frequent;
3. level ``k + 1`` candidates come from the Apriori join of the frequent
   ``k``-itemsets, pruned by downward closure (which remains valid under
   Definition 4 because the support of a superset is dominated by the
   support of any subset in every possible world);
4. an optional Chernoff-bound test discards candidates before the expensive
   exact evaluation (the *B* vs *NB* variants of the paper).

Candidate probability vectors come from a backend-selected
:class:`~repro.algorithms.common.CandidateSource`; every level is evaluated
in one batch so subclasses can vectorize their evaluator across candidates
through the :class:`~repro.core.support.SupportEngine` (the DP recurrence
advances the whole level at once; the Normal evaluator rides on the
vectorized moments; divide-and-conquer remains per-candidate but
NumPy-heavy).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult
from ..core.support import SupportEngine
from ..db.database import UncertainDatabase
from .base import ProbabilisticMiner
from .common import (
    apriori_join,
    has_infrequent_subset,
    instrumented_run,
    item_statistics,
    make_candidate_source,
)
from .pruning import ChernoffPruner

__all__ = ["ProbabilisticAprioriMiner"]


class ProbabilisticAprioriMiner(ProbabilisticMiner):
    """Level-wise probabilistic frequent itemset miner (abstract).

    Subclasses provide :meth:`_frequent_probability`, the evaluator applied
    to every surviving candidate, and may override
    :meth:`_frequent_probabilities_batch` with a vectorized variant.

    Parameters
    ----------
    use_pruning:
        Apply the Chernoff-bound filter before the exact evaluation.  The
        paper's DPB/DCB configurations set this to True, DPNB/DCNB to False.
    item_prefilter:
        Discard items whose expected support is below ``min_count * pft``
        before mining starts.  This cheap, always-sound filter (the frequent
        probability of such an item is necessarily below ``pft`` by Markov's
        inequality) keeps the scaled-down benchmark runs honest without
        changing results; it can be disabled for strict faithfulness.
    backend:
        ``"columnar"`` (default) or ``"rows"``; see :class:`MinerBase`.
    workers, shards:
        Partition-parallel knobs; see :class:`MinerBase`.  Shards evaluate
        the level's probability vectors in parallel; workers additionally
        split the exact tail evaluation into candidate chunks.
    """

    #: whether the evaluator returns exact probabilities (drives statistics only)
    exact: bool = True

    def __init__(
        self,
        use_pruning: bool = True,
        item_prefilter: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.use_pruning = use_pruning
        self.item_prefilter = item_prefilter

    # -- evaluator ----------------------------------------------------------------------
    @abstractmethod
    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        """Return ``Pr[sup(X) >= min_count]`` from the non-zero probability vector."""

    def _frequent_probabilities_batch(
        self, engine: SupportEngine, min_count: int
    ) -> np.ndarray:
        """Evaluate a batch of surviving candidates.

        The default loops over :meth:`_frequent_probability`; subclasses
        whose evaluator vectorizes across candidates (DP recurrence, Normal
        moments) override this with one call into the engine.
        """
        return np.array(
            [
                self._frequent_probability(vector, min_count)
                for vector in engine.vectors
            ],
            dtype=float,
        )

    # -- statistics helpers ---------------------------------------------------------------
    @staticmethod
    def _moments(probabilities: Sequence[float]) -> Tuple[float, float]:
        expected = 0.0
        variance = 0.0
        for probability in probabilities:
            expected += probability
            variance += probability * (1.0 - probability)
        return expected, variance

    # -- main loop ------------------------------------------------------------------------
    def _mine(self, database: UncertainDatabase, min_count: int, pft: float) -> MiningResult:
        statistics = self._new_statistics()
        pruner = ChernoffPruner(enabled=self.use_pruning)
        with instrumented_run(statistics, self.track_memory), self._open_executor(
            database
        ) as executor:
            records: List[FrequentItemset] = []

            # Item statistics always come from the unpartitioned view: the
            # full-column reductions are cheap, and reusing them keeps the
            # frequent-1-item decisions byte-identical for every (workers,
            # shards) configuration.
            stats_by_item = item_statistics(database, backend=self.backend)
            statistics.database_scans += 1

            if self.item_prefilter:
                # Markov: Pr[sup >= min_count] <= esup / min_count, so items with
                # esup < min_count * pft can never qualify.
                candidate_items = {
                    item: stats
                    for item, stats in stats_by_item.items()
                    if stats[0] >= min_count * pft
                }
            else:
                candidate_items = dict(stats_by_item)

            source = make_candidate_source(
                database, candidate_items, self.backend, executor=executor
            )

            current_level = self._evaluate_level(
                source,
                [(item,) for item in sorted(candidate_items)],
                min_count,
                pft,
                pruner,
                statistics,
                records,
                executor,
            )

            while current_level:
                frequent_keys = set(current_level)
                candidates = [
                    candidate
                    for candidate in apriori_join(sorted(current_level))
                    if not has_infrequent_subset(candidate, frequent_keys)
                ]
                statistics.candidates_generated += len(candidates)
                if not candidates:
                    break
                statistics.database_scans += 1
                current_level = self._evaluate_level(
                    source,
                    candidates,
                    min_count,
                    pft,
                    pruner,
                    statistics,
                    records,
                    executor,
                )

            statistics.candidates_pruned += pruner.pruned + int(
                statistics.notes.get("markov_pruned", 0.0)
            )
            statistics.notes["chernoff_tested"] = float(pruner.tested)
            statistics.notes["chernoff_pruned"] = float(pruner.pruned)

        return MiningResult(records, statistics)

    def _evaluate_level(
        self,
        source,
        candidates: List[Tuple[int, ...]],
        min_count: int,
        pft: float,
        pruner: ChernoffPruner,
        statistics,
        records: List[FrequentItemset],
        executor=None,
    ) -> List[Tuple[int, ...]]:
        """Evaluate one level of candidates; return the probabilistic frequent ones.

        The full three-stage cascade: the candidate source kills candidates
        whose bitmap occupancy count is below ``min_count`` before any
        float work (stage 1), the survivors' columns come from the
        cross-level prefix cache (stage 2), and the cheap sound bounds run
        in cost order — occupancy count, then Markov, then Chernoff — so
        the exact (or approximate) tail evaluation only pays for the
        candidates no bound could decide (stage 3).  Every filter is
        one-sided, so the frequent set is identical to the unfiltered
        evaluation.
        """
        if not candidates:
            return []
        vectors = source.level_vectors(candidates, min_count=min_count)
        engine = SupportEngine(vectors)
        expected = engine.expected_supports()
        variance = engine.variances()
        max_supports = engine.nonzero_counts()

        survivors = engine.undecided_after_bounds(
            min_count,
            pft,
            counts=max_supports,
            use_bounds=pruner.enabled,
            pruner=pruner,
            notes=statistics.notes,
        )
        if not survivors:
            return []

        statistics.exact_evaluations += len(survivors)
        batch = SupportEngine(
            [vectors[index] for index in survivors],
            expected=expected[survivors],
            variances=variance[survivors],
            executor=executor,
        )
        probabilities = self._frequent_probabilities_batch(batch, min_count)

        next_level: List[Tuple[int, ...]] = []
        for index, probability in zip(survivors, probabilities):
            if probability > pft:
                candidate = candidates[index]
                records.append(
                    FrequentItemset(
                        Itemset(candidate),
                        float(expected[index]),
                        float(variance[index]),
                        float(probability),
                    )
                )
                next_level.append(candidate)
        return next_level
