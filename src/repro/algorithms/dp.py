"""DP: dynamic-programming exact probabilistic frequent miner (Bernecker et al., 2009).

The frequent probability of a candidate is evaluated with the paper's
recurrence ``Pr_{>=i,j} = Pr_{>=i-1,j-1} * p_j + Pr_{>=i,j-1} * (1 - p_j)``,
which costs O(N * min_count) per itemset — quadratic in the database size
when ``min_count`` scales with N.  Two registry configurations mirror the
paper's experiments: ``dpb`` (with Chernoff-bound pruning) and ``dpnb``
(without).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.support import SupportEngine, frequent_probability_dynamic_programming
from .probabilistic_apriori import ProbabilisticAprioriMiner

__all__ = ["DPMiner"]


class DPMiner(ProbabilisticAprioriMiner):
    """Exact probabilistic frequent miner using dynamic programming.

    Parameters
    ----------
    use_pruning:
        Enable the Chernoff-bound filter (the *DPB* configuration of the
        paper); disable it for *DPNB*.
    """

    name = "dp"
    exact = True

    def __init__(
        self,
        use_pruning: bool = True,
        item_prefilter: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            use_pruning=use_pruning,
            item_prefilter=item_prefilter,
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.name = "dpb" if use_pruning else "dpnb"

    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        return frequent_probability_dynamic_programming(probabilities, min_count)

    def _frequent_probabilities_batch(
        self, engine: SupportEngine, min_count: int
    ) -> np.ndarray:
        # One vectorized DP sweep over the whole level: the recurrence is
        # advanced across the (zero-padded) transaction axis with every
        # candidate updated per step, bitwise identical to the scalar DP.
        return engine.frequent_probabilities(min_count, method="dynamic_programming")
