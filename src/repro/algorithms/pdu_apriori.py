"""PDUApriori: Poisson-distribution-based approximate miner (Wang et al., 2010).

The support of an itemset (Poisson-Binomial) is approximated by a Poisson
variable whose rate equals the expected support.  Because the Poisson upper
tail is monotone in the rate, the probabilistic threshold ``(min_sup, pft)``
can be translated *once* into an equivalent minimum expected support
``lambda*``; mining then reduces to a plain expected-support search with
``min_esup = lambda*``.  The spec says exactly that: a Definition-4
decision rule whose ``search_threshold`` hook performs the translation and
whose score kernel is the shared
:class:`~repro.core.search.ExpectedSupportKernel`.  The algorithm therefore
inherits UApriori's cost profile (fast on dense data with high thresholds)
but — as the paper notes — cannot report per-itemset frequent
probabilities, only membership.
"""

from __future__ import annotations

from typing import Optional

from ..core.search import ExpectedSupportKernel, MinerSpec, SearchContext
from ..core.support import poisson_lambda_for_threshold, poisson_tail_probability
from .base import ProbabilisticMiner

__all__ = ["PDUApriori"]


class PDUApriori(ProbabilisticMiner):
    """Approximate probabilistic miner built on the expected-support kernel.

    Parameters
    ----------
    report_probabilities:
        The original algorithm only returns the itemsets.  When this flag is
        True the result additionally carries the Poisson *estimate* of each
        frequent probability (useful for diagnostics; clearly marked as an
        estimate because the exact value is never computed).
    """

    name = "pdu-apriori"

    def __init__(
        self,
        report_probabilities: bool = False,
        use_decremental_pruning: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.report_probabilities = report_probabilities
        self.use_decremental_pruning = use_decremental_pruning

    @staticmethod
    def _search_threshold(ctx: SearchContext) -> float:
        # Translate (min_count, pft) into the equivalent expected-support
        # threshold under the Poisson approximation.  The raw value is kept
        # for the run note; the search bar is floored at a tiny positive
        # value so lambda* below 1 is not re-interpreted as a ratio anywhere.
        lambda_threshold = poisson_lambda_for_threshold(ctx.min_count, ctx.pft)
        ctx.scratch["poisson_lambda_threshold"] = float(lambda_threshold)
        return max(lambda_threshold, 1e-12)

    def _record_probability(
        self, ctx: SearchContext, expected: float
    ) -> Optional[float]:
        if not self.report_probabilities:
            return None
        return poisson_tail_probability(expected, ctx.min_count)

    @staticmethod
    def _finalize(ctx: SearchContext) -> None:
        ctx.statistics.notes["poisson_lambda_threshold"] = ctx.scratch[
            "poisson_lambda_threshold"
        ]

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=threshold,
            kernel=ExpectedSupportKernel(decremental=self.use_decremental_pruning),
            seed_mode="statistics",
            search_threshold=self._search_threshold,
            record_probability=self._record_probability,
            finalize=self._finalize,
        )
