"""PDUApriori: Poisson-distribution-based approximate miner (Wang et al., 2010).

The support of an itemset (Poisson-Binomial) is approximated by a Poisson
variable whose rate equals the expected support.  Because the Poisson upper
tail is monotone in the rate, the probabilistic threshold ``(min_sup, pft)``
can be translated *once* into an equivalent minimum expected support
``lambda*``; mining then reduces to a plain UApriori run with
``min_esup = lambda*``.  The algorithm therefore inherits UApriori's cost
profile (fast on dense data with high thresholds) but — as the paper notes —
cannot report per-itemset frequent probabilities, only membership.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.results import FrequentItemset, MiningResult
from ..core.support import poisson_lambda_for_threshold, poisson_tail_probability
from ..db.database import UncertainDatabase
from .base import ProbabilisticMiner
from .uapriori import UApriori

__all__ = ["PDUApriori"]


class PDUApriori(ProbabilisticMiner):
    """Approximate probabilistic miner built on the UApriori framework.

    Parameters
    ----------
    report_probabilities:
        The original algorithm only returns the itemsets.  When this flag is
        True the result additionally carries the Poisson *estimate* of each
        frequent probability (useful for diagnostics; clearly marked as an
        estimate because the exact value is never computed).
    """

    name = "pdu-apriori"

    def __init__(
        self,
        report_probabilities: bool = False,
        use_decremental_pruning: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.report_probabilities = report_probabilities
        self.use_decremental_pruning = use_decremental_pruning

    def _mine(self, database: UncertainDatabase, min_count: int, pft: float) -> MiningResult:
        # Translate (min_count, pft) into the equivalent expected-support
        # threshold under the Poisson approximation.
        lambda_threshold = poisson_lambda_for_threshold(min_count, pft)

        engine = UApriori(
            use_decremental_pruning=self.use_decremental_pruning,
            track_variance=False,
            track_memory=self.track_memory,
            backend=self.backend,
            workers=self.workers,
            shards=self.shards,
        )
        # The translated threshold is an *absolute* expected support; call the
        # internal entry point so values below 1 are not re-interpreted as a
        # ratio of the database size.
        inner = engine._mine(database, max(lambda_threshold, 1e-12))

        records: List[FrequentItemset] = []
        for record in inner:
            probability = (
                poisson_tail_probability(record.expected_support, min_count)
                if self.report_probabilities
                else None
            )
            records.append(
                FrequentItemset(
                    record.itemset,
                    record.expected_support,
                    record.variance,
                    probability,
                )
            )

        statistics = inner.statistics
        statistics.algorithm = self.name
        statistics.notes["poisson_lambda_threshold"] = float(lambda_threshold)
        return MiningResult(records, statistics)
