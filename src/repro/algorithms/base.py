"""Abstract miner interfaces.

Two families of public signatures exist, matching the paper's two frequent
itemset definitions:

* :class:`ExpectedSupportMiner` — ``mine(database, min_esup)``
* :class:`ProbabilisticMiner` — ``mine(database, min_sup, pft)``

(the approximate probabilistic algorithms implement the second interface;
they differ from the exact ones only in how they evaluate the frequent
probability).

A concrete miner no longer implements a search: it implements
:meth:`MinerBase.spec`, returning the frozen declarative
:class:`~repro.core.search.MinerSpec` that :class:`LevelwiseSearch`
executes — the score kernel binding, decision rule, bound chain, seed mode
and hooks.  ``mine`` builds the threshold, asks for the spec, and hands
both to the engine under the run's pinned :class:`ExecutionPlan`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Mapping, Optional, Union

from ..core.parallel import ParallelExecutor, resolve_shards, resolve_workers
from ..core.results import MiningResult, MiningStatistics
from ..core.search import LevelwiseSearch, MinerSpec
from ..core.thresholds import (
    ExpectedSupportThreshold,
    ProbabilisticThreshold,
    QueryThresholds,
)
from ..db.database import UncertainDatabase, resolve_backend
from ..plan import ExecutionPlan, ensure_plan, materialize_plan, plan_scope

__all__ = ["MinerBase", "ExpectedSupportMiner", "ProbabilisticMiner"]


class MinerBase(ABC):
    """Shared construction options of every miner.

    Parameters
    ----------
    track_memory:
        When True the run records its peak Python-heap allocation in the
        result statistics (used by the memory-cost experiments).
        ``tracemalloc`` observes the coordinator process only: with
        ``workers > 1`` the allocations made inside pool workers (chunked DP
        matrices, per-shard vectors) are not counted, so memory experiments
        should be run with the default single-process configuration.
    backend:
        Probability-evaluation backend: ``"columnar"`` (vectorized batched
        evaluation through the database's columnar view) or ``"rows"`` (the
        original per-transaction Python loops, kept as the correctness
        oracle).  ``None`` resolves to the database default (columnar).
    workers:
        Worker-process count for the partition-parallel engine.  ``None``
        consults ``REPRO_WORKERS`` (default 1); ``0`` means one worker per
        available CPU.  Results are byte-identical for every worker count.
    shards:
        Row-shard count for the columnar view.  ``None`` consults
        ``REPRO_SHARDS`` and falls back to the worker count, so raising
        ``workers`` automatically engages the partitioned path.  Only
        meaningful on the columnar backend (the row oracle stays serial).
    plan:
        An :class:`~repro.plan.ExecutionPlan` (or a plan-spec string /
        mapping — see :func:`repro.plan.ensure_plan`) carrying any subset
        of the tuning knobs.  Explicit ``backend``/``workers``/``shards``
        arguments still win; the plan fills the rest at the scope tier.
        ``plan="auto"`` defers to the cost-model planner: the plan is
        materialized from the database's statistics when ``mine`` runs,
        and the materialized configuration is pinned for the whole run
        (exposed afterwards as :attr:`plan`).
    """

    #: Registry name; subclasses override.
    name: str = "base"

    def __init__(
        self,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan: Union[None, str, Mapping[str, Any], ExecutionPlan] = None,
    ) -> None:
        self.track_memory = track_memory
        self.plan_request = ensure_plan(plan)
        self._explicit_knobs = {
            "backend": backend,
            "workers": workers,
            "shards": shards,
        }
        # Eager resolution keeps the attributes meaningful before mine();
        # an auto request re-materializes them per database at mine time.
        with plan_scope(self.plan_request):
            self.backend = resolve_backend(backend)
            self.workers = resolve_workers(workers)
            self.shards = resolve_shards(shards, self.workers)
        #: the fully-materialized plan of the latest run (set by mine())
        self.plan: Optional[ExecutionPlan] = None

    @contextmanager
    def _planned(
        self,
        database: UncertainDatabase,
        thresholds: Optional[QueryThresholds] = None,
    ):
        """Materialize and pin this run's :class:`ExecutionPlan`.

        Every knob is resolved once, up front, through the four-tier
        pipeline (explicit constructor arguments > the constructor's plan >
        environment > planner default, with ``plan="auto"`` consulting the
        cost model over ``database``'s statistics and — when given — the
        query ``thresholds``, whose selectivity shapes the planner's
        search-depth estimate) — then the complete plan is pinned with
        :func:`~repro.plan.plan_scope` for the duration of the mine, so
        every downstream consumer (SupportEngine, the columnar kernels, the
        parallel executor) sees one immutable configuration, immune to
        concurrent environment changes or other threads' scopes.
        """
        plan = materialize_plan(
            self.plan_request,
            database,
            explicit=self._explicit_knobs,
            thresholds=thresholds,
        )
        self.plan = plan
        self.backend = plan.backend
        self.workers = plan.workers
        self.shards = plan.shards
        with plan_scope(plan):
            yield plan

    def _new_statistics(self) -> MiningStatistics:
        statistics = MiningStatistics(algorithm=self.name)
        statistics.notes["backend"] = float(self.backend == "columnar")
        statistics.notes["workers"] = float(self.workers)
        statistics.notes["shards"] = float(self.shards)
        if self.plan is not None:
            statistics.notes["bitset"] = float(bool(self.plan.bitset))
            statistics.notes["conv_span"] = float(self.plan.conv_span)
        return statistics

    def _open_executor(self, database: UncertainDatabase) -> ParallelExecutor:
        """Build this run's executor, sharding the database when requested.

        Shard views are attached only on the columnar backend with
        ``shards > 1``; otherwise the executor still distributes candidate
        chunks (the exact tails) when ``workers > 1``.  Callers must
        ``close()`` the executor (or use it as a context manager) so worker
        pools never outlive the run.
        """
        shard_views = None
        if self.backend == "columnar" and self.shards > 1 and len(database) > 0:
            shard_views = database.partition(self.shards).shards
        return ParallelExecutor(self.workers, shard_views=shard_views)

    def _run_search(self, database: UncertainDatabase, threshold: Any) -> MiningResult:
        """Build this miner's spec and execute it under the pinned plan."""
        with self._planned(database, thresholds=threshold.query()):
            spec = self.spec(threshold)
            return LevelwiseSearch(spec, miner=self).run(database)

    @abstractmethod
    def spec(self, threshold: Any) -> MinerSpec:
        """The declarative search specification for one query threshold."""


class ExpectedSupportMiner(MinerBase):
    """A miner that finds expected-support-based frequent itemsets (Definition 2)."""

    def mine(self, database: UncertainDatabase, min_esup: float) -> MiningResult:
        """Return every itemset whose expected support reaches ``min_esup``.

        ``min_esup`` may be a ratio of the database size (``0 < x <= 1``) or
        an absolute expected support (``x > 1``).
        """
        return self._run_search(database, ExpectedSupportThreshold(min_esup))


class ProbabilisticMiner(MinerBase):
    """A miner that finds probabilistic frequent itemsets (Definition 4)."""

    def mine(
        self, database: UncertainDatabase, min_sup: float, pft: float = 0.9
    ) -> MiningResult:
        """Return every itemset with ``Pr[sup >= N * min_sup] > pft``.

        ``min_sup`` may be a ratio or an absolute count; ``pft`` is the
        probabilistic frequentness threshold.
        """
        return self._run_search(database, ProbabilisticThreshold(min_sup, pft))
