"""Sampling-based approximate probabilistic frequent itemset mining.

The paper's related-work list includes a third way to approximate the
frequent probability besides the Poisson and Normal distributions: sample
possible worlds and count (Calders, Garboni, Goethals, PAKDD 2010,
reference [11] of the paper).  Each sampled world is a deterministic
database; the frequent probability of an itemset is estimated as the
fraction of worlds in which its (deterministic) support reaches the
threshold.

The estimator is unbiased and its error is controlled by the number of
worlds (a Hoeffding bound gives ``epsilon = sqrt(ln(2/delta) / (2 * n_worlds))``),
but every itemset costs O(n_worlds * N), so the method is mainly interesting
as an independent cross-check of the analytic miners — which is exactly how
the test-suite uses it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.search import LevelKernel, MinerSpec, SearchContext
from .base import ProbabilisticMiner
from .common import trim_transactions

__all__ = ["WorldSamplingMiner"]


class WorldSamplingMiner(ProbabilisticMiner):
    """Monte-Carlo possible-world miner (Calders et al., PAKDD 2010).

    Parameters
    ----------
    n_worlds:
        Number of possible worlds to sample.  The half-width of the
        (1 - delta) confidence interval on every estimated frequent
        probability is ``sqrt(ln(2/delta) / (2 * n_worlds))``.
    seed:
        Seed of the world sampler (results are deterministic given the seed).
    slack:
        Safety margin subtracted from ``pft`` during candidate expansion so
        that borderline itemsets are not lost to sampling noise; the final
        filter still uses the unmodified ``pft``.
    backend:
        ``"columnar"`` (default) stores the sampled worlds as per-item
        boolean membership matrices and counts supports with vectorized
        AND-reductions; ``"rows"`` keeps the per-world dictionary scan.  The
        random draws are consumed in the same order on both backends, so
        the estimates are identical given the seed.
    """

    name = "world-sampling"

    #: cap on the dense presence storage (one byte per boolean cell); above
    #: it the columnar backend falls back to the row-style world dictionaries
    #: rather than allocating O(items * worlds * transactions) memory
    max_presence_cells: int = 200_000_000

    def __init__(
        self,
        n_worlds: int = 200,
        seed: int = 0,
        slack: float = 0.05,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        # workers/shards are accepted for interface uniformity; the sampler
        # stays serial because its single random stream is part of the
        # deterministic contract (identical estimates for a given seed).
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        if n_worlds <= 0:
            raise ValueError("n_worlds must be positive")
        if not 0.0 <= slack < 1.0:
            raise ValueError("slack must lie in [0, 1)")
        self.n_worlds = n_worlds
        self.seed = seed
        self.slack = slack

    def error_bound(self, delta: float = 0.05) -> float:
        """Hoeffding half-width of the probability estimates at confidence 1 - delta."""
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must lie strictly between 0 and 1")
        return math.sqrt(math.log(2.0 / delta) / (2.0 * self.n_worlds))

    # -- world materialisation ---------------------------------------------------------
    def _sample_worlds(
        self, transactions: List[Dict[int, float]]
    ) -> List[List[Dict[int, float]]]:
        """Materialise ``n_worlds`` deterministic projections of the database.

        Each world is stored in the same ``{item: probability}`` shape as the
        trimmed transactions (with probability 1.0 for the retained items) so
        the support-counting loop below can stay identical to the analytic
        miners' scanning loop.
        """
        rng = np.random.default_rng(self.seed)
        worlds: List[List[Dict[int, float]]] = [[] for _ in range(self.n_worlds)]
        for units in transactions:
            if not units:
                for world in worlds:
                    world.append({})
                continue
            items = list(units.keys())
            probabilities = np.array([units[item] for item in items])
            draws = rng.random((self.n_worlds, len(items))) < probabilities
            for world_index in range(self.n_worlds):
                present = {
                    items[item_index]: 1.0
                    for item_index in np.nonzero(draws[world_index])[0]
                }
                worlds[world_index].append(present)
        return worlds

    def _sample_world_matrices(
        self, transactions: List[Dict[int, float]]
    ) -> Dict[int, np.ndarray]:
        """Materialise the sampled worlds as per-item boolean matrices.

        ``result[item][world, row]`` is True when ``item`` was drawn present
        in transaction ``row`` of world ``world``.  The random draws are made
        transaction by transaction with the exact call sequence of
        :meth:`_sample_worlds`, so both representations describe the same
        worlds for a given seed.
        """
        rng = np.random.default_rng(self.seed)
        n_rows = len(transactions)
        presence: Dict[int, np.ndarray] = {}
        for row, units in enumerate(transactions):
            if not units:
                continue
            items = list(units.keys())
            probabilities = np.array([units[item] for item in items])
            draws = rng.random((self.n_worlds, len(items))) < probabilities
            for item_index, item in enumerate(items):
                matrix = presence.get(item)
                if matrix is None:
                    matrix = np.zeros((self.n_worlds, n_rows), dtype=bool)
                    presence[item] = matrix
                matrix[:, row] = draws[:, item_index]
        return presence

    def _estimated_frequent_probability_columnar(
        self,
        presence: Dict[int, np.ndarray],
        candidate: Tuple[int, ...],
        min_count: int,
    ) -> float:
        """Vectorized support counting: AND the item matrices, count rows per world."""
        contained: Optional[np.ndarray] = None
        for item in candidate:
            matrix = presence.get(item)
            if matrix is None:
                return 0.0
            contained = matrix if contained is None else (contained & matrix)
        if contained is None:
            return 1.0
        supports = contained.sum(axis=1)
        return float(np.count_nonzero(supports >= min_count)) / self.n_worlds

    def _estimated_frequent_probability(
        self,
        worlds: List[List[Dict[int, float]]],
        candidate: Tuple[int, ...],
        min_count: int,
    ) -> float:
        if min_count <= 0:
            # Every world trivially reaches a zero support threshold; the
            # counting loop below would miss worlds with no containing
            # transaction (it only tests after an increment).
            return 1.0
        hits = 0
        for world in worlds:
            support = 0
            for units in world:
                contained = True
                for item in candidate:
                    if item not in units:
                        contained = False
                        break
                if contained:
                    support += 1
                    if support >= min_count:
                        hits += 1
                        break
        return hits / self.n_worlds

    # -- declarative search --------------------------------------------------------------
    def _expansion_bar(self, ctx: SearchContext) -> float:
        # Markov prefilter, identical to the analytic Apriori miners but
        # slack-loosened so borderline items survive sampling noise.
        return ctx.min_count * max(ctx.pft - self.slack, 0.0)

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=threshold,
            kernel=_WorldKernel(self),
            item_prefilter=self._expansion_bar,
            seed_mode="evaluate",
            # The sampler stays serial: its single random stream is part of
            # the deterministic contract (identical estimates for a seed).
            uses_executor=False,
        )


class _WorldKernel(LevelKernel):
    """Score kernel estimating tails as hit fractions over sampled worlds.

    Candidate *expansion* uses the slack-loosened threshold
    ``pft - slack`` (so borderline itemsets are not lost to sampling
    noise); *recording* uses the unmodified ``pft``.  Survivors of a level
    are therefore a superset of the recorded itemsets — the extra breadth
    is the price of the estimator's confidence interval.
    """

    def __init__(self, miner: WorldSamplingMiner) -> None:
        self.miner = miner
        self._estimate = None

    def begin(self, ctx: SearchContext) -> None:
        miner = self.miner
        # Both backends draw worlds transaction by transaction (the same
        # RNG call sequence); they differ only in the world storage and
        # the support-counting loop.
        transactions = trim_transactions(ctx.database, ctx.seed_items)
        presence_cells = len(ctx.seed_items) * miner.n_worlds * len(transactions)
        min_count = ctx.min_count
        if (
            ctx.backend == "columnar"
            and presence_cells <= miner.max_presence_cells
        ):
            presence = miner._sample_world_matrices(transactions)

            def estimate(candidate: Tuple[int, ...]) -> float:
                return miner._estimated_frequent_probability_columnar(
                    presence, candidate, min_count
                )

        else:
            worlds = miner._sample_worlds(transactions)

            def estimate(candidate: Tuple[int, ...]) -> float:
                return miner._estimated_frequent_probability(
                    worlds, candidate, min_count
                )

        self._estimate = estimate
        ctx.statistics.database_scans += 1  # the world-materialisation pass
        ctx.statistics.notes["worlds_sampled"] = float(miner.n_worlds)

    def evaluate(
        self, ctx: SearchContext, candidates: List[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        statistics = ctx.statistics
        expansion_threshold = max(ctx.pft - self.miner.slack, 0.0)
        survivors: List[Tuple[int, ...]] = []
        for candidate in candidates:
            probability = self._estimate(candidate)
            statistics.exact_evaluations += 1
            if probability > expansion_threshold:
                survivors.append(candidate)
            if probability > ctx.pft:
                if len(candidate) == 1:
                    expected, variance = ctx.seed_items[candidate[0]]
                else:
                    expected = ctx.database.expected_support(
                        candidate, backend=ctx.backend
                    )
                    variance = ctx.database.support_variance(
                        candidate, backend=ctx.backend
                    )
                ctx.record(candidate, expected, variance, probability)
        return survivors
