"""NDUH-Mine: Normal-distribution approximation on the UH-Mine framework.

This is the algorithm the paper itself proposes: UH-Mine's depth-first,
head-table based search (which wins on sparse data) is combined with the
Normal approximation of the frequent probability (which needs only the
expected support and the variance, both accumulated in the same pass).

The search is driven by a *sound* expected-support threshold derived from
``(min_sup, pft)``: an itemset whose Normal-approximated frequent
probability exceeds ``pft`` must have
``esup >= (N * min_sup - 0.5) + z_pft * sqrt(Var)``, and since the variance
of a Poisson-Binomial variable never exceeds ``N / 4`` (nor ``esup``), a
conservative lower bound on the expected support of any qualifying itemset
can be pushed into UH-Mine's anti-monotone pruning.  As a spec this is
three hooks over the shared :func:`~repro.algorithms.uh_mine.uh_mine_expand`
expander: ``search_threshold`` derives the bound, the search runs with
variance tracking on, and ``finalize`` applies the Normal test itself to
the surviving candidates.
"""

from __future__ import annotations

import math
from typing import Optional

from scipy.stats import norm

from ..core.results import FrequentItemset
from ..core.search import MinerSpec, SearchContext
from ..core.support import normal_tail_probability
from .base import ProbabilisticMiner
from .uh_mine import uh_mine_expand

__all__ = ["NDUHMine"]


class NDUHMine(ProbabilisticMiner):
    """Approximate probabilistic miner: UH-Mine framework + Normal approximation."""

    name = "nduh-mine"

    def __init__(
        self,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )

    @staticmethod
    def _search_threshold(min_count: int, pft: float, n_transactions: int) -> float:
        """Sound expected-support threshold for the depth-first search.

        ``Phi(z) > pft`` requires ``z > z_pft``, i.e.
        ``esup > (min_count - 0.5) + z_pft * sigma``.  For ``pft >= 0.5`` the
        quantile is non-negative, so ``min_count - 0.5`` is already a valid
        lower bound.  For ``pft < 0.5`` the quantile is negative and the
        bound is loosened by the largest possible standard deviation,
        ``sqrt(N) / 2``.
        """
        z = float(norm.ppf(pft))
        if z >= 0.0:
            return max(0.0, min_count - 0.5)
        return max(0.0, (min_count - 0.5) + z * math.sqrt(n_transactions) / 2.0)

    def _search_bar(self, ctx: SearchContext) -> float:
        threshold = self._search_threshold(ctx.min_count, ctx.pft, ctx.n_transactions)
        ctx.scratch["search_expected_support_threshold"] = float(threshold)
        # The bound is an absolute expected support (possibly below 1 for
        # tiny min_count); the tiny positive floor avoids any
        # ratio-vs-absolute reinterpretation downstream.
        return max(threshold, 1e-12)

    @staticmethod
    def _finalize(ctx: SearchContext) -> None:
        """The Normal test over the search's survivors (seeds included)."""
        filtered = []
        for record in ctx.records:
            variance = record.variance if record.variance is not None else 0.0
            probability = normal_tail_probability(
                record.expected_support, variance, ctx.min_count
            )
            if probability > ctx.pft:
                filtered.append(
                    FrequentItemset(
                        record.itemset, record.expected_support, variance, probability
                    )
                )
        ctx.records[:] = filtered
        ctx.statistics.notes["search_expected_support_threshold"] = ctx.scratch[
            "search_expected_support_threshold"
        ]

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=threshold,
            seed_mode="statistics",
            track_variance=True,
            search_threshold=self._search_bar,
            finalize=self._finalize,
            expander=uh_mine_expand,
        )
