"""The eight representative algorithms of the paper (plus reference baselines).

Importing this package registers every algorithm with
:mod:`repro.core.registry` under the names used throughout the paper's
experiments:

========================  =============  ======================================
Registry name             Family         Algorithm
========================  =============  ======================================
``uapriori``              expected       UApriori (Chui et al.)
``ufp-growth``            expected       UFP-growth (Leung et al.)
``uh-mine``               expected       UH-Mine (Aggarwal et al.)
``dpnb`` / ``dpb``        exact          Dynamic programming, without / with Chernoff pruning
``dcnb`` / ``dcb``        exact          Divide-and-conquer (FFT), without / with Chernoff pruning
``pdu-apriori``           approximate    Poisson approximation on UApriori
``ndu-apriori``           approximate    Normal approximation on UApriori
``nduh-mine``             approximate    Normal approximation on UH-Mine (the paper's proposal)
``world-sampling``        approximate    Possible-world sampling estimator (Calders et al. 2010)
``exhaustive-expected``   expected       Brute-force reference (tests only)
``exhaustive-prob``       exact          Brute-force reference (tests only)
========================  =============  ======================================
"""

from ..core.registry import register_algorithm
from .base import ExpectedSupportMiner, MinerBase, ProbabilisticMiner
from .baseline import (
    ExhaustiveExpectedSupportMiner,
    ExhaustiveProbabilisticMiner,
    possible_world_expected_support,
)
from .dc import DCMiner
from .dp import DPMiner
from .ndu_apriori import NDUApriori
from .nduh_mine import NDUHMine
from .pdu_apriori import PDUApriori
from .pruning import ChernoffPruner
from .sampling_miner import WorldSamplingMiner
from .uapriori import UApriori
from .ufp_growth import UFPGrowth, UFPNode, UFPTree
from .uh_mine import UHMine, build_uh_struct

__all__ = [
    "ChernoffPruner",
    "DCMiner",
    "DPMiner",
    "ExhaustiveExpectedSupportMiner",
    "ExhaustiveProbabilisticMiner",
    "ExpectedSupportMiner",
    "MinerBase",
    "NDUApriori",
    "NDUHMine",
    "PDUApriori",
    "ProbabilisticMiner",
    "UApriori",
    "UFPGrowth",
    "UFPNode",
    "UFPTree",
    "UHMine",
    "WorldSamplingMiner",
    "build_uh_struct",
    "possible_world_expected_support",
]


def _register_all() -> None:
    register_algorithm(
        "uapriori", "expected", UApriori, "Breadth-first expected-support miner (Apriori)"
    )
    register_algorithm(
        "ufp-growth", "expected", UFPGrowth, "UFP-tree based expected-support miner"
    )
    register_algorithm(
        "uh-mine", "expected", UHMine, "UH-Struct based expected-support miner"
    )
    register_algorithm(
        "dpnb",
        "exact",
        lambda **kw: DPMiner(use_pruning=False, **kw),
        "Dynamic programming, no Chernoff pruning",
    )
    register_algorithm(
        "dpb",
        "exact",
        lambda **kw: DPMiner(use_pruning=True, **kw),
        "Dynamic programming with Chernoff pruning",
    )
    register_algorithm(
        "dcnb",
        "exact",
        lambda **kw: DCMiner(use_pruning=False, **kw),
        "Divide-and-conquer (FFT), no Chernoff pruning",
    )
    register_algorithm(
        "dcb",
        "exact",
        lambda **kw: DCMiner(use_pruning=True, **kw),
        "Divide-and-conquer (FFT) with Chernoff pruning",
    )
    register_algorithm(
        "pdu-apriori", "approximate", PDUApriori, "Poisson approximation on UApriori"
    )
    register_algorithm(
        "ndu-apriori", "approximate", NDUApriori, "Normal approximation on UApriori"
    )
    register_algorithm(
        "nduh-mine", "approximate", NDUHMine, "Normal approximation on UH-Mine"
    )
    register_algorithm(
        "world-sampling",
        "approximate",
        WorldSamplingMiner,
        "Monte-Carlo possible-world sampling estimator",
    )
    register_algorithm(
        "exhaustive-expected",
        "expected",
        ExhaustiveExpectedSupportMiner,
        "Brute-force expected-support reference",
    )
    register_algorithm(
        "exhaustive-prob",
        "exact",
        ExhaustiveProbabilisticMiner,
        "Brute-force probabilistic reference",
    )


_register_all()
