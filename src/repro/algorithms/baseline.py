"""Brute-force reference miners used as ground truth in tests.

These implementations trade every optimisation for obviousness:

* :class:`ExhaustiveExpectedSupportMiner` enumerates the power set of the
  frequent items (bounded by ``max_size``) and computes every expected
  support directly from the database.
* :class:`ExhaustiveProbabilisticMiner` does the same but evaluates the
  exact frequent probability of every candidate from the full support PMF.
* :func:`possible_world_expected_support` estimates an expected support by
  Monte-Carlo sampling of possible worlds, tying the analytic machinery
  back to the possible-world semantics.

They are exponential in the number of frequent items and are only meant for
the small databases used by the test-suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.itemset import Itemset
from ..core.search import LevelKernel, MinerSpec, SearchContext
from ..core.support import SupportDistribution
from ..db.database import UncertainDatabase
from ..db.sampling import sample_worlds
from .base import ExpectedSupportMiner, ProbabilisticMiner

__all__ = [
    "ExhaustiveExpectedSupportMiner",
    "ExhaustiveProbabilisticMiner",
    "possible_world_expected_support",
]


class ExhaustiveExpectedSupportMiner(ExpectedSupportMiner):
    """Enumerate every itemset over the frequent items and test it directly."""

    name = "exhaustive-expected"

    def __init__(
        self,
        max_size: int = 6,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        # workers/shards are accepted for interface uniformity; the
        # references deliberately stay single-process and per-candidate.
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.max_size = max_size

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="expected",
            threshold=threshold,
            kernel=_DirectExpectedKernel(),
            seed_mode="none",
            level_generator="exhaustive",
            max_size=self.max_size,
            # The references deliberately stay single-process and
            # per-candidate.
            uses_executor=False,
        )


class ExhaustiveProbabilisticMiner(ProbabilisticMiner):
    """Enumerate every itemset and evaluate its exact frequent probability."""

    name = "exhaustive-probabilistic"

    def __init__(
        self,
        max_size: int = 6,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.max_size = max_size

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="probabilistic",
            threshold=threshold,
            kernel=_DirectProbabilisticKernel(),
            seed_mode="none",
            level_generator="exhaustive",
            max_size=self.max_size,
            uses_executor=False,
        )


class _DirectExpectedKernel(LevelKernel):
    """Per-candidate expected support straight off the database."""

    def evaluate(
        self, ctx: SearchContext, candidates: List[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        survivors: List[Tuple[int, ...]] = []
        for candidate in candidates:
            expected = ctx.database.expected_support(candidate, backend=ctx.backend)
            if expected >= ctx.search_min_esup:
                ctx.record(
                    candidate,
                    expected,
                    ctx.database.support_variance(candidate, backend=ctx.backend),
                )
                survivors.append(candidate)
        return survivors


class _DirectProbabilisticKernel(LevelKernel):
    """Exact frequent probability from the full support PMF, per candidate."""

    def evaluate(
        self, ctx: SearchContext, candidates: List[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        survivors: List[Tuple[int, ...]] = []
        for candidate in candidates:
            distribution = SupportDistribution(
                ctx.database.itemset_probabilities(candidate, backend=ctx.backend)
            )
            probability = distribution.frequent_probability(ctx.min_count)
            ctx.statistics.exact_evaluations += 1
            if probability > ctx.pft:
                ctx.record(
                    candidate,
                    distribution.expected_support,
                    distribution.variance,
                    probability,
                )
                survivors.append(candidate)
        return survivors


def possible_world_expected_support(
    database: UncertainDatabase,
    itemset,
    n_worlds: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the expected support of ``itemset``.

    Averages the deterministic support over sampled possible worlds; used by
    the tests to confirm that the analytic expected support agrees with the
    possible-world semantics.
    """
    itemset = set(Itemset(itemset))
    total = 0
    for world in sample_worlds(database, n_worlds, seed):
        total += sum(1 for items in world if itemset <= set(items))
    return total / n_worlds
