"""Brute-force reference miners used as ground truth in tests.

These implementations trade every optimisation for obviousness:

* :class:`ExhaustiveExpectedSupportMiner` enumerates the power set of the
  frequent items (bounded by ``max_size``) and computes every expected
  support directly from the database.
* :class:`ExhaustiveProbabilisticMiner` does the same but evaluates the
  exact frequent probability of every candidate from the full support PMF.
* :func:`possible_world_expected_support` estimates an expected support by
  Monte-Carlo sampling of possible worlds, tying the analytic machinery
  back to the possible-world semantics.

They are exponential in the number of frequent items and are only meant for
the small databases used by the test-suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult
from ..core.support import SupportDistribution
from ..db.database import UncertainDatabase
from ..db.sampling import sample_worlds
from .base import ExpectedSupportMiner, ProbabilisticMiner
from .common import frequent_items_by_expected_support, instrumented_run, item_statistics

__all__ = [
    "ExhaustiveExpectedSupportMiner",
    "ExhaustiveProbabilisticMiner",
    "possible_world_expected_support",
]


class ExhaustiveExpectedSupportMiner(ExpectedSupportMiner):
    """Enumerate every itemset over the frequent items and test it directly."""

    name = "exhaustive-expected"

    def __init__(
        self,
        max_size: int = 6,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        # workers/shards are accepted for interface uniformity; the
        # references deliberately stay single-process and per-candidate.
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.max_size = max_size

    def _mine(self, database: UncertainDatabase, min_expected_support: float) -> MiningResult:
        statistics = self._new_statistics()
        with instrumented_run(statistics, self.track_memory):
            frequent_items = sorted(
                frequent_items_by_expected_support(
                    database, min_expected_support, backend=self.backend
                )
            )
            records: List[FrequentItemset] = []
            for size in range(1, min(self.max_size, len(frequent_items)) + 1):
                for candidate in combinations(frequent_items, size):
                    statistics.candidates_generated += 1
                    expected = database.expected_support(candidate, backend=self.backend)
                    if expected >= min_expected_support:
                        records.append(
                            FrequentItemset(
                                Itemset(candidate),
                                expected,
                                database.support_variance(candidate, backend=self.backend),
                            )
                        )
        return MiningResult(records, statistics)


class ExhaustiveProbabilisticMiner(ProbabilisticMiner):
    """Enumerate every itemset and evaluate its exact frequent probability."""

    name = "exhaustive-probabilistic"

    def __init__(
        self,
        max_size: int = 6,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.max_size = max_size

    def _mine(self, database: UncertainDatabase, min_count: int, pft: float) -> MiningResult:
        statistics = self._new_statistics()
        with instrumented_run(statistics, self.track_memory):
            items = sorted(item_statistics(database, backend=self.backend))
            records: List[FrequentItemset] = []
            for size in range(1, min(self.max_size, len(items)) + 1):
                for candidate in combinations(items, size):
                    statistics.candidates_generated += 1
                    distribution = SupportDistribution(
                        database.itemset_probabilities(candidate, backend=self.backend)
                    )
                    probability = distribution.frequent_probability(min_count)
                    statistics.exact_evaluations += 1
                    if probability > pft:
                        records.append(
                            FrequentItemset(
                                Itemset(candidate),
                                distribution.expected_support,
                                distribution.variance,
                                probability,
                            )
                        )
        return MiningResult(records, statistics)


def possible_world_expected_support(
    database: UncertainDatabase,
    itemset,
    n_worlds: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the expected support of ``itemset``.

    Averages the deterministic support over sampled possible worlds; used by
    the tests to confirm that the analytic expected support agrees with the
    possible-world semantics.
    """
    itemset = set(Itemset(itemset))
    total = 0
    for world in sample_worlds(database, n_worlds, seed):
        total += sum(1 for items in world if itemset <= set(items))
    return total / n_worlds
