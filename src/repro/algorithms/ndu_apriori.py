"""NDUApriori: Normal-distribution-based approximate miner (Calders et al., 2010).

By the Lyapunov central limit theorem the Poisson-Binomial support converges
to a Normal distribution; the frequent probability of a candidate is
therefore approximated by
``Phi((esup(X) - (N * min_sup - 0.5)) / sqrt(Var(X)))``.  Both moments are
accumulated in the same O(N) scan, so the algorithm has the cost profile of
UApriori while returning (approximate) frequent probabilities for every
result — the property the paper uses to argue that the two frequent-itemset
definitions can be unified.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.support import SupportEngine, normal_tail_probability
from .probabilistic_apriori import ProbabilisticAprioriMiner

__all__ = ["NDUApriori"]


class NDUApriori(ProbabilisticAprioriMiner):
    """Approximate probabilistic miner: Apriori framework + Normal approximation.

    The Chernoff filter is disabled by default — the Normal evaluation is
    already O(N), so the bound would only add overhead without saving any
    asymptotic cost (matching the reference implementation).
    """

    name = "ndu-apriori"
    exact = False

    def __init__(
        self,
        use_pruning: bool = False,
        item_prefilter: bool = True,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            use_pruning=use_pruning,
            item_prefilter=item_prefilter,
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )

    def _frequent_probability(
        self, probabilities: Sequence[float], min_count: int
    ) -> float:
        expected, variance = self._moments(probabilities)
        return normal_tail_probability(expected, variance, min_count)

    def _frequent_probabilities_batch(
        self, engine: SupportEngine, min_count: int
    ) -> np.ndarray:
        # The Normal evaluator only needs the two moments, which the engine
        # already holds as vectorized reductions over the whole level.
        return engine.normal_frequent_probabilities(min_count)
