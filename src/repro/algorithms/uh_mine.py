"""UH-Mine: the uncertain extension of H-Mine (Aggarwal et al., 2009).

UH-Mine keeps the whole (trimmed) database in a flat in-memory structure,
the *UH-Struct*: each transaction is an array of ``(item, probability)``
cells ordered by the global frequent-item order.  Mining is depth-first:
for a prefix itemset ``P`` the algorithm holds a list of *projections* —
``(transaction, position, probability of P in that transaction)`` — and
builds a head table accumulating, for every item appearing to the right of
``position``, the expected support of ``P ∪ {item}``.  Frequent extensions
are recursed into; no conditional trees are ever materialised, which is
why UH-Mine wins on sparse databases and low thresholds in the paper.

The depth-first growth plugs into :class:`~repro.core.search.LevelwiseSearch`
through the spec's ``expander`` hook — :func:`uh_mine_expand` — so the
driver still owns the item-statistics seeding, the thresholds, and the
statistics accounting, and NDUH-Mine (the paper's proposal) reuses the
same expander under its Normal-approximation spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.search import MinerSpec, SearchContext
from ..db.columnar import ColumnarView
from ..db.database import UncertainDatabase
from .base import ExpectedSupportMiner

__all__ = ["UHMine", "build_uh_struct", "build_uh_struct_columnar", "uh_mine_expand"]

#: One stored transaction: a tuple of (item, probability) cells in global order.
UHTransaction = Tuple[Tuple[int, float], ...]
#: One projection: (index of the transaction in the UH-Struct, position after
#: which extensions may start, probability of the current prefix).
Projection = Tuple[int, int, float]


def build_uh_struct(
    database: UncertainDatabase, item_order: Dict[int, int]
) -> List[UHTransaction]:
    """Project the database onto the ordered frequent items (the UH-Struct)."""
    struct: List[UHTransaction] = []
    for transaction in database:
        cells = [
            (item, probability)
            for item, probability in transaction.units.items()
            if item in item_order
        ]
        if not cells:
            continue
        cells.sort(key=lambda cell: item_order[cell[0]])
        struct.append(tuple(cells))
    return struct


def build_uh_struct_columnar(
    view: ColumnarView, item_order: Dict[int, int]
) -> List[UHTransaction]:
    """Build the UH-Struct from the columnar view.

    Walking the item columns in global order appends each transaction's
    cells already sorted, so the per-transaction sort of the row builder
    disappears; the output is identical.
    """
    return [
        tuple(cells) for cells in view.rows_as_ordered_units(item_order) if cells
    ]


def uh_mine_expand(ctx: SearchContext) -> None:
    """The UH-Mine depth-first growth (a :class:`MinerSpec` ``expander``).

    Builds the UH-Struct over the driver's seed items (one database scan)
    and starts one depth-first branch per seed item in global frequent-item
    order.  Head-table extensions are charged to ``candidates_generated``;
    rejections to ``candidates_pruned``.
    """
    frequent_items = ctx.seed_items
    if not frequent_items:
        return
    statistics = ctx.statistics

    item_order = {
        item: rank
        for rank, (item, _) in enumerate(
            sorted(frequent_items.items(), key=lambda kv: (-kv[1][0], kv[0]))
        )
    }
    if ctx.backend == "columnar":
        if ctx.executor.n_shards > 1:
            # Each shard yields its rows' ordered unit lists; shard order is
            # row order, so the concatenation matches the serial struct
            # exactly.
            struct: List[UHTransaction] = []
            for shard_units in ctx.executor.map_shard_method(
                "rows_as_ordered_units", item_order
            ):
                struct.extend(tuple(cells) for cells in shard_units if cells)
        else:
            struct = build_uh_struct_columnar(ctx.database.columnar(), item_order)
    else:
        struct = build_uh_struct(ctx.database, item_order)
    statistics.database_scans += 1
    statistics.notes["uh_struct_cells"] = float(sum(len(cells) for cells in struct))

    # The initial projections: every item starts its own depth-first branch.
    for item in sorted(frequent_items, key=lambda i: item_order[i]):
        projections: List[Projection] = []
        for index, cells in enumerate(struct):
            for position, (cell_item, probability) in enumerate(cells):
                if cell_item == item:
                    projections.append((index, position, probability))
                    break
                if item_order[cell_item] > item_order[item]:
                    break
        _expand_prefix(ctx, struct, (item,), projections, item_order)


def _expand_prefix(
    ctx: SearchContext,
    struct: List[UHTransaction],
    prefix: Tuple[int, ...],
    projections: List[Projection],
    item_order: Dict[int, int],
) -> None:
    """Recursively extend ``prefix`` by items occurring after its projections."""
    # Head table for this prefix: item -> [expected support, variance].
    head: Dict[int, List[float]] = {}
    for index, position, prefix_probability in projections:
        cells = struct[index]
        for cell_item, probability in cells[position + 1 :]:
            joint = prefix_probability * probability
            entry = head.get(cell_item)
            if entry is None:
                head[cell_item] = [joint, joint * (1.0 - joint)]
            else:
                entry[0] += joint
                entry[1] += joint * (1.0 - joint)

    statistics = ctx.statistics
    bar = ctx.search_min_esup
    track_variance = ctx.spec.track_variance
    statistics.candidates_generated += len(head)
    for item in sorted(head, key=lambda i: item_order[i]):
        expected, variance = head[item]
        if expected < bar:
            statistics.candidates_pruned += 1
            continue
        extended = prefix + (item,)
        ctx.record(extended, expected, variance if track_variance else None)
        # Build the projections of the extended prefix.
        extended_projections: List[Projection] = []
        for index, position, prefix_probability in projections:
            cells = struct[index]
            for offset in range(position + 1, len(cells)):
                cell_item, probability = cells[offset]
                if cell_item == item:
                    extended_projections.append(
                        (index, offset, prefix_probability * probability)
                    )
                    break
                if item_order[cell_item] > item_order[item]:
                    break
        _expand_prefix(ctx, struct, extended, extended_projections, item_order)


class UHMine(ExpectedSupportMiner):
    """Depth-first expected-support miner over the UH-Struct.

    Parameters
    ----------
    track_variance:
        Also accumulate the support variance of every frequent itemset.
        This is the hook the paper's NDUH-Mine proposal relies on: variance
        costs one extra multiply-add per visited cell, keeping the O(N)
        per-itemset complexity intact.
    workers, shards:
        Partition-parallel knobs (see :class:`MinerBase`).  The UH-Struct
        is assembled from per-shard row ranges — concatenating them in
        shard order reproduces the serial struct exactly — while the
        depth-first search itself stays sequential (it walks one shared
        in-memory structure).
    """

    name = "uh-mine"

    def __init__(
        self,
        track_variance: bool = False,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.track_variance = track_variance

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="expected",
            threshold=threshold,
            seed_mode="statistics",
            track_variance=self.track_variance,
            expander=uh_mine_expand,
        )
