"""Candidate pruning for probabilistic frequent itemset mining.

The only pruning technique the paper evaluates is the Chernoff-bound test
(Lemma 1): the bound is an upper bound on the frequent probability that can
be computed from the expected support alone in O(N), so candidates whose
bound already falls below ``pft`` can be discarded without ever paying the
O(N log N) / O(N^2 · min_sup) exact computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.support import chernoff_upper_bound

__all__ = ["ChernoffPruner"]


@dataclass
class ChernoffPruner:
    """Stateful Chernoff-bound filter with prune accounting.

    Parameters
    ----------
    enabled:
        When False the pruner never rejects anything (the *NB* — "no bound"
        — variants of the exact miners).
    """

    enabled: bool = True
    tested: int = 0
    pruned: int = 0
    _last_bound: float = field(default=1.0, repr=False)

    def can_prune(self, expected_support: float, min_count: int, pft: float) -> bool:
        """Return True when the candidate is certainly not probabilistic frequent.

        The test is one-sided: ``True`` is definitive (the Chernoff bound on
        ``Pr[sup >= min_count]`` is below ``pft``), ``False`` only means the
        exact computation is still required.
        """
        if not self.enabled:
            return False
        return self.register(chernoff_upper_bound(expected_support, min_count), pft)

    def register(self, bound: float, pft: float) -> bool:
        """Account for one precomputed bound (the batched-evaluation entry point).

        The level-wise miners compute the bounds of a whole candidate level
        at once through the support engine and feed them here so the
        tested/pruned accounting matches the per-candidate path exactly.
        """
        if not self.enabled:
            return False
        self.tested += 1
        self._last_bound = float(bound)
        if self._last_bound <= pft:
            self.pruned += 1
            return True
        return False

    @property
    def last_bound(self) -> float:
        """The bound computed by the most recent :meth:`can_prune` call."""
        return self._last_bound
