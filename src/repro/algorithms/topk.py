"""Batch top-k ranked miner: threshold-raising search on the batched engine.

:class:`TopKMiner` runs the best-first levelwise search of
:func:`repro.core.topk.run_topk_search` over the same batched evaluation
substrate the threshold miners use — a backend-selected
:class:`~repro.algorithms.common.CandidateSource` feeding a
:class:`~repro.core.support.SupportEngine` (columnar or row vectors,
per-shard fan-out through the :class:`~repro.core.parallel.ParallelExecutor`
when sharded, candidate-chunked exact tails when workers are attached).
Scores therefore come out bitwise identical to the corresponding threshold
miner's, which is what pins ``mine_topk(k)`` byte-identical to
mine-everything-then-truncate.

Five evaluators cover the registered miner families:

=============  ============  ==================================================
Evaluator      Ranking       Scoring kernel (same as threshold miner)
=============  ============  ==================================================
``esup``       Definition 2  expected support (UApriori / UFP-growth / UH-Mine)
``dp``         Definition 4  exact DP recurrence (DPB / DPNB)
``dc``         Definition 4  exact divide-and-conquer PMFs (DCB / DCNB)
``normal``     Definition 4  Normal approximation (NDUApriori / NDUH-Mine)
``poisson``    Definition 4  Poisson approximation (PDUApriori)
=============  ============  ==================================================

Pruning mirrors threshold mining with the buffer floor in place of the
threshold: the anti-monotone bound cuts subtrees whose best possible score
falls strictly below the running k-th best, and the probabilistic
evaluators additionally apply the Chernoff and Markov filters before paying
for an exact tail.  The Normal approximation is *not* anti-monotone in the
itemset (a superset's variance can shrink faster than its expectation), so
its descendant bound is the sound envelope ``0.5`` when the expectation
already sits below the continuity-corrected threshold and ``1.0``
otherwise; the cheap exact-tail filters are likewise skipped for it — they
bound the exact probability, not the approximation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningStatistics
from ..core.search import LevelwiseSearch, MinerSpec
from ..core.support import SupportEngine, staged_tail_filter
from ..core.thresholds import ProbabilisticThreshold
from ..core.topk import (
    EVALUATOR_RANKINGS,
    ScoredCandidate,
    TopKResult,
    resolve_evaluator,
)
from ..db.database import UncertainDatabase
from .base import MinerBase

__all__ = ["TopKMiner", "exhaustive_topk", "normal_descendant_bound"]

Candidate = Tuple[int, ...]

#: evaluators whose score is anti-monotone under itemset extension, so the
#: Chernoff / Markov bounds on the exact tail are sound prune filters
_ANTI_MONOTONE_TAILS = ("dp", "dc")


def normal_descendant_bound(expected_support: float, min_count: int) -> float:
    """Sound upper bound on any superset's Normal-approximation score.

    Supersets only lower the expected support, but their variance can move
    either way, so the Normal score is not anti-monotone.  The envelope over
    every possible variance: once ``esup < min_count - 0.5`` the z-score is
    negative for every superset, capping the approximation below ``Phi(0) =
    0.5``; above that the bound is uninformative.
    """
    return 1.0 if expected_support >= min_count - 0.5 else 0.5


class TopKMiner(MinerBase):
    """Best-first top-k ranked miner over the batched support engine.

    Parameters
    ----------
    evaluator:
        Scoring strategy; an evaluator key or a registered algorithm name
        (see :func:`repro.core.topk.resolve_evaluator`).
    use_pruning:
        Apply the threshold-raising floor (and, for the exact evaluators,
        the Chernoff / Markov pre-filters).  Disabling it turns the search
        into the exhaustive mine-everything-then-truncate reference — same
        results, no pruning.
    track_variance:
        Also report support variances under the expected-support ranking
        (probability evaluators always carry them, as their threshold
        counterparts do).
    backend, workers, shards, track_memory:
        As for every miner; see :class:`~repro.algorithms.base.MinerBase`.
    """

    name = "topk"

    def __init__(
        self,
        evaluator: str = "esup",
        use_pruning: bool = True,
        track_variance: bool = False,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.evaluator = resolve_evaluator(evaluator)
        self.ranking = EVALUATOR_RANKINGS[self.evaluator]
        self.use_pruning = use_pruning
        self.track_variance = track_variance

    # -- entry point -------------------------------------------------------------------
    def mine(
        self, database: UncertainDatabase, k: int, min_sup: Optional[float] = None
    ) -> TopKResult:
        """Return the ``k`` highest-ranked itemsets of ``database``.

        ``min_sup`` (ratio or absolute count) fixes the support level of the
        probabilistic ranking; it is required for probability evaluators and
        ignored under the expected-support ranking.
        """
        k = int(k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        min_count: Optional[int] = None
        threshold: Optional[ProbabilisticThreshold] = None
        if self.ranking == "probability":
            if min_sup is None:
                raise ValueError(
                    f"evaluator {self.evaluator!r} ranks by frequentness "
                    "probability and requires min_sup"
                )
            threshold = ProbabilisticThreshold(float(min_sup))
            min_count = threshold.min_count(len(database))

        spec = self.spec(threshold)
        with self._planned(database, thresholds=spec.query_thresholds()):
            return LevelwiseSearch(spec, miner=self).run_topk(database, k, min_count)

    def spec(self, threshold) -> MinerSpec:
        """The ranking's declarative spec (kernel-free: scoring enters
        through :meth:`_topk_evaluate`, the best-first search's evaluator
        slot)."""
        return MinerSpec(
            name=f"topk-{self.evaluator}",
            definition="expected" if self.ranking == "esup" else "probabilistic",
            threshold=threshold,
            seed_mode="none",
            track_variance=self.track_variance,
        )

    def _topk_evaluate(
        self,
        source,
        min_count: Optional[int],
        statistics: MiningStatistics,
        executor,
    ):
        """The evaluator :meth:`LevelwiseSearch.run_topk` drives."""
        if self.ranking == "esup":
            return self._make_esup_evaluate(source, statistics)
        return self._make_probability_evaluate(
            source, int(min_count), statistics, executor
        )

    # -- evaluators --------------------------------------------------------------------
    def _make_esup_evaluate(self, source, statistics: MiningStatistics):
        """Definition 2 scoring: the expected support is its own bound."""

        def evaluate(candidates, buffer):
            floor = buffer.floor if (self.use_pruning and buffer.full) else 0.0
            # The floor doubles as the stage-1 kill threshold: a candidate
            # with fewer supporting rows than the k-th best score cannot
            # reach it (esup <= count), and the floor only rises.
            engine = SupportEngine(source.level_vectors(candidates, min_count=floor))
            expected = engine.expected_supports()
            variances = engine.variances() if self.track_variance else None
            # One batch per expanded node, not per Apriori level: counted
            # apart so database_scans keeps its cross-miner meaning.
            statistics.notes["engine_batches"] = (
                statistics.notes.get("engine_batches", 0.0) + 1.0
            )
            scored: List[Optional[ScoredCandidate]] = []
            for index, candidate in enumerate(candidates):
                score = float(expected[index])
                if score <= 0.0 or score < floor:
                    # Anti-monotone: no superset can score higher, and the
                    # floor only rises — the whole subtree is dead.
                    statistics.candidates_pruned += 1
                    scored.append(None)
                    continue
                record = FrequentItemset(
                    Itemset(candidate),
                    score,
                    float(variances[index]) if variances is not None else None,
                )
                scored.append(ScoredCandidate(candidate, score, score, record))
            return scored

        return evaluate

    def _make_probability_evaluate(
        self, source, min_count: int, statistics: MiningStatistics, executor
    ):
        """Definition 4 scoring at the fixed ``min_count`` support level."""
        evaluator = self.evaluator
        cheap_filters = self.use_pruning and evaluator in _ANTI_MONOTONE_TAILS
        # The max-attainable-support cut is a *semantic* filter, not an
        # optimisation: it mirrors the corresponding threshold miner.  The
        # exact tails are genuinely zero below min_count occurrences, and
        # NDUApriori applies the identical cut before its Normal evaluation
        # — but PDUApriori never filters by occurrence count (its Poisson
        # score is positive for any positive expectation), so the cut must
        # be skipped there or top-k would diverge from its mine-then-
        # truncate baseline.
        max_support_cut = evaluator != "poisson"

        def evaluate(candidates, buffer):
            floor = buffer.floor if (self.use_pruning and buffer.full) else 0.0
            # Stage-1 kill at the ranking's support level: sound exactly
            # where the max-attainable-support cut is already semantic (the
            # Poisson ranking scores count-starved candidates positively,
            # so it must see their true vectors).
            vectors = source.level_vectors(
                candidates, min_count=min_count if max_support_cut else 0.0
            )
            engine = SupportEngine(vectors)
            expected = engine.expected_supports()
            variances = engine.variances()
            max_supports = engine.nonzero_counts()
            statistics.notes["engine_batches"] = (
                statistics.notes.get("engine_batches", 0.0) + 1.0
            )

            scored: List[Optional[ScoredCandidate]] = [None] * len(candidates)
            alive: List[int] = []
            for index in range(len(candidates)):
                if max_support_cut and max_supports[index] < min_count:
                    # Fewer possible occurrences than the support level: the
                    # score is exactly zero, for this candidate and every
                    # superset.
                    statistics.candidates_pruned += 1
                    continue
                if cheap_filters:
                    if staged_tail_filter(float(expected[index]), min_count, floor):
                        # A cheap bound (Markov first, Chernoff only when
                        # Markov is undecided) caps the exact score of the
                        # candidate and (by anti-monotonicity) of every
                        # superset below the floor.
                        statistics.candidates_pruned += 1
                        continue
                alive.append(index)
            if not alive:
                return scored

            batch = SupportEngine(
                [vectors[index] for index in alive],
                expected=expected[alive],
                variances=variances[alive],
                executor=executor,
            )
            if evaluator == "dp":
                probabilities = batch.frequent_probabilities(
                    min_count, method="dynamic_programming"
                )
                statistics.exact_evaluations += len(alive)
            elif evaluator == "dc":
                probabilities = batch.frequent_probabilities(
                    min_count, method="divide_conquer"
                )
                statistics.exact_evaluations += len(alive)
            elif evaluator == "normal":
                probabilities = batch.normal_frequent_probabilities(min_count)
            else:  # poisson
                probabilities = batch.poisson_frequent_probabilities(min_count)

            for index, probability in zip(alive, probabilities):
                candidate = candidates[index]
                score = float(probability)
                if evaluator == "normal":
                    bound = normal_descendant_bound(float(expected[index]), min_count)
                else:
                    # Exact and Poisson scores are anti-monotone: the
                    # candidate's own score bounds every superset's.
                    bound = score
                record = None
                if score > 0.0:
                    record = FrequentItemset(
                        Itemset(candidate),
                        float(expected[index]),
                        float(variances[index]),
                        score,
                    )
                scored[index] = ScoredCandidate(candidate, score, bound, record)
            return scored

        return evaluate


def exhaustive_topk(
    database: UncertainDatabase,
    k: int,
    evaluator: str = "esup",
    min_sup: Optional[float] = None,
    **options,
) -> TopKResult:
    """The mine-everything-then-truncate reference, on the same kernels.

    Runs :class:`TopKMiner` with the threshold-raising floor disabled, so
    every itemset with a positive score is enumerated and scored before the
    deterministic truncation — the oracle the pruned search is pinned
    against (and the honest baseline of ``benchmarks/bench_topk.py``).
    """
    miner = TopKMiner(evaluator=evaluator, use_pruning=False, **options)
    return miner.mine(database, k, min_sup=min_sup)
