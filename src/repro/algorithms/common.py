"""Common subroutines shared by every miner.

The paper's central methodological complaint is that published comparisons
were run over *different* implementation frameworks (different number
types, different low-level containers), so observed gaps mixed algorithmic
and engineering effects.  This module is the analogue of the paper's
"common implementation framework": every miner in this library uses the
same instrumentation, the same item-statistics pass, the same candidate
join and the same transaction-trimming helper, so the differences that
remain are attributable to the algorithms themselves.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.parallel import ParallelExecutor
from ..core.results import MiningStatistics
from ..db.columnar import ColumnarView
from ..db.database import UncertainDatabase, resolve_backend

__all__ = [
    "instrumented_run",
    "item_statistics",
    "frequent_items_by_expected_support",
    "apriori_join",
    "has_infrequent_subset",
    "trim_transactions",
    "itemset_probability_vector",
    "CandidateSource",
    "RowCandidateSource",
    "ColumnarCandidateSource",
    "PartitionedCandidateSource",
    "make_candidate_source",
]


@contextmanager
def instrumented_run(statistics: MiningStatistics, track_memory: bool = False):
    """Record elapsed wall-clock time (and optionally peak memory) of a run.

    Memory tracking uses :mod:`tracemalloc`; it measures Python-heap peak
    allocation during the run, the uniform measure the evaluation harness
    reports for every algorithm.  It is opt-in because it roughly doubles
    running time.
    """
    started_tracing = False
    if track_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    if track_memory:
        tracemalloc.reset_peak()
    start = time.perf_counter()
    try:
        yield statistics
    finally:
        statistics.elapsed_seconds = time.perf_counter() - start
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            statistics.peak_memory_bytes = int(peak)
            if started_tracing:
                tracemalloc.stop()


def item_statistics(
    database: UncertainDatabase, backend: Optional[str] = None
) -> Dict[int, Tuple[float, float]]:
    """Return ``{item: (expected_support, variance)}`` for every item.

    One full database scan; the first step of every miner in the paper.
    With the columnar backend the scan is a pair of NumPy reductions per
    item column instead of a per-unit Python loop.
    """
    if resolve_backend(backend) == "columnar":
        return database.columnar().item_statistics()
    statistics: Dict[int, List[float]] = {}
    for transaction in database:
        for item, probability in transaction.units.items():
            entry = statistics.get(item)
            if entry is None:
                statistics[item] = [probability, probability * (1.0 - probability)]
            else:
                entry[0] += probability
                entry[1] += probability * (1.0 - probability)
    return {item: (values[0], values[1]) for item, values in statistics.items()}


def frequent_items_by_expected_support(
    database: UncertainDatabase,
    min_expected_support: float,
    backend: Optional[str] = None,
) -> Dict[int, Tuple[float, float]]:
    """Return the items whose expected support reaches ``min_expected_support``."""
    return {
        item: stats
        for item, stats in item_statistics(database, backend=backend).items()
        if stats[0] >= min_expected_support
    }


def apriori_join(
    frequent_itemsets: Sequence[Tuple[int, ...]], presorted: bool = False
) -> List[Tuple[int, ...]]:
    """Join frequent k-itemsets sharing a (k-1)-prefix into (k+1)-candidates.

    Input and output itemsets are canonical sorted tuples.  The classic
    Apriori join: two k-itemsets that agree on their first ``k - 1`` items
    produce one candidate; the subsequent subset check
    (:func:`has_infrequent_subset`) completes the pruning.

    ``presorted`` skips the defensive sort.  The search driver maintains
    the invariant once per run: its seed level is sorted, the join of a
    sorted level is itself sorted (candidates are emitted in left-operand
    order with ascending extensions), and survivor filtering preserves
    order — so no level ever needs re-sorting.
    """
    ordered = (
        list(frequent_itemsets) if presorted else sorted(frequent_itemsets)
    )
    candidates: List[Tuple[int, ...]] = []
    for index, left in enumerate(ordered):
        prefix = left[:-1]
        for right in ordered[index + 1 :]:
            if right[:-1] != prefix:
                break
            candidates.append(left + (right[-1],))
    return candidates


def has_infrequent_subset(
    candidate: Tuple[int, ...], frequent_itemsets: Set[Tuple[int, ...]]
) -> bool:
    """True if some (k-1)-subset of ``candidate`` is not frequent (downward closure)."""
    for subset in combinations(candidate, len(candidate) - 1):
        if subset not in frequent_itemsets:
            return True
    return False


def trim_transactions(
    database: UncertainDatabase, frequent_items: Iterable[int]
) -> List[Dict[int, float]]:
    """Project the database onto the frequent items.

    Returns plain ``{item: probability}`` dictionaries (the representation
    the level-wise miners iterate over), dropping units of globally
    infrequent items — they can never contribute to a frequent itemset by
    downward closure.  Empty projections are kept so the transaction count
    and every ``N * threshold`` conversion stay unchanged.
    """
    keep = set(frequent_items)
    projected: List[Dict[int, float]] = []
    for transaction in database:
        projected.append(
            {item: p for item, p in transaction.units.items() if item in keep}
        )
    return projected


def itemset_probability_vector(
    transactions: Sequence[Dict[int, float]], itemset: Sequence[int]
) -> List[float]:
    """Per-transaction occurrence probabilities of ``itemset`` (zeros omitted).

    Only the non-zero entries matter for the support distribution: a
    transaction that cannot contain the itemset contributes a Bernoulli(0)
    that shifts nothing.  Returning the compressed vector keeps the exact
    probabilistic computations proportional to the itemset's actual
    occurrences, the same optimisation the reference implementations use.
    """
    vector: List[float] = []
    for units in transactions:
        probability = 1.0
        for item in itemset:
            unit = units.get(item)
            if unit is None:
                probability = 0.0
                break
            probability *= unit
        if probability > 0.0:
            vector.append(probability)
    return vector


class CandidateSource:
    """Uniform supplier of per-candidate probability vectors for one miner run.

    The level-wise miners do not care how ``p_i(X)`` is produced — only that
    a whole Apriori level of candidates yields one compressed (zeros-omitted)
    vector per candidate.  :class:`RowCandidateSource` wraps the trimmed
    row-dictionary scan; :class:`ColumnarCandidateSource` delegates to the
    database's columnar view, where candidates sharing a prefix reuse the
    prefix intersection.
    """

    backend: str = "rows"

    def level_vectors(
        self, candidates: Sequence[Tuple[int, ...]], min_count: float = 0.0
    ) -> List[np.ndarray]:
        """One compressed vector per candidate.

        ``min_count`` is the caller's sound stage-1 kill threshold: a
        candidate whose maximum attainable support (supporting-row count)
        falls below it may come back as an empty vector without any float
        work, because the caller's decision rule already rejects it
        (``esup <= count`` for Definition 2; ``Pr[sup >= minsup] = 0`` for
        Definition 4).  Pass ``0`` when every score matters (e.g. rankings
        without a floor).  The row oracle ignores the hint entirely.
        """
        raise NotImplementedError


class RowCandidateSource(CandidateSource):
    """Per-candidate scans over trimmed ``{item: probability}`` rows."""

    backend = "rows"

    def __init__(self, transactions: List[Dict[int, float]]) -> None:
        self.transactions = transactions

    def level_vectors(
        self, candidates: Sequence[Tuple[int, ...]], min_count: float = 0.0
    ) -> List[np.ndarray]:
        return [
            np.asarray(
                itemset_probability_vector(self.transactions, candidate), dtype=float
            )
            for candidate in candidates
        ]


class ColumnarCandidateSource(CandidateSource):
    """Batched sparse-intersection evaluation over the columnar view."""

    backend = "columnar"

    def __init__(self, view: ColumnarView) -> None:
        self.view = view

    def level_vectors(
        self, candidates: Sequence[Tuple[int, ...]], min_count: float = 0.0
    ) -> List[np.ndarray]:
        return self.view.batch_vectors(candidates, min_count)


class PartitionedCandidateSource(CandidateSource):
    """Shard-parallel evaluation through a partition-carrying executor.

    Every shard evaluates the whole level over its own row range (in a
    worker process when the executor is parallel); the per-shard compressed
    vectors are concatenated in shard order, which is bitwise identical to
    the single-view evaluation.  Stage-1 kills are decided on the *summed*
    per-shard occupancy counts, never on local evidence.
    """

    backend = "columnar"

    def __init__(self, executor: ParallelExecutor) -> None:
        self.executor = executor

    def level_vectors(
        self, candidates: Sequence[Tuple[int, ...]], min_count: float = 0.0
    ) -> List[np.ndarray]:
        return self.executor.shard_vectors(candidates, min_count)


def make_candidate_source(
    database: UncertainDatabase,
    frequent_items: Iterable[int],
    backend: Optional[str] = None,
    executor: Optional[ParallelExecutor] = None,
) -> CandidateSource:
    """Build the candidate source for a run.

    The row source materialises the trimmed projection once (the classic
    optimisation); the columnar source needs no trimming because only the
    columns of frequent items are ever queried.  When ``executor`` carries
    row shards the columnar evaluation is fanned out per shard instead
    (:class:`PartitionedCandidateSource`) — same results, bit for bit.
    """
    if resolve_backend(backend) == "columnar":
        if executor is not None and executor.n_shards > 1:
            return PartitionedCandidateSource(executor)
        return ColumnarCandidateSource(database.columnar())
    return RowCandidateSource(trim_transactions(database, frequent_items))
