"""UFP-growth: the uncertain extension of FP-growth (Leung et al., 2008).

The algorithm builds a *UFP-tree*: transactions are projected onto the
frequent items, sorted by descending expected item support and inserted
into a prefix tree.  Unlike the deterministic FP-tree, two units can share
a node only when both the item *and* its existence probability are equal —
otherwise the expected-support arithmetic along the path would be wrong.
As the paper stresses, this drastically limits prefix sharing: probability
values rarely coincide, so the tree degenerates towards one path per
transaction and mining it requires building a large number of conditional
subtrees.  That behaviour is exactly why UFP-growth loses to both UApriori
and UH-Mine throughout the paper's experiments, and this implementation
deliberately preserves it.

Mining follows FP-growth's divide-and-conquer recursion: for every frequent
item (bottom of the order), the conditional pattern base is extracted, a
conditional UFP-tree is built, and the recursion continues with the item
appended to the current suffix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset
from ..core.search import MinerSpec, SearchContext
from ..db.database import UncertainDatabase
from .base import ExpectedSupportMiner

__all__ = ["UFPGrowth", "UFPTree", "UFPNode"]


class UFPNode:
    """One node of a UFP-tree: an item with a specific existence probability.

    ``count`` is the number of (conditional) transactions sharing the prefix
    path down to this node; ``weight`` is the probability mass each of those
    transactions carries for the current conditional pattern base (1.0 in
    the global tree).
    """

    __slots__ = ("item", "probability", "count", "weight", "parent", "children", "node_link")

    def __init__(
        self,
        item: Optional[int],
        probability: float,
        parent: Optional["UFPNode"] = None,
    ) -> None:
        self.item = item
        self.probability = probability
        self.count = 0
        self.weight = 0.0
        self.parent = parent
        self.children: Dict[Tuple[int, float], "UFPNode"] = {}
        self.node_link: Optional["UFPNode"] = None

    def child_for(self, item: int, probability: float) -> Optional["UFPNode"]:
        """Return the child sharing ``(item, probability)``, if any."""
        return self.children.get((item, probability))

    def add_child(self, item: int, probability: float) -> "UFPNode":
        """Create (or fetch) the child node for ``(item, probability)``."""
        key = (item, probability)
        child = self.children.get(key)
        if child is None:
            child = UFPNode(item, probability, parent=self)
            self.children[key] = child
        return child


class UFPTree:
    """A UFP-tree with its header table of node links."""

    def __init__(self, item_order: Dict[int, int]) -> None:
        self.root = UFPNode(None, 1.0)
        self.item_order = item_order
        self.header: Dict[int, UFPNode] = {}
        #: expected support of each item restricted to this (conditional) tree
        self.item_expected_support: Dict[int, float] = {}
        self.node_count = 0

    def insert(self, units: List[Tuple[int, float]], count: int = 1, weight: float = 1.0) -> None:
        """Insert one (conditional) transaction.

        ``units`` must already be restricted to this tree's frequent items
        and sorted by the global item order.  ``weight`` is the probability
        that the conditional suffix occurs in the originating transaction —
        1.0 in the global tree, a product of probabilities in conditional
        trees.
        """
        node = self.root
        for item, probability in units:
            child = node.child_for(item, probability)
            if child is None:
                child = node.add_child(item, probability)
                self.node_count += 1
                # Thread the node into the header list of its item.
                child.node_link = self.header.get(item)
                self.header[item] = child
            child.count += count
            child.weight += weight * count
            contribution = probability * weight * count
            self.item_expected_support[item] = (
                self.item_expected_support.get(item, 0.0) + contribution
            )
            node = child

    def nodes_of(self, item: int) -> List[UFPNode]:
        """Return every node of ``item`` through the header links."""
        nodes: List[UFPNode] = []
        node = self.header.get(item)
        while node is not None:
            nodes.append(node)
            node = node.node_link
        return nodes

    def prefix_path(self, node: UFPNode) -> List[Tuple[int, float]]:
        """Return the (item, probability) path from just below the root to ``node``'s parent."""
        path: List[Tuple[int, float]] = []
        current = node.parent
        while current is not None and current.item is not None:
            path.append((current.item, current.probability))
            current = current.parent
        path.reverse()
        return path


class UFPGrowth(ExpectedSupportMiner):
    """Depth-first expected-support miner over a UFP-tree.

    Parameters
    ----------
    probability_precision:
        Number of decimal digits two probabilities must share to be
        considered equal for node sharing.  The reference implementation
        compares raw floats (effectively no rounding); a smaller precision
        increases sharing at the cost of approximating expected supports,
        which is exposed here only for the ablation benchmarks.  Rounded
        values are clamped into ``(0, 1]`` so rounding can never silently
        delete a unit (or merge a sub-grid probability with zero).
    track_variance:
        Also report the support variance of every frequent itemset.
        Variance requires per-path bookkeeping identical to the expected
        support, so the overhead is marginal.
    """

    name = "ufp-growth"

    def __init__(
        self,
        probability_precision: Optional[int] = None,
        track_variance: bool = False,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        if probability_precision is not None and probability_precision < 1:
            # At precision 0 the rounding grid is the whole unit interval:
            # every probability would clamp to 1.0, silently making the
            # database certain.
            raise ValueError(
                f"probability_precision must be >= 1 (or None), got {probability_precision}"
            )
        self.probability_precision = probability_precision
        self.track_variance = track_variance

    # -- helpers -----------------------------------------------------------------------
    def _rounded(self, probability: float) -> float:
        """Round for node sharing, clamped into ``(0, 1]``.

        A bare ``round`` can push an existential probability outside the
        meaningful range: a unit below half the precision grid rounds to
        ``0.0`` — silently deleting the unit from the tree and shrinking
        every expected support its path contributes to — so such values are
        clamped up to the smallest grid step instead, keeping the rounding
        error per unit below ``10**-precision`` (UFP-growth then still
        agrees with UApriori within that tolerance, pinned by the tests).
        """
        if self.probability_precision is None:
            return probability
        rounded = round(probability, self.probability_precision)
        grid_step = 10.0 ** -self.probability_precision
        return min(max(rounded, grid_step), 1.0)

    def _build_global_tree(
        self,
        database: UncertainDatabase,
        frequent_items: Dict[int, Tuple[float, float]],
        executor=None,
    ) -> UFPTree:
        order = {
            item: rank
            for rank, (item, _) in enumerate(
                sorted(frequent_items.items(), key=lambda kv: (-kv[1][0], kv[0]))
            )
        }
        tree = UFPTree(order)
        if self.backend == "columnar":
            # Shard-parallel projection: each shard returns its rows'
            # rank-ordered unit lists; the concatenation in shard order is
            # exactly the serial projection, so the tree inserts (which stay
            # sequential — the tree is one shared structure) see identical
            # input either way.
            if executor is not None and executor.n_shards > 1:
                rows_in_order = [
                    units
                    for shard_units in executor.map_shard_method(
                        "rows_as_ordered_units", order
                    )
                    for units in shard_units
                ]
            else:
                rows_in_order = database.columnar().rows_as_ordered_units(order)
            for units in rows_in_order:
                if not units:
                    continue
                if self.probability_precision is not None:
                    units = [
                        (item, self._rounded(probability))
                        for item, probability in units
                    ]
                tree.insert(units)
            return tree
        for transaction in database:
            units = [
                (item, self._rounded(probability))
                for item, probability in transaction.units.items()
                if item in order
            ]
            if not units:
                continue
            units.sort(key=lambda unit: order[unit[0]])
            tree.insert(units)
        return tree

    def _conditional_tree(
        self, tree: UFPTree, item: int, min_expected_support: float
    ) -> Tuple[UFPTree, Dict[int, float]]:
        """Build the conditional UFP-tree of ``item``.

        Every path above an ``item`` node becomes a conditional transaction
        whose weight is multiplied by the probability of ``item`` in that
        node (the probability that the suffix itemset actually occurs).
        """
        # First pass: conditional expected support of every prefix item.
        conditional_support: Dict[int, float] = {}
        pattern_base: List[Tuple[List[Tuple[int, float]], int, float]] = []
        for node in tree.nodes_of(item):
            path = tree.prefix_path(node)
            if not path:
                continue
            weight = (node.weight / node.count if node.count else 0.0) * node.probability
            pattern_base.append((path, node.count, weight))
            for path_item, path_probability in path:
                conditional_support[path_item] = (
                    conditional_support.get(path_item, 0.0)
                    + path_probability * weight * node.count
                )

        keep = {
            path_item
            for path_item, support in conditional_support.items()
            if support >= min_expected_support
        }
        conditional = UFPTree(tree.item_order)
        for path, count, weight in pattern_base:
            units = [unit for unit in path if unit[0] in keep]
            if units:
                conditional.insert(units, count=count, weight=weight)
        return conditional, conditional_support

    def _variance_of(self, tree: UFPTree, item: int) -> float:
        """Support variance of the itemset ``suffix + {item}`` in the conditional tree."""
        variance = 0.0
        for node in tree.nodes_of(item):
            per_transaction = (
                node.weight / node.count if node.count else 0.0
            ) * node.probability
            variance += node.count * per_transaction * (1.0 - per_transaction)
        return variance

    def _mine_tree(
        self,
        tree: UFPTree,
        suffix: Tuple[int, ...],
        min_expected_support: float,
        records: List[FrequentItemset],
        statistics,
    ) -> None:
        # Visit items bottom-up in the global frequency order.  Every item
        # of a (conditional) tree is one candidate extension of the suffix:
        # charged to candidates_generated, and to candidates_pruned when its
        # conditional expected support rejects it.
        items = sorted(
            tree.item_expected_support,
            key=lambda item: tree.item_order[item],
            reverse=True,
        )
        statistics.candidates_generated += len(items)
        for item in items:
            expected = tree.item_expected_support[item]
            if expected < min_expected_support:
                statistics.candidates_pruned += 1
                continue
            itemset = tuple(sorted(suffix + (item,)))
            variance = self._variance_of(tree, item) if self.track_variance else None
            records.append(FrequentItemset(Itemset(itemset), expected, variance))
            conditional, _ = self._conditional_tree(tree, item, min_expected_support)
            statistics.notes["conditional_trees"] = (
                statistics.notes.get("conditional_trees", 0.0) + 1.0
            )
            if conditional.item_expected_support:
                self._mine_tree(
                    conditional, suffix + (item,), min_expected_support, records, statistics
                )

    # -- declarative search ------------------------------------------------------------
    def _expand(self, ctx: SearchContext) -> None:
        """Tree construction + FP-growth recursion (the spec's ``expander``).

        UFP-growth has no statistics-seeded 1-itemsets: the singletons are
        recorded from the *tree's* accumulation (whose floats can differ
        from the item-statistics scan under probability rounding), so the
        spec seeds nothing and the whole frequent set — singletons included
        — comes out of :meth:`_mine_tree` on the global tree.
        """
        if not ctx.seed_items:
            return
        tree = self._build_global_tree(ctx.database, ctx.seed_items, ctx.executor)
        ctx.statistics.database_scans += 1  # the tree-construction pass
        ctx.statistics.notes["global_tree_nodes"] = float(tree.node_count)
        self._mine_tree(
            tree, (), ctx.search_min_esup, ctx.records, ctx.statistics
        )

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="expected",
            threshold=threshold,
            seed_mode="none",
            track_variance=self.track_variance,
            expander=self._expand,
        )
