"""UApriori: the uncertain extension of Apriori (Chui, Kao & Hung 2007/2008).

A breadth-first, generate-and-test miner.  Level ``k + 1`` candidates are
produced by joining the frequent ``k``-itemsets, pruned by downward closure
and, optionally, by the *decremental* upper-bound check of Chui et al.;
each surviving candidate's expected support is accumulated in a single scan
of the (trimmed) database.

The paper finds UApriori to be the fastest expected-support miner on dense
datasets with a high ``min_esup`` — the regime where the level-wise search
space stays small.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult
from ..db.database import UncertainDatabase
from .base import ExpectedSupportMiner
from .common import (
    apriori_join,
    frequent_items_by_expected_support,
    has_infrequent_subset,
    instrumented_run,
    trim_transactions,
)

__all__ = ["UApriori"]


class UApriori(ExpectedSupportMiner):
    """Breadth-first expected-support miner.

    Parameters
    ----------
    use_decremental_pruning:
        Enable the decremental upper-bound pruning of Chui et al.: while a
        candidate's expected support is being accumulated transaction by
        transaction, the best support it could still reach is the running
        total plus the number of unseen transactions; once that upper bound
        drops below the threshold the candidate is abandoned early.
    track_variance:
        Also accumulate the support variance of every frequent itemset
        (needed when UApriori serves as the engine of the Normal
        approximation miners).
    track_memory:
        Record peak heap allocation in the result statistics.
    """

    name = "uapriori"

    def __init__(
        self,
        use_decremental_pruning: bool = True,
        track_variance: bool = False,
        track_memory: bool = False,
    ) -> None:
        super().__init__(track_memory=track_memory)
        self.use_decremental_pruning = use_decremental_pruning
        self.track_variance = track_variance

    # -- internals ---------------------------------------------------------------------
    def _candidate_statistics(
        self,
        transactions: List[Dict[int, float]],
        candidate: Tuple[int, ...],
        min_expected_support: float,
    ) -> Tuple[float, float, bool]:
        """Return (expected support, variance, surviving) for one candidate.

        ``surviving`` is False when decremental pruning abandoned the
        candidate early (its returned statistics are then partial and must
        not be used).
        """
        remaining = len(transactions)
        expected = 0.0
        variance = 0.0
        for units in transactions:
            remaining -= 1
            probability = 1.0
            for item in candidate:
                unit = units.get(item)
                if unit is None:
                    probability = 0.0
                    break
                probability *= unit
            if probability > 0.0:
                expected += probability
                if self.track_variance:
                    variance += probability * (1.0 - probability)
            if self.use_decremental_pruning and expected + remaining < min_expected_support:
                return expected, variance, False
        return expected, variance, expected >= min_expected_support

    def _mine(self, database: UncertainDatabase, min_expected_support: float) -> MiningResult:
        statistics = self._new_statistics()
        with instrumented_run(statistics, self.track_memory):
            records: List[FrequentItemset] = []

            frequent_items = frequent_items_by_expected_support(
                database, min_expected_support
            )
            statistics.database_scans += 1
            for item, (expected, variance) in frequent_items.items():
                records.append(
                    FrequentItemset(
                        Itemset((item,)),
                        expected,
                        variance if self.track_variance else None,
                    )
                )

            transactions = trim_transactions(database, frequent_items)
            current_level: Dict[Tuple[int, ...], float] = {
                (item,): stats[0] for item, stats in frequent_items.items()
            }

            while current_level:
                frequent_keys = set(current_level)
                candidates = [
                    candidate
                    for candidate in apriori_join(sorted(current_level))
                    if not has_infrequent_subset(candidate, frequent_keys)
                ]
                statistics.candidates_generated += len(candidates)
                if not candidates:
                    break

                statistics.database_scans += 1
                next_level: Dict[Tuple[int, ...], float] = {}
                for candidate in candidates:
                    expected, variance, frequent = self._candidate_statistics(
                        transactions, candidate, min_expected_support
                    )
                    if frequent:
                        next_level[candidate] = expected
                        records.append(
                            FrequentItemset(
                                Itemset(candidate),
                                expected,
                                variance if self.track_variance else None,
                            )
                        )
                    else:
                        statistics.candidates_pruned += 1
                current_level = next_level

        return MiningResult(records, statistics)
