"""UApriori: the uncertain extension of Apriori (Chui, Kao & Hung 2007/2008).

A breadth-first, generate-and-test miner.  Level ``k + 1`` candidates are
produced by joining the frequent ``k``-itemsets, pruned by downward closure
and, optionally, by the *decremental* upper-bound check of Chui et al.;
each surviving candidate's expected support is accumulated in a single scan
of the (trimmed) database.

With the columnar backend the whole level is evaluated in one batched pass
through the :class:`~repro.core.support.SupportEngine`: candidate
probability vectors come from sparse column intersections with shared
prefix reuse, and the expected supports fall out as vectorized reductions.
The decremental pruning only exists on the row path — it is an
early-termination trick for the per-transaction scan that the batched
evaluation replaces wholesale.

The paper finds UApriori to be the fastest expected-support miner on dense
datasets with a high ``min_esup`` — the regime where the level-wise search
space stays small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset, MiningResult
from ..core.support import SupportEngine
from ..db.database import UncertainDatabase
from .base import ExpectedSupportMiner
from .common import (
    apriori_join,
    frequent_items_by_expected_support,
    has_infrequent_subset,
    instrumented_run,
    make_candidate_source,
    trim_transactions,
)

__all__ = ["UApriori"]


class UApriori(ExpectedSupportMiner):
    """Breadth-first expected-support miner.

    Parameters
    ----------
    use_decremental_pruning:
        Enable the decremental upper-bound pruning of Chui et al.: while a
        candidate's expected support is being accumulated transaction by
        transaction, the best support it could still reach is the running
        total plus the number of unseen transactions; once that upper bound
        drops below the threshold the candidate is abandoned early.  Only
        meaningful on the row backend; the columnar backend evaluates whole
        levels at once.
    track_variance:
        Also accumulate the support variance of every frequent itemset
        (needed when UApriori serves as the engine of the Normal
        approximation miners).
    track_memory:
        Record peak heap allocation in the result statistics.
    backend:
        ``"columnar"`` (default) or ``"rows"``; see :class:`MinerBase`.
    """

    name = "uapriori"

    def __init__(
        self,
        use_decremental_pruning: bool = True,
        track_variance: bool = False,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.use_decremental_pruning = use_decremental_pruning
        self.track_variance = track_variance

    # -- row-backend internals ---------------------------------------------------------
    def _candidate_statistics(
        self,
        transactions: List[Dict[int, float]],
        candidate: Tuple[int, ...],
        min_expected_support: float,
    ) -> Tuple[float, float, bool]:
        """Return (expected support, variance, surviving) for one candidate.

        ``surviving`` is False when decremental pruning abandoned the
        candidate early (its returned statistics are then partial and must
        not be used).
        """
        remaining = len(transactions)
        expected = 0.0
        variance = 0.0
        for units in transactions:
            remaining -= 1
            probability = 1.0
            for item in candidate:
                unit = units.get(item)
                if unit is None:
                    probability = 0.0
                    break
                probability *= unit
            if probability > 0.0:
                expected += probability
                if self.track_variance:
                    variance += probability * (1.0 - probability)
            if self.use_decremental_pruning and expected + remaining < min_expected_support:
                return expected, variance, False
        return expected, variance, expected >= min_expected_support

    def _evaluate_level_rows(
        self,
        transactions: List[Dict[int, float]],
        candidates: List[Tuple[int, ...]],
        min_expected_support: float,
    ) -> List[Tuple[Tuple[int, ...], float, Optional[float]]]:
        """Per-candidate scans with optional decremental early termination."""
        survivors: List[Tuple[Tuple[int, ...], float, Optional[float]]] = []
        for candidate in candidates:
            expected, variance, frequent = self._candidate_statistics(
                transactions, candidate, min_expected_support
            )
            if frequent:
                survivors.append(
                    (candidate, expected, variance if self.track_variance else None)
                )
        return survivors

    def _evaluate_level_columnar(
        self,
        source,
        candidates: List[Tuple[int, ...]],
        min_expected_support: float,
    ) -> List[Tuple[Tuple[int, ...], float, Optional[float]]]:
        """One batched engine pass over the whole level.

        The candidate source is handed ``min_expected_support`` as the
        stage-1 kill threshold: ``esup(X) <= count(X)`` (every probability
        is at most 1), so a candidate whose supporting-row count is below
        the threshold is already decided infrequent before any float work.
        """
        engine = SupportEngine(
            source.level_vectors(candidates, min_count=min_expected_support)
        )
        expected_supports = engine.expected_supports()
        variances = engine.variances() if self.track_variance else None
        survivors: List[Tuple[Tuple[int, ...], float, Optional[float]]] = []
        for index, candidate in enumerate(candidates):
            expected = float(expected_supports[index])
            if expected >= min_expected_support:
                survivors.append(
                    (
                        candidate,
                        expected,
                        float(variances[index]) if variances is not None else None,
                    )
                )
        return survivors

    def _mine(self, database: UncertainDatabase, min_expected_support: float) -> MiningResult:
        statistics = self._new_statistics()
        with instrumented_run(statistics, self.track_memory), self._open_executor(
            database
        ) as executor:
            records: List[FrequentItemset] = []

            frequent_items = frequent_items_by_expected_support(
                database, min_expected_support, backend=self.backend
            )
            statistics.database_scans += 1
            for item, (expected, variance) in frequent_items.items():
                records.append(
                    FrequentItemset(
                        Itemset((item,)),
                        expected,
                        variance if self.track_variance else None,
                    )
                )

            if self.backend == "columnar":
                source = make_candidate_source(
                    database, frequent_items, "columnar", executor=executor
                )

                def evaluate(candidates):
                    return self._evaluate_level_columnar(
                        source, candidates, min_expected_support
                    )

            else:
                transactions = trim_transactions(database, frequent_items)

                def evaluate(candidates):
                    return self._evaluate_level_rows(
                        transactions, candidates, min_expected_support
                    )

            current_level: List[Tuple[int, ...]] = [
                (item,) for item in sorted(frequent_items)
            ]
            while current_level:
                frequent_keys = set(current_level)
                candidates = [
                    candidate
                    for candidate in apriori_join(sorted(current_level))
                    if not has_infrequent_subset(candidate, frequent_keys)
                ]
                statistics.candidates_generated += len(candidates)
                if not candidates:
                    break

                statistics.database_scans += 1
                survivors = evaluate(candidates)
                statistics.candidates_pruned += len(candidates) - len(survivors)
                for candidate, expected, variance in survivors:
                    records.append(
                        FrequentItemset(Itemset(candidate), expected, variance)
                    )
                current_level = [candidate for candidate, _, _ in survivors]

        return MiningResult(records, statistics)
