"""UApriori: the uncertain extension of Apriori (Chui, Kao & Hung 2007/2008).

A breadth-first, generate-and-test miner.  Level ``k + 1`` candidates are
produced by joining the frequent ``k``-itemsets, pruned by downward closure
and, optionally, by the *decremental* upper-bound check of Chui et al.;
each surviving candidate's expected support is accumulated in a single scan
of the (trimmed) database.

The whole search is one :class:`~repro.core.search.MinerSpec`: the
levelwise loop, the seeding, and the statistics accounting live in
:class:`~repro.core.search.LevelwiseSearch`, and the algorithm reduces to
the Definition-2 score kernel
(:class:`~repro.core.search.ExpectedSupportKernel`) with decremental
pruning on the row path.  With the columnar backend the kernel evaluates
the whole level in one batched :class:`~repro.core.support.SupportEngine`
pass; the decremental pruning only exists on the row path — it is an
early-termination trick for the per-transaction scan that the batched
evaluation replaces wholesale.

The paper finds UApriori to be the fastest expected-support miner on dense
datasets with a high ``min_esup`` — the regime where the level-wise search
space stays small.
"""

from __future__ import annotations

from typing import Optional

from ..core.search import ExpectedSupportKernel, MinerSpec
from .base import ExpectedSupportMiner

__all__ = ["UApriori"]


class UApriori(ExpectedSupportMiner):
    """Breadth-first expected-support miner.

    Parameters
    ----------
    use_decremental_pruning:
        Enable the decremental upper-bound pruning of Chui et al.: while a
        candidate's expected support is being accumulated transaction by
        transaction, the best support it could still reach is the running
        total plus the number of unseen transactions; once that upper bound
        drops below the threshold the candidate is abandoned early.  Only
        meaningful on the row backend; the columnar backend evaluates whole
        levels at once.
    track_variance:
        Also accumulate the support variance of every frequent itemset
        (needed when UApriori serves as the engine of the Normal
        approximation miners).
    track_memory:
        Record peak heap allocation in the result statistics.
    backend:
        ``"columnar"`` (default) or ``"rows"``; see :class:`MinerBase`.
    """

    name = "uapriori"

    def __init__(
        self,
        use_decremental_pruning: bool = True,
        track_variance: bool = False,
        track_memory: bool = False,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        plan=None,
    ) -> None:
        super().__init__(
            track_memory=track_memory,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        self.use_decremental_pruning = use_decremental_pruning
        self.track_variance = track_variance

    def spec(self, threshold) -> MinerSpec:
        return MinerSpec(
            name=self.name,
            definition="expected",
            threshold=threshold,
            kernel=ExpectedSupportKernel(decremental=self.use_decremental_pruning),
            seed_mode="statistics",
            track_variance=self.track_variance,
        )
