"""Core model: itemsets, support distributions, thresholds, results, dispatch."""

from .itemset import Itemset
from .miner import mine
from .parallel import ParallelExecutor, resolve_shards, resolve_workers
from .registry import (
    AlgorithmInfo,
    algorithm_names,
    algorithms_in_family,
    get_algorithm,
    register_algorithm,
)
from .results import FrequentItemset, MiningResult, MiningStatistics
from .rules import AssociationRule, closed_itemsets, derive_rules
from .support import (
    MergeableSupportStats,
    SupportDistribution,
    SupportEngine,
    chernoff_upper_bound,
    exact_pmf_divide_conquer,
    exact_pmf_dynamic_programming,
    frequent_probabilities_dp_batch,
    frequent_probability_dynamic_programming,
    normal_tail_probability,
    pack_probability_matrix,
    poisson_lambda_for_threshold,
    poisson_tail_probability,
)
from .thresholds import ExpectedSupportThreshold, ProbabilisticThreshold
from .topk import (
    TopKBuffer,
    TopKResult,
    mine_topk,
    rank_itemsets,
    truncate_result,
    truncation_baseline,
)

__all__ = [
    "AlgorithmInfo",
    "AssociationRule",
    "ExpectedSupportThreshold",
    "FrequentItemset",
    "Itemset",
    "MergeableSupportStats",
    "MiningResult",
    "MiningStatistics",
    "ParallelExecutor",
    "ProbabilisticThreshold",
    "SupportDistribution",
    "SupportEngine",
    "algorithm_names",
    "algorithms_in_family",
    "TopKBuffer",
    "TopKResult",
    "chernoff_upper_bound",
    "closed_itemsets",
    "derive_rules",
    "exact_pmf_divide_conquer",
    "exact_pmf_dynamic_programming",
    "frequent_probabilities_dp_batch",
    "frequent_probability_dynamic_programming",
    "pack_probability_matrix",
    "get_algorithm",
    "mine",
    "mine_topk",
    "normal_tail_probability",
    "rank_itemsets",
    "truncate_result",
    "truncation_baseline",
    "poisson_lambda_for_threshold",
    "poisson_tail_probability",
    "register_algorithm",
    "resolve_shards",
    "resolve_workers",
]
