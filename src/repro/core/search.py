"""The one levelwise search core behind every registered miner.

The paper's central methodological claim is that algorithm comparisons are
only meaningful inside one common implementation framework.  This module is
that framework's engine: a single :class:`LevelwiseSearch` driver owns the
one true levelwise loop —

    seed level from the item-statistics pass
    -> apriori join + downward-closure subset prune
    -> batched ``CandidateSource.level_vectors`` evaluation
    -> bound-chain filtering (occupancy -> Markov -> Chernoff, in cost order)
    -> record / extend
    -> uniform statistics accounting

— parameterized by a frozen declarative :class:`MinerSpec`.  Every
registered miner is a thin spec: a score kernel (expected support, exact DP
tail, divide-and-conquer PMF tail, Normal or Poisson approximation, sampled
possible worlds), a decision rule (Definition 2's inclusive ``esup >=
min_esup`` versus Definition 4's strict ``Pr[sup >= min_count] > pft``), a
bound chain, an item-prefilter rule and a seed mode.  The depth-first
miners (UH-Mine, UFP-growth) plug in through the spec's ``expander`` hook:
the driver still owns seeding and accounting, the spec supplies the growth
strategy.  The exhaustive references swap the apriori join for a
``combinations`` level generator.  Streaming mining and the top-k search
drive the same loop through :meth:`LevelwiseSearch.drive` and
:meth:`LevelwiseSearch.run_topk`.

Everything the engine does is held to the bitwise contract pinned by
``tests/test_search_engine.py``: for every miner x backend x (workers,
shards) x bitset configuration the results are byte-identical to the
goldens captured at the pre-refactor commit.

A compiled kernel backend (the remaining ROADMAP item) would slot in behind
:class:`LevelKernel.evaluate`: the driver, the specs and the accounting are
agnostic to how a level's scores are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .itemset import Itemset
from .results import FrequentItemset, MiningResult, MiningStatistics
from .support import SupportEngine
from .thresholds import QueryThresholds
from .topk import TopKBuffer, run_topk_search

__all__ = [
    "Candidate",
    "MinerSpec",
    "SearchContext",
    "LevelKernel",
    "ExpectedSupportKernel",
    "TailEvaluationKernel",
    "LevelwiseSearch",
    "markov_item_prefilter",
]

Candidate = Tuple[int, ...]

_DEFINITIONS = ("expected", "probabilistic")
_SEED_MODES = ("statistics", "evaluate", "none")
_LEVEL_GENERATORS = ("join", "exhaustive")

_COMMON = None


def _common():
    """The shared miner subroutines (:mod:`repro.algorithms.common`).

    Imported lazily: ``algorithms`` imports this module at class-definition
    time, so a top-level import back into the package would make the import
    order of ``repro.core.search`` versus ``repro.algorithms`` significant.
    """
    global _COMMON
    if _COMMON is None:
        from ..algorithms import common

        _COMMON = common
    return _COMMON


def markov_item_prefilter(ctx: "SearchContext") -> float:
    """The standard Definition-4 item prefilter bar.

    Markov's inequality gives ``Pr[sup >= min_count] <= esup / min_count``,
    so an item with ``esup < min_count * pft`` can never qualify; dropping
    it up front is always sound.
    """
    return ctx.min_count * ctx.pft


@dataclass(frozen=True)
class MinerSpec:
    """A declarative description of one miner, executed by :class:`LevelwiseSearch`.

    Parameters
    ----------
    name:
        Registry name, stamped on the result statistics.
    definition:
        ``"expected"`` (Definition 2: inclusive ``esup >= min_esup``) or
        ``"probabilistic"`` (Definition 4: strict ``Pr[sup >= min_count] >
        pft``).  Decides how :attr:`threshold` is resolved into the run's
        absolute thresholds.
    threshold:
        The query threshold object
        (:class:`~repro.core.thresholds.ExpectedSupportThreshold` or
        :class:`~repro.core.thresholds.ProbabilisticThreshold`); ``None``
        only for ranking (top-k) specs whose support level is resolved by
        the caller.  Uniformly exposed to the planner through
        :meth:`query_thresholds`.
    kernel:
        The score kernel evaluating one candidate level (see
        :class:`LevelKernel`).  ``None`` when an :attr:`expander` owns the
        growth instead.
    bound_chain:
        The sound filters applied before the exact evaluation, in cost
        order.  ``("occupancy",)`` is the always-on stage-1 kill (a
        candidate with fewer supporting rows than ``min_count`` scores
        exactly zero); appending ``"markov"`` and ``"chernoff"`` engages
        the cheap tail bounds of the *B* miner configurations.
    item_prefilter:
        ``callable(ctx) -> float`` returning the minimum item expected
        support for the seed; ``None`` seeds from every item.  Only
        consulted when the search is not already driven by an
        expected-support threshold (which is its own prefilter).
    seed_mode:
        How 1-itemsets enter the search: ``"statistics"`` records them
        straight off the item-statistics pass (expected-support miners),
        ``"evaluate"`` runs them through the kernel like any level
        (probabilistic miners), ``"none"`` leaves seeding to the expander
        or level generator.
    track_variance:
        Record support variances on ``"statistics"``-seeded records and in
        the expected-support kernel.
    level_generator:
        ``"join"`` (apriori join + subset prune, the default) or
        ``"exhaustive"`` (all ``combinations`` of the seed items per size,
        up to :attr:`max_size`, extension regardless of outcome — the
        brute-force references).
    max_size:
        Largest itemset size the ``"exhaustive"`` generator enumerates.
    search_threshold:
        ``callable(ctx) -> float`` translating the resolved thresholds into
        the absolute expected-support bar that drives the search (the
        Poisson ``lambda*`` translation, NDUH-Mine's Normal bound).  For
        ``"expected"`` specs the default is the threshold itself.
    record_probability:
        ``callable(ctx, esup) -> float | None`` annotating records created
        by the driver with an (approximate) frequent probability.
    expander:
        ``callable(ctx) -> None`` growing the frequent set depth-first
        instead of the levelwise loop (UH-Mine's head tables, UFP-growth's
        conditional trees).  The driver still owns the seed and the
        statistics.
    finalize:
        ``callable(ctx) -> None`` run after the search (post-filters,
        run-level notes).
    uses_executor:
        Whether the run opens the partition-parallel executor.  The
        deliberately-serial miners (sampling, the exhaustive references)
        leave it off.
    """

    name: str
    definition: str
    threshold: Any = None
    kernel: Optional["LevelKernel"] = None
    bound_chain: Tuple[str, ...] = ("occupancy",)
    item_prefilter: Optional[Callable[["SearchContext"], float]] = None
    seed_mode: str = "statistics"
    track_variance: bool = False
    level_generator: str = "join"
    max_size: Optional[int] = None
    search_threshold: Optional[Callable[["SearchContext"], float]] = None
    record_probability: Optional[
        Callable[["SearchContext", float], Optional[float]]
    ] = None
    expander: Optional[Callable[["SearchContext"], None]] = None
    finalize: Optional[Callable[["SearchContext"], None]] = None
    uses_executor: bool = True

    def __post_init__(self) -> None:
        if self.definition not in _DEFINITIONS:
            raise ValueError(
                f"definition must be one of {_DEFINITIONS}, got {self.definition!r}"
            )
        if self.seed_mode not in _SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {_SEED_MODES}, got {self.seed_mode!r}"
            )
        if self.level_generator not in _LEVEL_GENERATORS:
            raise ValueError(
                f"level_generator must be one of {_LEVEL_GENERATORS}, "
                f"got {self.level_generator!r}"
            )
        if self.level_generator == "exhaustive" and self.seed_mode != "none":
            raise ValueError(
                "the exhaustive generator enumerates 1-itemsets itself; "
                'use seed_mode="none"'
            )

    def query_thresholds(self) -> QueryThresholds:
        """The query thresholds, in the uniform shape the planner consumes."""
        if self.threshold is None:
            return QueryThresholds()
        return self.threshold.query()


@dataclass
class SearchContext:
    """Everything one run of the engine shares with its kernel and hooks."""

    database: Any
    spec: MinerSpec
    statistics: MiningStatistics
    backend: str
    executor: Any = None
    n_transactions: int = 0
    #: ``{item: (expected_support, variance)}`` from the opening scan
    item_stats: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    #: the items surviving the prefilter, with their statistics
    seed_items: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    records: List[FrequentItemset] = field(default_factory=list)
    #: Definition-2 decision threshold (absolute); None for Definition 4
    min_expected_support: Optional[float] = None
    #: Definition-4 support level and frequentness threshold
    min_count: Optional[int] = None
    pft: Optional[float] = None
    #: the absolute expected-support bar driving an esup-driven search
    search_min_esup: Optional[float] = None
    pruner: Any = None
    #: free-form state shared between spec hooks of one run
    scratch: Dict[str, Any] = field(default_factory=dict)

    def record(
        self,
        candidate: Sequence[int],
        expected: float,
        variance: Optional[float] = None,
        probability: Optional[float] = None,
    ) -> None:
        """Append one frequent itemset, applying the spec's record hooks."""
        if probability is None and self.spec.record_probability is not None:
            probability = self.spec.record_probability(self, expected)
        self.records.append(
            FrequentItemset(Itemset(tuple(candidate)), expected, variance, probability)
        )


class LevelKernel:
    """Scores one level of candidates and applies the spec's decision rule.

    The kernel owns the evaluation substrate (candidate source, trimmed
    rows, sampled worlds) while the driver owns the loop: ``evaluate``
    receives a whole level, appends the admitted records to
    ``ctx.records`` and returns the candidates that seed the next level.
    A compiled backend would replace the body of ``evaluate`` without
    touching any spec or the driver.
    """

    def begin(self, ctx: SearchContext) -> None:
        """Build per-run state (called once, after seeding decisions)."""

    def evaluate(
        self, ctx: SearchContext, candidates: List[Candidate]
    ) -> List[Candidate]:
        """Score ``candidates``; record the admitted ones; return the survivors."""
        raise NotImplementedError

    def finish(self, ctx: SearchContext) -> None:
        """Flush run-level notes (called once, after the search)."""


class ExpectedSupportKernel(LevelKernel):
    """The Definition-2 score kernel: inclusive ``esup >= bar``.

    On the columnar backend the whole level is evaluated in one batched
    engine pass (the candidate source gets the bar as its stage-1 kill
    threshold: ``esup(X) <= count(X)``, so a candidate with fewer
    supporting rows than the bar is already decided).  On the row backend
    each candidate is accumulated transaction by transaction with the
    optional *decremental* early termination of Chui et al.: once the
    running total plus the unseen-transaction count drops below the bar
    the candidate is abandoned.
    """

    def __init__(self, decremental: bool = True) -> None:
        self.decremental = decremental
        self._source = None
        self._transactions: Optional[List[Dict[int, float]]] = None

    def begin(self, ctx: SearchContext) -> None:
        common = _common()
        if ctx.backend == "columnar":
            self._source = common.make_candidate_source(
                ctx.database, ctx.seed_items, "columnar", executor=ctx.executor
            )
        else:
            self._transactions = common.trim_transactions(ctx.database, ctx.seed_items)

    def evaluate(
        self, ctx: SearchContext, candidates: List[Candidate]
    ) -> List[Candidate]:
        if self._source is not None:
            survivors = self._evaluate_columnar(ctx, candidates)
        else:
            survivors = self._evaluate_rows(ctx, candidates)
        for candidate, expected, variance in survivors:
            ctx.record(candidate, expected, variance)
        return [candidate for candidate, _, _ in survivors]

    def _evaluate_columnar(self, ctx: SearchContext, candidates: List[Candidate]):
        engine = SupportEngine(
            self._source.level_vectors(candidates, min_count=ctx.search_min_esup)
        )
        expected_supports = engine.expected_supports()
        variances = engine.variances() if ctx.spec.track_variance else None
        survivors = []
        for index, candidate in enumerate(candidates):
            expected = float(expected_supports[index])
            if expected >= ctx.search_min_esup:
                survivors.append(
                    (
                        candidate,
                        expected,
                        float(variances[index]) if variances is not None else None,
                    )
                )
        return survivors

    def _evaluate_rows(self, ctx: SearchContext, candidates: List[Candidate]):
        survivors = []
        for candidate in candidates:
            expected, variance, frequent = self._candidate_statistics(
                ctx, candidate, ctx.search_min_esup
            )
            if frequent:
                survivors.append(
                    (
                        candidate,
                        expected,
                        variance if ctx.spec.track_variance else None,
                    )
                )
        return survivors

    def _candidate_statistics(
        self, ctx: SearchContext, candidate: Candidate, bar: float
    ) -> Tuple[float, float, bool]:
        """(expected, variance, surviving) of one row-backend candidate.

        ``surviving`` is False when the decremental bound abandoned the
        candidate early; its statistics are then partial and must not be
        used.
        """
        transactions = self._transactions
        track_variance = ctx.spec.track_variance
        remaining = len(transactions)
        expected = 0.0
        variance = 0.0
        for units in transactions:
            remaining -= 1
            probability = 1.0
            for item in candidate:
                unit = units.get(item)
                if unit is None:
                    probability = 0.0
                    break
                probability *= unit
            if probability > 0.0:
                expected += probability
                if track_variance:
                    variance += probability * (1.0 - probability)
            if self.decremental and expected + remaining < bar:
                return expected, variance, False
        return expected, variance, expected >= bar


class TailEvaluationKernel(LevelKernel):
    """The Definition-4 score kernel: strict ``Pr[sup >= min_count] > pft``.

    The full three-stage cascade of the probabilistic miners: the candidate
    source kills candidates whose bitmap occupancy count is below
    ``min_count`` before any float work (stage 1), the survivors' columns
    come from the cross-level prefix cache (stage 2), and the cheap sound
    bounds run in cost order — occupancy count, then Markov, then Chernoff
    — so the tail evaluation only pays for the candidates no bound could
    decide (stage 3).  Every filter is one-sided, so the frequent set is
    identical to the unfiltered evaluation.

    ``batch_tails`` is the miner's kernel binding: ``callable(engine,
    min_count) -> ndarray`` of frequent probabilities (the vectorized DP
    recurrence, the divide-and-conquer PMF tails, the Normal moments).
    """

    def __init__(
        self, batch_tails: Callable[[SupportEngine, int], Any]
    ) -> None:
        self.batch_tails = batch_tails
        self._source = None

    def begin(self, ctx: SearchContext) -> None:
        self._source = _common().make_candidate_source(
            ctx.database, ctx.seed_items, ctx.backend, executor=ctx.executor
        )

    def evaluate(
        self, ctx: SearchContext, candidates: List[Candidate]
    ) -> List[Candidate]:
        if not candidates:
            return []
        statistics = ctx.statistics
        vectors = self._source.level_vectors(candidates, min_count=ctx.min_count)
        engine = SupportEngine(vectors)
        expected = engine.expected_supports()
        variance = engine.variances()
        max_supports = engine.nonzero_counts()

        survivors = engine.undecided_after_bounds(
            ctx.min_count,
            ctx.pft,
            counts=max_supports,
            use_bounds=ctx.pruner.enabled,
            pruner=ctx.pruner,
            notes=statistics.notes,
        )
        if not survivors:
            return []

        statistics.exact_evaluations += len(survivors)
        batch = SupportEngine(
            [vectors[index] for index in survivors],
            expected=expected[survivors],
            variances=variance[survivors],
            executor=ctx.executor,
        )
        probabilities = self.batch_tails(batch, ctx.min_count)

        next_level: List[Candidate] = []
        for index, probability in zip(survivors, probabilities):
            if probability > ctx.pft:
                candidate = candidates[index]
                ctx.records.append(
                    FrequentItemset(
                        Itemset(candidate),
                        float(expected[index]),
                        float(variance[index]),
                        float(probability),
                    )
                )
                next_level.append(candidate)
        return next_level

    def finish(self, ctx: SearchContext) -> None:
        ctx.statistics.notes["chernoff_tested"] = float(ctx.pruner.tested)
        ctx.statistics.notes["chernoff_pruned"] = float(ctx.pruner.pruned)


class LevelwiseSearch:
    """Executes a :class:`MinerSpec` — the single driver behind every miner.

    ``run`` performs a full batch mine; ``run_topk`` the floor-driven
    ranked search; ``drive`` exposes the bare loop for callers that bring
    their own evaluation substrate (the streaming miners, whose statistics
    come from the incremental index instead of a database scan).
    """

    def __init__(self, spec: MinerSpec, miner: Any = None) -> None:
        self.spec = spec
        self.miner = miner

    # -- the one true loop -------------------------------------------------------------
    def drive(
        self,
        seed_level: Sequence[Candidate],
        evaluate: Callable[[List[Candidate]], List[Candidate]],
        statistics: MiningStatistics,
        generator: Optional[
            Callable[[List[Candidate]], Optional[List[Candidate]]]
        ] = None,
    ) -> None:
        """The levelwise loop: generate -> account -> evaluate -> extend.

        ``generator`` maps the surviving level to the next candidate level
        (``None`` ends the search); the default is the apriori join with
        downward-closure subset pruning.  ``evaluate`` scores one level and
        returns the candidates admitted to the next; the uniform accounting
        (see :class:`~repro.core.results.MiningStatistics`) charges
        ``candidates_generated`` for every generated candidate and
        ``candidates_pruned`` for every one not admitted.

        Sort order is maintained once per level: the seed is sorted, the
        apriori join of a sorted level is sorted, and survivors preserve
        order — so the join never re-sorts (``presorted=True``).
        """
        if generator is None:
            generator = self._apriori_candidates
        current_level = list(seed_level)
        while True:
            candidates = generator(current_level)
            if candidates is None:
                break
            statistics.candidates_generated += len(candidates)
            if not candidates:
                break
            survivors = evaluate(candidates)
            statistics.candidates_pruned += len(candidates) - len(survivors)
            current_level = survivors

    @staticmethod
    def _apriori_candidates(
        current_level: List[Candidate],
    ) -> Optional[List[Candidate]]:
        if not current_level:
            return None
        common = _common()
        frequent_keys = set(current_level)
        return [
            candidate
            for candidate in common.apriori_join(current_level, presorted=True)
            if not common.has_infrequent_subset(candidate, frequent_keys)
        ]

    # -- batch mining ------------------------------------------------------------------
    def run(self, database: Any) -> MiningResult:
        """Mine ``database`` under this search's spec; return the result."""
        miner = self._require_miner()
        common = _common()
        spec = self.spec
        statistics = miner._new_statistics()
        statistics.algorithm = spec.name
        with common.instrumented_run(statistics, miner.track_memory):
            executor_scope = (
                miner._open_executor(database)
                if spec.uses_executor
                else _NullExecutorScope()
            )
            with executor_scope as executor:
                ctx = SearchContext(
                    database=database,
                    spec=spec,
                    statistics=statistics,
                    backend=miner.backend,
                    executor=executor,
                    n_transactions=len(database),
                )
                self._prepare(ctx)
                if spec.kernel is not None:
                    spec.kernel.begin(ctx)
                seed_level = self._seed(ctx)
                if spec.expander is not None:
                    spec.expander(ctx)
                elif spec.level_generator == "exhaustive":
                    self._drive_exhaustive(ctx)
                else:
                    self._drive_levels(ctx, seed_level)
                if spec.kernel is not None:
                    spec.kernel.finish(ctx)
                if spec.finalize is not None:
                    spec.finalize(ctx)
        return MiningResult(ctx.records, statistics)

    def _require_miner(self) -> Any:
        if self.miner is None:
            raise ValueError("this LevelwiseSearch was built without a miner")
        return self.miner

    def _prepare(self, ctx: SearchContext) -> None:
        """Resolve thresholds, scan item statistics, apply the prefilter."""
        spec = ctx.spec
        # Item statistics always come from the unpartitioned view: the
        # full-column reductions are cheap, and reusing them keeps the
        # frequent-1-item decisions byte-identical for every (workers,
        # shards) configuration.
        ctx.item_stats = _common().item_statistics(ctx.database, backend=ctx.backend)
        ctx.statistics.database_scans += 1

        if spec.definition == "expected":
            ctx.min_expected_support = spec.threshold.absolute(ctx.n_transactions)
        else:
            ctx.min_count = spec.threshold.min_count(ctx.n_transactions)
            ctx.pft = spec.threshold.pft

        if spec.search_threshold is not None:
            ctx.search_min_esup = spec.search_threshold(ctx)
        else:
            ctx.search_min_esup = ctx.min_expected_support

        if ctx.search_min_esup is not None:
            bar = ctx.search_min_esup
        elif spec.item_prefilter is not None:
            bar = spec.item_prefilter(ctx)
        else:
            bar = None
        if bar is None:
            ctx.seed_items = dict(ctx.item_stats)
        else:
            ctx.seed_items = {
                item: stats
                for item, stats in ctx.item_stats.items()
                if stats[0] >= bar
            }

        from ..algorithms.pruning import ChernoffPruner

        ctx.pruner = ChernoffPruner(enabled="chernoff" in spec.bound_chain)

    def _seed(self, ctx: SearchContext) -> List[Candidate]:
        """Bring the 1-itemsets into the search according to the seed mode."""
        spec = ctx.spec
        if spec.seed_mode == "statistics":
            for item, (expected, variance) in ctx.seed_items.items():
                ctx.record(
                    (item,),
                    expected,
                    variance if spec.track_variance else None,
                )
            return [(item,) for item in sorted(ctx.seed_items)]
        if spec.seed_mode == "evaluate":
            return spec.kernel.evaluate(
                ctx, [(item,) for item in sorted(ctx.seed_items)]
            )
        return []

    def _drive_levels(self, ctx: SearchContext, seed_level: List[Candidate]) -> None:
        kernel = ctx.spec.kernel

        def evaluate(candidates: List[Candidate]) -> List[Candidate]:
            ctx.statistics.database_scans += 1
            return kernel.evaluate(ctx, candidates)

        self.drive(seed_level, evaluate, ctx.statistics)

    def _drive_exhaustive(self, ctx: SearchContext) -> None:
        """All ``combinations`` of the seed items per size, join-free."""
        kernel = ctx.spec.kernel
        base = sorted(ctx.seed_items)
        limit = min(ctx.spec.max_size or len(base), len(base))
        state = {"size": 0}

        def generator(_survivors: List[Candidate]) -> Optional[List[Candidate]]:
            # Extension is unconditional: the references keep enumerating
            # even when a whole size comes up empty.
            state["size"] += 1
            if state["size"] > limit:
                return None
            return list(combinations(base, state["size"]))

        def evaluate(candidates: List[Candidate]) -> List[Candidate]:
            ctx.statistics.database_scans += 1
            return kernel.evaluate(ctx, candidates)

        self.drive([], evaluate, ctx.statistics, generator=generator)

    # -- ranked (top-k) mining ---------------------------------------------------------
    def run_topk(self, database: Any, k: int, min_count: Optional[int] = None):
        """The floor-driven best-first ranked search, on the same substrate.

        The miner supplies its evaluator through ``_topk_evaluate`` (the
        ranking's kernel binding); the driver owns the prologue — item
        statistics, universe, candidate source, executor — and the
        accounting, exactly as for threshold mining.
        """
        from .topk import TopKResult

        miner = self._require_miner()
        common = _common()
        statistics = miner._new_statistics()
        statistics.algorithm = self.spec.name
        with common.instrumented_run(statistics, miner.track_memory), (
            miner._open_executor(database)
        ) as executor:
            stats_by_item = common.item_statistics(database, backend=miner.backend)
            statistics.database_scans += 1
            universe = sorted(
                item for item, stats in stats_by_item.items() if stats[0] > 0.0
            )
            source = common.make_candidate_source(
                database, universe, miner.backend, executor=executor
            )
            evaluate = miner._topk_evaluate(source, min_count, statistics, executor)
            buffer = self.best_first(
                universe,
                evaluate,
                k,
                use_floor=miner.use_pruning,
                statistics=statistics,
            )
            records = buffer.records()
            statistics.notes["k"] = float(k)
            statistics.notes["floor"] = buffer.floor
        return TopKResult(
            records, k, miner.ranking, min_count=min_count, statistics=statistics
        )

    @staticmethod
    def best_first(
        universe: Sequence[int],
        evaluate: Callable,
        k: int,
        use_floor: bool = True,
        statistics: Optional[MiningStatistics] = None,
    ) -> TopKBuffer:
        """The threshold-raising best-first search (batch and streaming top-k)."""
        return run_topk_search(
            universe, evaluate, k, use_floor=use_floor, statistics=statistics
        )


class _NullExecutorScope:
    """Context manager yielding no executor (specs with ``uses_executor=False``)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False
