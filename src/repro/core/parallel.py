"""Partition-parallel execution of support-statistics workloads.

The columnar backend of PR 1 batched the per-level math on one core; this
module distributes those batches across worker processes without changing a
single bit of the results.  Two orthogonal axes of parallelism exist:

* **row shards** — the database is split into ``K`` contiguous row ranges
  (:mod:`repro.db.partition`); candidate probability vectors are extracted
  per shard and concatenated.  Because every per-transaction product is
  computed row-locally, the concatenated vector is *bitwise identical* to
  the vector the unpartitioned view produces.
* **candidate chunks** — the expensive tail evaluations (the DP recurrence,
  the divide-and-conquer convolution) are independent per candidate, so a
  level is split into even chunks, each evaluated by the same serial kernel
  a single-core run would use.  Chunk boundaries cannot change any value:
  the batched DP treats padding columns as Bernoulli(0) identity steps and
  the convolution is per-candidate to begin with.

Consequently a run with any ``(workers, shards)`` combination returns
byte-identical frequent itemsets and tail probabilities to the serial
columnar path — the property pinned by ``tests/test_partition_parallel.py``.

The process backend uses :class:`multiprocessing.pool.Pool` with a
fork-preferring context; shard views are shipped to the workers once (pool
initializer) rather than per task, and per-shard results are memoised on
the coordinator so repeated level evaluations are free.

**Zero-copy fan-out.**  Shards never cross the process boundary as data.
The pool initializer receives a list of O(bytes)-sized *descriptors*, one
per shard, which each worker resolves locally:

* a memory-mapped shard (``repro.db.store``) travels as its
  ``(directory, start, stop)`` store source and is re-mapped on arrival;
* an in-RAM shard is packed once into a ``multiprocessing.shared_memory``
  segment by the coordinator and workers attach read-only views, so all
  workers share one physical copy;
* ``REPRO_FANOUT=pickle`` restores the legacy whole-view pickle for
  in-RAM shards (mapped shards are *already* descriptors).

Attachment is verified, not assumed: a vanished store directory fails the
dispatch on the coordinator before the pool spawns, and a vanished
shared-memory segment surfaces as a clear ``RuntimeError`` from the first
task instead of an initializer crash-loop.  Segments are always unlinked
on ``close()``/``terminate()``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..plan.spec import ExecutionPlan, plan_scope, resolve_knob
from .support import (
    dc_tail_probabilities,
    frequent_probabilities_dp_batch,
    pack_probability_matrix,
    resolve_conv_span,
)

__all__ = [
    "ParallelExecutor",
    "WORKERS_ENV",
    "SHARDS_ENV",
    "FANOUT_ENV",
    "live_pool_count",
    "pool_restart_count",
    "resolve_workers",
    "resolve_shards",
    "resolve_fanout",
    "fanout_scope",
    "even_chunks",
]

#: process-wide count of worker pools currently alive (see live_pool_count)
_LIVE_POOLS = 0
_LIVE_POOLS_LOCK = threading.Lock()

#: process-wide count of pools rebuilt after dead-worker detection
_POOL_RESTARTS = 0

#: pool rebuilds attempted per batch before giving up
_POOL_MAX_RESTARTS = 3


def live_pool_count() -> int:
    """How many :class:`ParallelExecutor` worker pools are alive right now.

    Every pool creation increments the counter and every ``close()`` /
    ``terminate()`` that actually tears a pool down decrements it, so a
    long-lived process (the mining service) can assert that no request
    leaked a pool: the count must return to its pre-request value once all
    in-flight work has drained.
    """
    with _LIVE_POOLS_LOCK:
        return _LIVE_POOLS


def _pool_opened() -> None:
    global _LIVE_POOLS
    with _LIVE_POOLS_LOCK:
        _LIVE_POOLS += 1


def _pool_closed() -> None:
    global _LIVE_POOLS
    with _LIVE_POOLS_LOCK:
        _LIVE_POOLS -= 1


def pool_restart_count() -> int:
    """How many worker pools have been rebuilt after a dead-worker detection.

    Monotone over the process lifetime; the mining service surfaces it
    through the ``stats``/``health`` ops so worker churn is observable from
    a client without log access.
    """
    with _LIVE_POOLS_LOCK:
        return _POOL_RESTARTS


def _pool_restarted() -> None:
    global _POOL_RESTARTS
    with _LIVE_POOLS_LOCK:
        _POOL_RESTARTS += 1

#: environment variable supplying the default worker count
WORKERS_ENV = "REPRO_WORKERS"
#: environment variable supplying the default shard count
SHARDS_ENV = "REPRO_SHARDS"
#: environment variable supplying the default fan-out mode
FANOUT_ENV = "REPRO_FANOUT"

_FANOUT_MODES = ("auto", "shm", "pickle")


def resolve_fanout(value: Optional[str] = None) -> str:
    """Resolve the shard fan-out mode.

    Args:
        value: Explicit mode — ``auto`` (shared memory for in-RAM shards,
            store descriptors for mapped shards), ``shm`` (same as auto
            today, named for explicitness) or ``pickle`` (legacy whole-view
            pickling of in-RAM shards) — or ``None`` to consult the
            ``REPRO_FANOUT`` environment variable (missing/empty means
            ``auto``).

    >>> resolve_fanout("shm"), resolve_fanout("PICKLE")
    ('shm', 'pickle')
    """
    return resolve_knob("fanout", value)


@contextmanager
def fanout_scope(value: Optional[str]):
    """Pin the fan-out default for the current context (``None`` = no-op).

    Mirrors :func:`repro.db.columnar.bitset_scope`: a thin wrapper around
    :func:`repro.plan.spec.plan_scope`, kept for the historical calling
    convention.  No longer mutates ``os.environ`` — the setting is scoped
    to this thread/context only.
    """
    if value is None:
        yield
        return
    with plan_scope(ExecutionPlan(fanout=resolve_fanout(value))):
        yield


def _available_cpus() -> int:
    """Number of CPUs the process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count.

    Args:
        workers: Explicit worker count, or ``None`` to consult the
            ``REPRO_WORKERS`` environment variable (missing/empty means 1).
            The value ``0`` (or the env value ``"auto"``) means "one worker
            per available CPU".

    Returns:
        A validated worker count ``>= 1``.

    >>> resolve_workers(3)
    3
    >>> resolve_workers(1)
    1
    """
    if workers is not None and not isinstance(workers, str):
        workers = int(workers)
    return resolve_knob("workers", workers)


def resolve_shards(shards: Optional[int] = None, workers: int = 1) -> int:
    """Resolve a shard count.

    Args:
        shards: Explicit shard count, or ``None`` to consult the
            ``REPRO_SHARDS`` environment variable; when that is also unset
            the shard count defaults to ``workers`` (so raising the worker
            count automatically engages the partitioned path).
        workers: The already-resolved worker count.

    Returns:
        A validated shard count ``>= 1``.

    >>> resolve_shards(4, workers=1)
    4
    >>> resolve_shards(None, workers=2)
    2
    """
    return resolve_knob("shards", shards, workers=workers)


def even_chunks(items: Sequence[Any], n_chunks: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-equal runs.

    Order is preserved and no chunk is empty, so concatenating per-chunk
    results restores the original item order exactly.  The split arithmetic
    is :func:`repro.db.partition.shard_bounds` — candidate chunking and row
    sharding deliberately share one partitioning rule.

    >>> even_chunks([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> even_chunks([1, 2], 5)
    [[1], [2]]
    """
    # Imported lazily: repro.db pulls this module in via its package
    # __init__, so a top-level import would be circular.
    from ..db.partition import shard_bounds

    if not len(items):
        return []
    return [
        items[start:stop] for start, stop in shard_bounds(len(items), n_chunks)
    ]


# -- worker-process kernels --------------------------------------------------------
# Pool tasks must be module-level functions (picklable under both the fork
# and spawn start methods).  Shard descriptors are resolved into views once
# per worker process by the pool initializer; tasks then reference them by
# index so a level evaluation ships only the candidate list.

_WORKER_SHARDS: Optional[Sequence[Any]] = None
#: attachment failure recorded by the initializer — raising there instead
#: would make the pool respawn (and re-fail) workers in a tight loop, so
#: the error is surfaced from the first task that needs the shards.
_WORKER_ATTACH_ERROR: Optional[str] = None

_SHARD_ENTRY_TAGS = ("view", "shm", "store")


def _resolve_shard_entry(entry: Any) -> Any:
    """Materialise one dispatch entry into a queryable shard view."""
    if isinstance(entry, tuple) and entry and entry[0] in _SHARD_ENTRY_TAGS:
        tag = entry[0]
        if tag == "view":
            return entry[1]
        if tag == "shm":
            from ..db.store import attach_shard_segment

            return attach_shard_segment(entry[1])
        from ..db.store import ColumnarStore

        _, directory, start, stop = entry
        return ColumnarStore.open(directory).view(start, stop)
    # Raw shard views (executors constructed outside the dispatch-payload
    # path, e.g. in tests) install as-is.
    return entry


def _install_worker_shards(payload: Optional[Sequence[Any]]) -> None:
    global _WORKER_SHARDS, _WORKER_ATTACH_ERROR
    # Fault probes belong to the coordinator; a forked worker inheriting an
    # active plan must not fire faults on its own schedule.
    faults.disable_in_process()
    _WORKER_SHARDS = None
    _WORKER_ATTACH_ERROR = None
    if payload is None:
        return
    try:
        _WORKER_SHARDS = [_resolve_shard_entry(entry) for entry in payload]
    except Exception as error:
        _WORKER_ATTACH_ERROR = f"{type(error).__name__}: {error}"


def _shard_method_task(payload: Tuple[int, str, tuple, dict]) -> Any:
    index, method, args, kwargs = payload
    if _WORKER_SHARDS is None:
        detail = _WORKER_ATTACH_ERROR or "worker pool initialized without shards"
        raise RuntimeError(f"shard attachment failed in worker: {detail}")
    return getattr(_WORKER_SHARDS[index], method)(*args, **kwargs)


def _dp_tail_task(payload: Tuple[List[np.ndarray], int]) -> np.ndarray:
    vectors, min_count = payload
    return frequent_probabilities_dp_batch(pack_probability_matrix(vectors), min_count)


def _dc_tail_task(payload: Tuple[List[np.ndarray], int, int]) -> np.ndarray:
    # ``span`` rides inside the payload: the coordinator resolves the
    # conv_span plan knob once and ships it, because contextvar-backed plan
    # scopes do not propagate into forked worker processes and the
    # crossover is bitwise-relevant (FFT round-off).
    vectors, min_count, span = payload
    return dc_tail_probabilities(vectors, min_count, span=span)


def _freeze(value: Any) -> Any:
    """Recursively convert a task argument into a hashable cache key."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, np.ndarray):
        return (value.shape, value.tobytes())
    return value


#: sentinel distinguishing "not cached" from a legitimately cached ``None``
_CACHE_MISS = object()


class ParallelExecutor:
    """Coordinator for one mining run's parallel work.

    The executor owns (lazily) a process pool and, optionally, the row
    shards of the database being mined.  It exposes exactly the operations
    the miners need — per-shard method fan-out with concatenation, and
    candidate-chunked DP / divide-and-conquer tail evaluation — all of which
    return results bitwise identical to their serial counterparts.

    Args:
        workers: Worker count (resolved through :func:`resolve_workers`).
            ``1`` keeps everything in-process; the chunking/merging code
            paths still run so serial and parallel runs share one code path.
        shard_views: Optional row shards (``repro.db.ColumnarPartition``
            shards or any objects exposing the queried methods).  Shipped to
            worker processes once via the pool initializer.
        cache_size: Per-shard results memoised on the coordinator, bounded
            at ``cache_size * n_shards`` entries (0 disables caching).  The
            level-wise miners query each level exactly once per run, so this
            only pays off for consumers that re-query an executor (e.g. an
            interactive session or a re-entrant evaluation); the default is
            kept small so an unlucky workload cannot pin whole levels of
            vectors in memory.
        fanout: Shard fan-out mode (resolved through :func:`resolve_fanout`
            at dispatch time; ``None`` consults ``REPRO_FANOUT``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_views: Optional[Sequence[Any]] = None,
        cache_size: int = 4,
        fanout: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self._shard_views: Optional[List[Any]] = (
            list(shard_views) if shard_views is not None else None
        )
        self._fanout = fanout
        self._pool = None
        self._payload: Optional[List[Any]] = None
        self._segments: List[Any] = []
        self._cache: "OrderedDict[Any, Any]" = OrderedDict()
        self._cache_size = int(cache_size)
        #: number of per-shard results served from the coordinator cache
        self.cache_hits = 0
        #: pools this executor rebuilt after detecting dead workers
        self.pool_restarts = 0

    # -- lifecycle ---------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """True when work is actually distributed to other processes."""
        return self.workers > 1

    @property
    def n_shards(self) -> int:
        return len(self._shard_views) if self._shard_views else 0

    def close(self) -> None:
        """Shut the worker pool down gracefully (idempotent).

        Waits for in-flight tasks to finish; use :meth:`terminate` when the
        run is being abandoned and outstanding work should be dropped.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            _pool_closed()
        self._release_segments()

    def terminate(self) -> None:
        """Kill the worker pool immediately (idempotent).

        The error-path shutdown: a graceful :meth:`close` would block on
        whatever tasks are still queued or running, so an exceptional exit
        SIGTERMs the workers and drops queued work instead of waiting for
        results that will never be consumed.  Also the recovery-path
        shutdown after a worker death — the executor's broken-pool
        handling has already reaped the dead workers by then, so the
        joining ``shutdown`` cannot deadlock (unlike the historical
        ``multiprocessing.Pool.terminate``, which blocked forever on a
        queue lock died-with by a SIGKILLed worker).
        """
        if self._pool is not None:
            for worker in list(self._pool._processes.values() or []):
                if worker.exitcode is None:
                    worker.terminate()
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            _pool_closed()
        self._release_segments()

    def _release_segments(self) -> None:
        """Unlink every shared-memory segment this executor exported.

        Runs on **both** shutdown paths (and is idempotent): a segment that
        outlives its executor is a leaked file in ``/dev/shm`` that no
        process will ever reclaim.  Workers are gone (or moribund) by the
        time this runs, so unlinking cannot strand a reader — attached
        mappings stay valid until the attaching process exits regardless.
        """
        for segment in self._segments:
            segment.destroy()
        self._segments = []
        self._payload = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # A mid-mine exception must not leak (or block on) a live pool:
        # every miner wraps its run in this context manager, so the
        # exceptional path terminates outstanding work instead of joining it.
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent timing
        # Safety net for executors abandoned without close(): drop the pool
        # rather than leaking worker processes until interpreter exit.
        try:
            self.terminate()
        except Exception:
            pass

    def _dispatch_payload(self) -> Optional[List[Any]]:
        """The per-shard descriptor list shipped through the pool initializer.

        Built once per pool lifetime and memoised.  Entry shapes (resolved
        by :func:`_resolve_shard_entry` inside each worker):

        * ``("store", directory, start, stop)`` — a memory-mapped shard;
          workers re-open the manifest.  Always used for mapped shards:
          they are descriptor-sized by construction, and pickling one
          under ``fanout=pickle`` would still ship no data.
        * ``("shm", descriptor)`` — an in-RAM shard exported into a
          shared-memory segment (``auto``/``shm`` fan-out).  The exported
          :class:`~repro.db.store.ShardSegment` handles are retained on
          the executor for unlinking at shutdown.
        * ``("view", view)`` — the legacy whole-view pickle
          (``fanout=pickle``).
        """
        if self._payload is not None:
            return self._payload
        if self._shard_views is None:
            return None
        mode = resolve_fanout(self._fanout)
        payload: List[Any] = []
        for view in self._shard_views:
            source = getattr(view, "store_source", None)
            if source is not None:
                directory, start, stop = source
                payload.append(("store", directory, start, stop))
            elif mode == "pickle":
                payload.append(("view", view))
            else:
                from ..db.store import export_shard_segment

                segment = export_shard_segment(view)
                self._segments.append(segment)
                payload.append(("shm", segment.descriptor))
        self._payload = payload
        return payload

    def dispatch_payload_nbytes(self) -> int:
        """Pickled size of the initializer payload — the bytes a worker
        bootstrap actually ships per process under the spawn start method
        (under fork the descriptors are inherited, costing even less)."""
        return len(pickle.dumps(self._dispatch_payload()))

    def _verify_dispatch_sources(self, payload: Optional[List[Any]]) -> None:
        """Coordinator-side pre-flight of store-backed dispatch entries.

        A store directory that vanished between partitioning and pool
        creation would otherwise fail inside every worker's initializer —
        detect it here and fail the dispatch once, with a clear error.
        """
        for entry in payload or ():
            if isinstance(entry, tuple) and entry and entry[0] == "store":
                from ..db.store import MANIFEST_NAME

                directory = entry[1]
                if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
                    raise RuntimeError(
                        f"store directory vanished before fan-out: {directory!r} "
                        f"has no {MANIFEST_NAME}"
                    )

    def _ensure_pool(self):
        if self._pool is None:
            payload = self._dispatch_payload()
            self._verify_dispatch_sources(payload)
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            # concurrent.futures rather than multiprocessing.Pool: when a
            # worker dies, the executor marks itself broken and fails the
            # in-flight futures promptly, whereas Pool.map blocks forever
            # (the supervisor respawns the worker but the lost task's
            # result never arrives) and Pool.terminate can deadlock on a
            # queue lock the killed worker died holding.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_install_worker_shards,
                initargs=(payload,),
            )
            _pool_opened()
        return self._pool

    def _pool_is_degraded(self) -> bool:
        """Whether the live pool has lost a worker since creation.

        Either symptom suffices: the executor flagged itself broken (a
        death was noticed while futures were pending), or a worker process
        has its ``exitcode`` set (died idle — nothing was pending, so the
        executor has not noticed yet, but the next batch would break it).
        """
        pool = self._pool
        if pool is None:
            return False
        if getattr(pool, "_broken", False):
            return True
        processes = pool._processes
        return bool(processes) and any(
            worker.exitcode is not None for worker in processes.values()
        )

    def _kill_one_worker(self) -> None:
        """SIGKILL one live pool worker (the ``worker-crash`` fault site).

        Deterministically the lowest-PID worker, so a seeded plan kills the
        same pool member every run.
        """
        pool = self._pool
        processes = getattr(pool, "_processes", None) if pool is not None else None
        if not processes:  # pragma: no cover - workers spawn on first submit
            return
        os.kill(min(processes), signal.SIGKILL)

    def _pooled_map(self, task, payloads: List[Any]) -> List[Any]:
        """Pooled ordered map with dead-worker detection, rebuild and resubmit.

        A lost worker fails the batch with ``BrokenProcessPool`` (or, if it
        died idle, leaves a corpse :meth:`_pool_is_degraded` spots); in
        both cases the pool is torn down and rebuilt, and an unfinished
        batch is resubmitted whole.  Safe because every pool task is a
        pure function of its payload — resubmission returns
        bitwise-identical results.  ``terminate()`` runs
        ``_release_segments()``, dropping the memoised dispatch payload, so
        the rebuilt pool re-exports fresh shared-memory segments — nothing
        leaks and nothing dangles.  Rebuilds are bounded: a crash-looping
        environment raises instead of retrying forever.
        """
        if faults.fire("task-latency"):
            time.sleep(faults.latency_seconds())
        restarts = 0
        while True:
            pool = self._ensure_pool()
            results: Optional[List[Any]] = None
            try:
                futures = [pool.submit(task, payload) for payload in payloads]
                if faults.fire("worker-crash"):
                    self._kill_one_worker()
                results = [future.result() for future in futures]
            except BrokenProcessPool:
                results = None
            if results is not None and not self._pool_is_degraded():
                return results
            self.terminate()
            self.pool_restarts += 1
            _pool_restarted()
            if results is not None:
                return results
            restarts += 1
            if restarts > _POOL_MAX_RESTARTS:
                raise RuntimeError(
                    f"worker pool lost workers {restarts} times on one batch "
                    f"(limit {_POOL_MAX_RESTARTS} rebuilds); giving up"
                )

    def _map(self, task, payloads: List[Any]) -> List[Any]:
        """Ordered map over payloads — in-process when serial, pooled otherwise."""
        if not self.parallel or len(payloads) <= 1:
            return [task(payload) for payload in payloads]
        return self._pooled_map(task, payloads)

    # -- shard fan-out -----------------------------------------------------------
    def map_shard_method(self, method: str, *args, **kwargs) -> List[Any]:
        """Call ``shard.<method>(*args, **kwargs)`` on every shard, in shard order.

        Results are memoised per ``(shard, method, arguments)`` so repeated
        level evaluations (e.g. an approximate miner re-querying the level
        its inner engine just produced) are served from the coordinator
        cache.  The cache is a true LRU: a hit refreshes the entry's
        recency (``move_to_end``), so eviction removes the coldest entry
        rather than the oldest-inserted (which is typically the hottest),
        and legitimate ``None`` results are cached like any other value
        instead of being recomputed on every query.
        """
        if not self._shard_views:
            raise RuntimeError("executor was created without shard views")
        key_suffix = (method, _freeze(args), _freeze(kwargs))
        results: List[Any] = [None] * len(self._shard_views)
        missing: List[int] = []
        for index in range(len(self._shard_views)):
            key = (index,) + key_suffix
            hit = self._cache.get(key, _CACHE_MISS) if self._cache_size else _CACHE_MISS
            if hit is not _CACHE_MISS:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                results[index] = hit
            else:
                missing.append(index)
        if missing:
            payloads = [(index, method, args, kwargs) for index in missing]
            if self.parallel and len(missing) > 1:
                fresh = self._pooled_map(_shard_method_task, payloads)
            else:
                fresh = [
                    getattr(self._shard_views[index], method)(*args, **kwargs)
                    for index in missing
                ]
            for index, value in zip(missing, fresh):
                results[index] = value
                if self._cache_size:
                    self._cache[(index,) + key_suffix] = value
                    while len(self._cache) > self._cache_size * max(1, self.n_shards):
                        self._cache.popitem(last=False)
        return results

    def shard_occupancy_counts(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> np.ndarray:
        """Global supporting-row counts from per-shard bitmap popcounts.

        Every shard ANDs its own packed occupancy bitmaps (built lazily per
        worker process and reused across levels); occupancy is row-local,
        so summing the per-shard popcounts reproduces the unpartitioned
        counts exactly.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        per_shard = self.map_shard_method("level_occupancy_counts", candidates)
        totals = np.zeros(len(candidates), dtype=np.int64)
        for counts in per_shard:
            totals += counts
        return totals

    def shard_vectors(
        self, candidates: Sequence[Tuple[int, ...]], min_count: float = 0.0
    ) -> List[np.ndarray]:
        """Compressed probability vectors of a level, extracted shard-parallel.

        Every shard evaluates the whole candidate list over its own rows;
        the per-shard compressed vectors are then concatenated in shard
        (i.e. row) order, which reproduces the unpartitioned view's vectors
        bitwise — per-transaction products are row-local and row order is
        preserved.

        With ``min_count > 0`` and the bitset cascade enabled the kill
        phase is two-step: per-shard occupancy counts are summed into the
        global count first (a shard must never kill against the global
        threshold on local evidence alone), then only the survivors fan out
        for float evaluation — identical kill decisions and survivor
        vectors to the serial cascade.
        """
        # Imported lazily — repro.db pulls this module in via its package
        # __init__, so a top-level import would be circular.
        from ..db.columnar import resolve_bitset
        from ..db.partition import two_phase_kill

        candidates = [tuple(candidate) for candidate in candidates]
        if resolve_bitset(None) and min_count > 0 and candidates:
            return two_phase_kill(
                candidates,
                self.shard_occupancy_counts(candidates),
                min_count,
                self._merged_shard_vectors,
            )
        return self._merged_shard_vectors(candidates)

    def _merged_shard_vectors(
        self, candidates: List[Tuple[int, ...]]
    ) -> List[np.ndarray]:
        per_shard = self.map_shard_method("batch_vectors", candidates)
        return [
            np.concatenate([shard_vectors[i] for shard_vectors in per_shard])
            for i in range(len(candidates))
        ]

    # -- candidate-chunked tail kernels --------------------------------------------
    def should_distribute(self, n_candidates: int) -> bool:
        """Whether a candidate batch is worth splitting across the pool."""
        return self.parallel and n_candidates >= 2

    def dp_tails(self, vectors: Sequence[np.ndarray], min_count: int) -> np.ndarray:
        """Candidate-chunked :func:`frequent_probabilities_dp_batch`.

        Chunks are evaluated with the identical serial kernel; zero-padding
        differences between chunk widths are Bernoulli(0) identity steps of
        the recurrence, so the concatenated result is bitwise equal to the
        single-batch evaluation.
        """
        vectors = list(vectors)
        if not self.should_distribute(len(vectors)):
            return _dp_tail_task((vectors, int(min_count)))
        chunks = even_chunks(vectors, self.workers)
        results = self._map(
            _dp_tail_task, [(list(chunk), int(min_count)) for chunk in chunks]
        )
        return np.concatenate(results) if results else np.zeros(0, dtype=float)

    def dc_tails(self, vectors: Sequence[np.ndarray], min_count: int) -> np.ndarray:
        """Candidate-chunked divide-and-conquer tail evaluation (FFT path)."""
        vectors = list(vectors)
        span = resolve_conv_span()  # coordinator-resolved, shipped to workers
        if not self.should_distribute(len(vectors)):
            return _dc_tail_task((vectors, int(min_count), span))
        chunks = even_chunks(vectors, self.workers)
        results = self._map(
            _dc_tail_task, [(list(chunk), int(min_count), span) for chunk in chunks]
        )
        return np.concatenate(results) if results else np.zeros(0, dtype=float)
