"""Post-processing of mining results: association rules and closed itemsets.

Frequent itemsets are rarely the end product — downstream users derive
association rules from them, or compress them to the closed itemsets.  Both
notions generalise naturally to uncertain data via the expected support
(and, for rules, the ratio of expected supports), following the extensions
the paper points to in its related work (e.g. threshold-based frequent
closed itemsets over probabilistic data, reference [30]).

* An **association rule** ``X -> Y`` (X, Y disjoint, X ∪ Y frequent) has
  *expected confidence* ``esup(X ∪ Y) / esup(X)`` and *lift*
  ``N * esup(X ∪ Y) / (esup(X) * esup(Y))``.
* A frequent itemset is **closed** (under expected support) when no frequent
  proper superset has the same expected support up to a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional

from ..db.database import UncertainDatabase
from .itemset import Itemset
from .results import FrequentItemset, MiningResult

__all__ = ["AssociationRule", "derive_rules", "closed_itemsets"]

#: consequents whose expected support falls at or below this bound are
#: treated as never-occurring: no meaningful rule (or lift) exists for them
_MIN_CONSEQUENT_SUPPORT = 1e-12


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent -> consequent`` over uncertain data."""

    antecedent: Itemset
    consequent: Itemset
    expected_support: float
    expected_confidence: float
    lift: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{set(self.antecedent.items)} -> {set(self.consequent.items)} "
            f"(esup={self.expected_support:.2f}, conf={self.expected_confidence:.2f}, "
            f"lift={self.lift:.2f})"
        )


def derive_rules(
    result: MiningResult,
    database: UncertainDatabase,
    min_confidence: float = 0.6,
    max_consequent_size: Optional[int] = None,
) -> List[AssociationRule]:
    """Derive association rules from the frequent itemsets in ``result``.

    Every frequent itemset of size >= 2 is split into a non-empty antecedent
    and consequent; rules whose expected confidence reaches
    ``min_confidence`` are returned, sorted by descending confidence then
    lift.  The expected supports of the antecedent/consequent are looked up
    in ``result`` when present (they always are when the miner honours
    downward closure) and recomputed from ``database`` otherwise.

    The expected confidence is clamped into ``[0, 1]`` *before* the
    ``min_confidence`` filter, the lift computation and the sort, so the
    ordering, the filter and the stored value all see the same number
    (floating-point division can push the esup ratio of near-equal itemsets
    marginally above 1).  Consequents whose expected support is zero or
    negligible (``<= 1e-12``) yield no rule at all: the lift denominator is
    degenerate there — the historical behaviour emitted ``inf`` lifts, or
    raised ``ZeroDivisionError`` once the ``antecedent * consequent``
    product underflowed — and a consequent that essentially never occurs
    supports no meaningful implication in the first place.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must lie in (0, 1]")
    n_transactions = len(database)
    if n_transactions == 0:
        return []

    def expected_support_of(itemset: Itemset) -> float:
        record = result.get(itemset)
        if record is not None:
            return record.expected_support
        return database.expected_support(itemset)

    rules: List[AssociationRule] = []
    for record in result:
        items = record.itemset.items
        if len(items) < 2:
            continue
        joint_support = record.expected_support
        for antecedent_size in range(1, len(items)):
            for antecedent_items in combinations(items, antecedent_size):
                antecedent = Itemset(antecedent_items)
                consequent = record.itemset.difference(antecedent)
                if max_consequent_size is not None and len(consequent) > max_consequent_size:
                    continue
                antecedent_support = expected_support_of(antecedent)
                if antecedent_support <= 0.0:
                    continue
                confidence = min(joint_support / antecedent_support, 1.0)
                if confidence < min_confidence:
                    continue
                consequent_support = expected_support_of(consequent)
                if consequent_support <= _MIN_CONSEQUENT_SUPPORT:
                    continue
                # Dividing the already-formed confidence keeps the value
                # finite even when both supports are denormal (their product
                # would underflow to zero and raise).
                lift = confidence * (n_transactions / consequent_support)
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        expected_support=joint_support,
                        expected_confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda rule: (-rule.expected_confidence, -rule.lift, rule.antecedent.items))
    return rules


def closed_itemsets(result: MiningResult, tolerance: float = 1e-9) -> MiningResult:
    """Return the closed frequent itemsets of ``result``.

    An itemset is closed when no frequent proper superset has the same
    expected support (up to ``tolerance``).  Closedness is evaluated against
    the itemsets present in ``result``, which is sufficient because every
    superset with equal expected support is itself frequent.
    """
    records = result.itemsets
    closed: List[FrequentItemset] = []
    for record in records:
        is_closed = True
        for other in records:
            if len(other.itemset) <= len(record.itemset):
                continue
            if not record.itemset.issubset(other.itemset):
                continue
            if abs(other.expected_support - record.expected_support) <= tolerance:
                is_closed = False
                break
        if is_closed:
            closed.append(record)
    return MiningResult(closed, result.statistics)
