"""Top-k ranked mining: the ranking algebra and the threshold-raising search.

Threshold mining answers "every itemset above ``min_esup`` (Definition 2)
or ``(min_sup, pft)`` (Definition 4)"; a serving-scale consumer more often
asks "the ``k`` best itemsets" without knowing a good threshold for the
data.  This module houses everything the top-k subsystem shares between the
batch miner (:mod:`repro.algorithms.topk`) and the streaming miner
(:class:`repro.stream.miners.StreamingTopK`):

* the two **rankings** — expected support (Definition 2 ordering) and
  frequentness probability at a fixed ``min_sup`` (Definition 4 ordering) —
  with the deterministic tie-break *score desc, size asc, lexicographic
  items* shared by every consumer;
* :class:`TopKBuffer`, the result buffer whose running k-th best score is
  the **dynamically raised support floor**: once ``k`` itemsets are held,
  any candidate scoring strictly below the floor can never enter (the score
  is the primary sort key), and by anti-monotonicity neither can any of its
  supersets — so the floor prunes exactly like a threshold, but tightens as
  better itemsets arrive;
* :func:`run_topk_search`, the best-first levelwise driver: a priority
  queue of expansion nodes ordered by their descendant score bound; popping
  a node evaluates all of its lexicographic extensions in one batch (the
  same batched :class:`~repro.core.support.SupportEngine` /
  :class:`~repro.stream.index.IncrementalSupportIndex` pass the threshold
  miners use).  The search terminates as soon as the best remaining bound
  falls below the floor;
* :class:`TopKResult` plus the mine-then-truncate helpers
  (:func:`rank_itemsets`, :func:`truncate_result`,
  :func:`truncation_baseline`) that pin top-k output byte-identical to
  full mining followed by truncation — the same fair-baseline discipline
  the paper applies to its protocol comparisons.

Only itemsets with a strictly positive score are ranked: an itemset that
cannot occur (zero expected support, or fewer than ``min_count`` possible
transactions under the probabilistic ranking) is never reported, matching
the threshold miners' conventions.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .itemset import Itemset
from .results import FrequentItemset, MiningResult, MiningStatistics

__all__ = [
    "ALGORITHM_EVALUATORS",
    "CANONICAL_ALGORITHMS",
    "EVALUATOR_RANKINGS",
    "RANKINGS",
    "ScoredCandidate",
    "TopKBuffer",
    "TopKResult",
    "mine_topk",
    "rank_itemsets",
    "ranking_of",
    "resolve_evaluator",
    "run_topk_search",
    "score_of",
    "truncate_result",
    "truncation_baseline",
]

Candidate = Tuple[int, ...]

#: the two ranking orders: Definition 2 (expected support) and Definition 4
#: (frequentness probability at a fixed ``min_sup``)
RANKINGS = ("esup", "probability")

#: evaluator -> ranking it scores under
EVALUATOR_RANKINGS: Dict[str, str] = {
    "esup": "esup",
    "dp": "probability",
    "dc": "probability",
    "normal": "probability",
    "poisson": "probability",
}

#: registered algorithm name -> the evaluator that reproduces its scoring
ALGORITHM_EVALUATORS: Dict[str, str] = {
    "uapriori": "esup",
    "ufp-growth": "esup",
    "uh-mine": "esup",
    "dpb": "dp",
    "dpnb": "dp",
    "dcb": "dc",
    "dcnb": "dc",
    "ndu-apriori": "normal",
    "nduh-mine": "normal",
    "pdu-apriori": "poisson",
}

#: evaluator -> the registered threshold miner used as the
#: mine-then-truncate verification baseline
CANONICAL_ALGORITHMS: Dict[str, str] = {
    "esup": "uapriori",
    "dp": "dpb",
    "dc": "dcb",
    "normal": "ndu-apriori",
    "poisson": "pdu-apriori",
}


def resolve_evaluator(name: str) -> str:
    """Map an evaluator or registered algorithm name to its evaluator key."""
    key = name.lower()
    if key in EVALUATOR_RANKINGS:
        return key
    if key in ALGORITHM_EVALUATORS:
        return ALGORITHM_EVALUATORS[key]
    raise KeyError(
        f"unknown top-k evaluator {name!r}; known evaluators: "
        f"{sorted(EVALUATOR_RANKINGS)}, known algorithms: "
        f"{sorted(ALGORITHM_EVALUATORS)}"
    )


def ranking_of(evaluator: str) -> str:
    """The ranking (``"esup"`` / ``"probability"``) an evaluator scores under."""
    return EVALUATOR_RANKINGS[resolve_evaluator(evaluator)]


def score_of(record: FrequentItemset, ranking: str) -> float:
    """Extract a record's ranking score (esup or frequent probability)."""
    if ranking == "esup":
        return float(record.expected_support)
    if ranking == "probability":
        if record.frequent_probability is None:
            raise ValueError(
                f"record {record.itemset.items} carries no frequent probability; "
                "it cannot be ranked probabilistically"
            )
        return float(record.frequent_probability)
    raise ValueError(f"unknown ranking {ranking!r}; known: {RANKINGS}")


def _rank_key(score: float, items: Candidate) -> Tuple[float, int, Candidate]:
    """Deterministic total order: score desc, then size asc, then lexicographic."""
    return (-score, len(items), items)


class TopKBuffer:
    """The k best records seen so far, with the threshold-raising floor.

    Records are kept sorted by the deterministic rank key (score desc, size
    asc, lexicographic items).  Once ``k`` records are held, :attr:`floor`
    is the k-th best score: a candidate scoring *strictly* below it can
    never displace a held record (the score is the primary key), while a
    candidate tying the floor still can (via the size / lexicographic
    tie-break) and must not be pruned.  The floor never decreases, which is
    what makes it sound as a dynamically raised mining threshold.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._entries: List[Tuple[Tuple[float, int, Candidate], FrequentItemset]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.k

    @property
    def floor(self) -> float:
        """The current prune threshold: the k-th best score (0 until full)."""
        if not self.full:
            return 0.0
        return -self._entries[-1][0][0]

    def offer(self, score: float, record: FrequentItemset) -> bool:
        """Admit ``record`` if it ranks among the k best seen so far."""
        key = _rank_key(float(score), record.itemset.items)
        if self.full and key >= self._entries[-1][0]:
            return False
        bisect.insort(self._entries, (key, record))
        if len(self._entries) > self.k:
            self._entries.pop()
        return True

    def records(self) -> List[FrequentItemset]:
        """The held records in rank order (best first)."""
        return [record for _, record in self._entries]


@dataclass(frozen=True)
class ScoredCandidate:
    """One evaluated candidate of the best-first search.

    ``score`` is the candidate's own ranking score; ``bound`` is an upper
    bound on the score of **every proper superset** (for the exact and
    Poisson evaluators the score itself, by anti-monotonicity; the Normal
    approximation is not anti-monotone, so its bound is coarser).
    ``record`` is ``None`` when the score is not positive (the candidate is
    unrankable but its subtree may still be live).
    """

    items: Candidate
    score: float
    bound: float
    record: Optional[FrequentItemset]


#: evaluate(candidates, buffer) -> one Optional[ScoredCandidate] per input;
#: ``None`` marks a candidate whose whole subtree is provably dead
EvaluateFn = Callable[[List[Candidate], TopKBuffer], List[Optional[ScoredCandidate]]]


def run_topk_search(
    universe: Sequence[int],
    evaluate: EvaluateFn,
    k: int,
    use_floor: bool = True,
    statistics: Optional[MiningStatistics] = None,
) -> TopKBuffer:
    """Best-first levelwise top-k search over lexicographic extensions.

    Every itemset over ``universe`` is generated at most once, as an
    extension of its lexicographic prefix (``(a1 < ... < an)`` is reached
    only from ``(a1 < ... < a_{n-1})``).  A priority queue orders the
    expansion frontier by descendant score bound, best first; popping a node
    evaluates all of its extensions in one batch through ``evaluate``.

    Pruning is driven by the buffer's rising floor (disabled with
    ``use_floor=False``, which turns the search into the exhaustive
    mine-everything reference):

    * a candidate whose *bound* falls strictly below the floor is not
      expanded — no superset can beat the current k-th best, and the floor
      only rises;
    * the search stops outright when the best remaining frontier bound
      falls strictly below the floor;
    * candidates tying the floor stay live: an equal score can still win
      the size / lexicographic tie-break.

    ``evaluate`` receives the live buffer so it can apply its own cheap
    bound filters (Chernoff / Markov) against the current floor before
    paying for an exact evaluation.
    """
    buffer = TopKBuffer(k)
    ordered = sorted(set(int(item) for item in universe))
    if not ordered:
        return buffer
    last_item = ordered[-1]
    frontier: List[Tuple[float, int, Candidate]] = []

    def admit(batch: List[Optional[ScoredCandidate]]) -> None:
        # Offer the whole batch before pushing: the floor each push is
        # checked against is then as tight as this batch can make it.
        for scored in batch:
            if scored is not None and scored.record is not None and scored.score > 0.0:
                buffer.offer(scored.score, scored.record)
        for scored in batch:
            if scored is None or scored.bound <= 0.0:
                continue
            if scored.items[-1] == last_item:
                continue  # no lexicographic extensions exist
            if use_floor and buffer.full and scored.bound < buffer.floor:
                if statistics is not None:
                    statistics.candidates_pruned += 1
                continue
            heapq.heappush(
                frontier, (-scored.bound, len(scored.items), scored.items)
            )

    seeds: List[Candidate] = [(item,) for item in ordered]
    if statistics is not None:
        statistics.candidates_generated += len(seeds)
    admit(evaluate(seeds, buffer))

    while frontier:
        negative_bound, _, items = heapq.heappop(frontier)
        if use_floor and buffer.full and -negative_bound < buffer.floor:
            # The frontier is bound-ordered: nothing left can beat the
            # k-th best, and the floor only rises from here.
            break
        children = [items + (item,) for item in ordered if item > items[-1]]
        if not children:
            continue
        if statistics is not None:
            statistics.candidates_generated += len(children)
        admit(evaluate(children, buffer))
    return buffer


class TopKResult:
    """The ranked outcome of a top-k mining run.

    Unlike :class:`~repro.core.results.MiningResult` (which canonicalises
    by itemset size and items), the records here are in **rank order**:
    score descending, size ascending, lexicographic items — the order the
    serving workload consumes.
    """

    def __init__(
        self,
        records: Sequence[FrequentItemset],
        k: int,
        ranking: str,
        min_count: Optional[int] = None,
        statistics: Optional[MiningStatistics] = None,
    ) -> None:
        self._records = list(records)
        self.k = int(k)
        self.ranking = ranking
        self.min_count = min_count
        self.statistics = statistics or MiningStatistics()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FrequentItemset]:
        return iter(self._records)

    def __getitem__(self, position: int) -> FrequentItemset:
        return self._records[position]

    @property
    def itemsets(self) -> List[FrequentItemset]:
        """All records in rank order (best first)."""
        return list(self._records)

    def itemset_keys(self) -> Set[Itemset]:
        return {record.itemset for record in self._records}

    def scores(self) -> List[float]:
        """The ranking scores, best first."""
        return [score_of(record, self.ranking) for record in self._records]

    def ranked_keys(self) -> List[Tuple[Candidate, float]]:
        """``(items, score)`` pairs in rank order — the equality-test view."""
        return [
            (record.itemset.items, score_of(record, self.ranking))
            for record in self._records
        ]

    def as_mining_result(self) -> MiningResult:
        """Repackage as a canonical :class:`MiningResult` (rank order lost)."""
        return MiningResult(self._records, self.statistics)


def rank_itemsets(
    records: Sequence[FrequentItemset], ranking: str, k: Optional[int] = None
) -> List[FrequentItemset]:
    """Sort records by the deterministic rank key, optionally truncating to ``k``.

    Records whose score is not strictly positive are dropped — they are
    unrankable under the positive-score convention shared with the search.
    """
    ranked = sorted(
        (record for record in records if score_of(record, ranking) > 0.0),
        key=lambda record: _rank_key(score_of(record, ranking), record.itemset.items),
    )
    return ranked if k is None else ranked[: int(k)]


def truncate_result(result, k: int, ranking: str) -> TopKResult:
    """Mine-then-truncate: rank a full mining result and keep the k best."""
    records = rank_itemsets(list(result), ranking, k)
    statistics = getattr(result, "statistics", None)
    return TopKResult(records, k, ranking, statistics=statistics)


def mine_topk(
    database,
    k: int,
    algorithm: str = "uapriori",
    min_sup: Optional[float] = None,
    **options,
) -> TopKResult:
    """Mine the ``k`` highest-ranked itemsets of ``database``.

    Parameters
    ----------
    database:
        The uncertain database to mine.
    k:
        How many itemsets to return (the actual result may be shorter when
        fewer than ``k`` itemsets have a positive score).
    algorithm:
        A registered algorithm name (``"uapriori"``, ``"dpb"``, ...) or an
        evaluator key (``"esup"``, ``"dp"``, ``"dc"``, ``"normal"``,
        ``"poisson"``).  Expected-support algorithms rank by Definition 2
        (expected support); probabilistic algorithms rank by Definition 4
        (frequentness probability at ``min_sup``) using their own
        evaluation strategy.
    min_sup:
        The fixed support level of the probabilistic ranking (ratio or
        absolute count); required for probability evaluators, ignored for
        expected-support ones.
    options:
        Forwarded to :class:`~repro.algorithms.topk.TopKMiner`
        (``backend=``, ``workers=``, ``shards=``, ``use_pruning=``, ...).

    Returns
    -------
    TopKResult
        The ranked itemsets, byte-identical to full threshold-free mining
        followed by truncation under the deterministic tie-break.
    """
    from ..algorithms.topk import TopKMiner  # deferred: avoids import cycle

    miner = TopKMiner(evaluator=resolve_evaluator(algorithm), **options)
    return miner.mine(database, k, min_sup=min_sup)


def truncation_baseline(
    database,
    k: int,
    evaluator: str,
    min_sup: Optional[float] = None,
    reference: Optional[TopKResult] = None,
    min_esup: Optional[float] = None,
    pft: Optional[float] = None,
    **options,
) -> TopKResult:
    """Mine-then-truncate through the registered threshold miner.

    The fair baseline the subsystem is pinned against: run the canonical
    threshold miner of ``evaluator`` (see :data:`CANONICAL_ALGORITHMS`),
    rank its full result and truncate to ``k``.  The mining threshold must
    lie below the k-th best score for the truncation to equal threshold-free
    top-k; pass an explicit ``min_esup`` / ``pft``, or pass the top-k
    result being verified as ``reference`` and the threshold is
    self-calibrated just below its worst held score (with a relative margin
    absorbing the ratio/absolute round-trip).

    The ``normal`` evaluator is the exception: its score is not
    anti-monotone, so NDUApriori's own prefilter and downward closure are
    unsound as a verification oracle — that family is verified against the
    exhaustive same-kernel search instead
    (:func:`repro.algorithms.topk.exhaustive_topk`).
    """
    from .miner import mine  # deferred: avoids import cycle

    evaluator = resolve_evaluator(evaluator)
    ranking = EVALUATOR_RANKINGS[evaluator]
    algorithm = CANONICAL_ALGORITHMS[evaluator]
    n_transactions = len(database)

    if evaluator == "normal":
        # NDUApriori's Markov item prefilter and its Apriori downward
        # closure both assume an anti-monotone score; the Normal
        # approximation is not (a superset's variance can shrink faster
        # than its expectation), so a threshold run at the calibrated pft
        # can legitimately miss genuine top-k members.  The sound
        # mine-everything oracle for this family is the exhaustive search
        # over the same scoring kernels with the floor disabled.
        from ..algorithms.topk import exhaustive_topk  # deferred: import cycle

        if min_sup is None:
            raise ValueError("the probabilistic baseline requires min_sup")
        return exhaustive_topk(
            database, k, evaluator="normal", min_sup=min_sup, **options
        )

    calibration: Optional[float] = None
    if reference is not None and len(reference):
        calibration = min(reference.scores())

    if ranking == "esup":
        if min_esup is None:
            if calibration is not None:
                # Ratio strictly below the worst held score; the margin
                # covers the ratio -> absolute float round-trip, and the
                # nextafter fallback keeps the threshold valid (positive)
                # even for denormal k-th scores.
                ratio = min(
                    calibration * (1.0 - 1e-9) / max(n_transactions, 1), 1.0
                )
                min_esup = ratio if ratio > 0.0 else math.nextafter(0.0, 1.0)
            else:
                min_esup = 1e-12
        result = mine(database, algorithm=algorithm, min_esup=min_esup, **options)
    else:
        if min_sup is None:
            raise ValueError("the probabilistic baseline requires min_sup")
        if pft is None:
            if calibration is not None:
                # Strictly below the k-th score: Definition 4 thresholds
                # with `Pr > pft`, so a pft that rounds back up to the
                # calibration score would exclude the k-th record.  The
                # nextafter term guarantees strictness even when the
                # relative margin underflows (denormal scores).
                pft = min(
                    calibration * (1.0 - 1e-9),
                    math.nextafter(calibration, 0.0),
                    1.0 - 1e-12,
                )
                if pft <= 0.0:
                    pft = math.nextafter(0.0, 1.0)
            else:
                pft = 1e-12
        if evaluator == "poisson":
            options = {"report_probabilities": True, **options}
        result = mine(
            database, algorithm=algorithm, min_sup=min_sup, pft=pft, **options
        )
    return truncate_result(result, k, ranking)
