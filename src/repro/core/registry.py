"""Registry of mining algorithms.

Algorithms register themselves under a short name (``"uapriori"``,
``"dcb"``, ...) so the unified front-end (:mod:`repro.core.miner`), the
evaluation harness and the CLI can instantiate them uniformly.  Each entry
records the algorithm family, which determines the thresholds it expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["AlgorithmInfo", "register_algorithm", "algorithm_names", "get_algorithm", "algorithms_in_family"]

FAMILIES = ("expected", "exact", "approximate")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata describing one registered algorithm."""

    name: str
    family: str
    factory: Callable[..., object]
    description: str = ""


_REGISTRY: Dict[str, AlgorithmInfo] = {}


def register_algorithm(
    name: str, family: str, factory: Callable[..., object], description: str = ""
) -> None:
    """Register an algorithm factory under ``name``.

    ``family`` must be one of ``expected`` (expected-support-based miners),
    ``exact`` (exact probabilistic miners) or ``approximate`` (approximate
    probabilistic miners).
    """
    if family not in FAMILIES:
        raise ValueError(f"family must be one of {FAMILIES}, got {family!r}")
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = AlgorithmInfo(key, family, factory, description)


def algorithm_names() -> List[str]:
    """Return the sorted names of all registered algorithms."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def algorithms_in_family(family: str) -> List[str]:
    """Return the names of the algorithms belonging to ``family``."""
    _ensure_loaded()
    return sorted(info.name for info in _REGISTRY.values() if info.family == family)


def get_algorithm(name: str) -> AlgorithmInfo:
    """Return the registry entry for ``name`` (case-insensitive)."""
    _ensure_loaded()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown algorithm {name!r}; known: {algorithm_names()}")
    return _REGISTRY[key]


def _ensure_loaded() -> None:
    """Import the algorithms package so its registrations run."""
    if not _REGISTRY:
        from .. import algorithms  # noqa: F401  (import for side effect)
