"""Mining thresholds shared by every algorithm.

The paper expresses thresholds as *ratios* of the database size —
``min_esup`` for expected-support mining and ``(min_sup, pft)`` for
probabilistic mining — but the algorithms internally work with absolute
counts (``N * ratio``).  These helpers centralise the conversion so the
rounding convention is identical across all miners, one of the "uniform
baseline implementation" points the paper insists on.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ExpectedSupportThreshold",
    "ProbabilisticThreshold",
    "QueryThresholds",
]


@dataclass(frozen=True)
class QueryThresholds:
    """The query's thresholds, in one uniform planner-facing shape.

    Every :class:`~repro.core.search.MinerSpec` exposes its threshold
    through this type regardless of family, so consumers that reason
    about query selectivity — the cost-model planner estimating search
    depth, the service layer's monotonicity cache — need not know the
    Definition-2 / Definition-4 split.  Both fields stay in the "ratio or
    absolute count" convention of the underlying threshold classes;
    :meth:`support_ratio` normalizes the support threshold to a ratio.
    """

    #: ``min_esup`` (expected family) or ``min_sup`` (probabilistic family)
    min_support: Optional[float] = None
    #: the probabilistic frequentness threshold; None for the expected family
    pft: Optional[float] = None

    def support_ratio(self, n_transactions: int) -> Optional[float]:
        """The support threshold as a ratio of the database size."""
        if self.min_support is None or n_transactions <= 0:
            return None
        return _absolute_count(self.min_support, n_transactions) / n_transactions


def _absolute_count(ratio_or_count: float, n_transactions: int) -> float:
    """Interpret a threshold given either as a ratio in [0, 1] or as a count.

    The boundary value ``1.0`` is inherently ambiguous: it could mean the
    ratio 1.0 ("in every transaction", i.e. ``N``) or the absolute count 1.
    It is deliberately kept on the **ratio** side — ``1.0 -> 1.0 * N`` —
    because ``0 < x <= 1`` reads as a ratio everywhere else in the library,
    but a :class:`UserWarning` flags the ambiguous input so a caller who
    meant "one transaction" notices; the first value on the count side is
    anything strictly above 1 (e.g. ``1.0 + 1e-9``).
    """
    if ratio_or_count < 0:
        raise ValueError("thresholds must be non-negative")
    if ratio_or_count == 1.0:
        warnings.warn(
            "threshold 1.0 is ambiguous and is interpreted as the ratio 1.0 "
            "(i.e. N, every transaction), not as the absolute count 1; pass "
            "a value > 1 for absolute counts or a ratio < 1",
            UserWarning,
            stacklevel=3,
        )
    if ratio_or_count <= 1.0:
        return ratio_or_count * n_transactions
    return float(ratio_or_count)


@dataclass(frozen=True)
class ExpectedSupportThreshold:
    """The ``min_esup`` threshold of Definition 2.

    ``value`` may be a ratio (``0 < value <= 1``) or an absolute expected
    support (``value > 1``); :meth:`absolute` resolves it for a database of
    ``n_transactions`` transactions.  The boundary ``value == 1.0`` is read
    as the **ratio** interpretation (``1.0 * N``, every transaction), not
    as the absolute expected support 1 — the exact-1.0 input additionally
    emits a :class:`UserWarning` because it is ambiguous; the smallest
    absolute input is anything strictly above 1.
    """

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("min_esup must be non-negative")

    def absolute(self, n_transactions: int) -> float:
        """Minimum expected support as an absolute value."""
        return _absolute_count(self.value, n_transactions)

    def query(self) -> QueryThresholds:
        """This threshold in the uniform planner-facing shape."""
        return QueryThresholds(min_support=self.value)


@dataclass(frozen=True)
class ProbabilisticThreshold:
    """The ``(min_sup, pft)`` pair of Definition 4.

    ``min_sup`` may be a ratio (``0 < min_sup <= 1``) or an absolute count
    (``min_sup > 1``); ``pft`` is the probabilistic frequentness threshold
    in ``(0, 1)``.  The boundary ``min_sup == 1.0`` is read as the
    **ratio** interpretation (``1.0 * N``, every transaction), not as the
    absolute count 1 — the exact-1.0 input additionally emits a
    :class:`UserWarning` because it is ambiguous; the smallest absolute
    input is anything strictly above 1.
    """

    min_sup: float
    pft: float = 0.9

    def __post_init__(self) -> None:
        if self.min_sup < 0:
            raise ValueError("min_sup must be non-negative")
        if not 0.0 < self.pft < 1.0:
            raise ValueError("pft must lie strictly between 0 and 1")

    def min_count(self, n_transactions: int) -> int:
        """Minimum support as an absolute transaction count.

        The paper requires ``sup(X) >= N * min_sup``; the smallest integer
        support satisfying that inequality is ``ceil(N * min_sup)``.
        """
        absolute = _absolute_count(self.min_sup, n_transactions)
        return int(math.ceil(absolute - 1e-12))

    def query(self) -> QueryThresholds:
        """This threshold pair in the uniform planner-facing shape."""
        return QueryThresholds(min_support=self.min_sup, pft=self.pft)
