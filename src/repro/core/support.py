"""The support distribution of an itemset over an uncertain database.

Under the independence assumption, the support of an itemset ``X`` is the
sum of ``N`` independent Bernoulli variables — one per transaction, with
success probability ``p_i(X)`` — i.e. a **Poisson-Binomial** random
variable.  Every algorithm in the paper reduces to a different way of
querying this distribution:

* expected-support miners use only its expectation,
* exact probabilistic miners evaluate its upper tail exactly
  (dynamic programming or divide-and-conquer convolution),
* approximate miners replace the tail with a Poisson or Normal
  approximation parameterised by the expectation (and variance),
* the Chernoff bound gives a cheap upper bound on the tail used for
  pruning.

:class:`SupportDistribution` packages all of these views behind one object;
the module-level functions expose the raw numerics for reuse and testing.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "SupportDistribution",
    "SupportEngine",
    "exact_pmf_dynamic_programming",
    "exact_pmf_divide_conquer",
    "frequent_probability_dynamic_programming",
    "frequent_probabilities_dp_batch",
    "pack_probability_matrix",
    "poisson_tail_probability",
    "normal_tail_probability",
    "chernoff_upper_bound",
    "poisson_lambda_for_threshold",
]

# The Normal CDF is evaluated via math.erf to avoid importing scipy in the
# hot path; scipy is still used by the higher-level statistics helpers.
_SQRT2 = math.sqrt(2.0)


def _standard_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def exact_pmf_dynamic_programming(probabilities: Sequence[float]) -> np.ndarray:
    """Exact Poisson-Binomial PMF by the classic O(N^2) dynamic programme.

    ``result[k]`` is the probability that exactly ``k`` of the ``N``
    transactions contain the itemset.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    n = len(probabilities)
    pmf = np.zeros(n + 1, dtype=float)
    pmf[0] = 1.0
    for index, probability in enumerate(probabilities):
        # Shift the distribution by one with probability `probability`.
        upper = index + 1
        pmf[1 : upper + 1] = (
            pmf[1 : upper + 1] * (1.0 - probability) + pmf[:upper] * probability
        )
        pmf[0] *= 1.0 - probability
    return pmf


def _convolve(left: np.ndarray, right: np.ndarray, use_fft: bool) -> np.ndarray:
    if use_fft and (len(left) > 64 or len(right) > 64):
        size = len(left) + len(right) - 1
        fft_size = 1 << (size - 1).bit_length()
        spectrum = np.fft.rfft(left, fft_size) * np.fft.rfft(right, fft_size)
        result = np.fft.irfft(spectrum, fft_size)[:size]
        # FFT round-off can produce tiny negative values; clip them away.
        np.clip(result, 0.0, None, out=result)
        return result
    return np.convolve(left, right)


def exact_pmf_divide_conquer(
    probabilities: Sequence[float], use_fft: bool = True
) -> np.ndarray:
    """Exact Poisson-Binomial PMF by divide-and-conquer convolution.

    The database is split recursively; the PMFs of the halves are combined
    by polynomial multiplication.  With FFT-based convolution the total cost
    is O(N log^2 N), the strategy behind the paper's DC algorithm.
    """
    probabilities = np.asarray(probabilities, dtype=float)

    def _recurse(chunk: np.ndarray) -> np.ndarray:
        if len(chunk) == 0:
            return np.array([1.0])
        if len(chunk) == 1:
            p = float(chunk[0])
            return np.array([1.0 - p, p])
        middle = len(chunk) // 2
        return _convolve(_recurse(chunk[:middle]), _recurse(chunk[middle:]), use_fft)

    pmf = _recurse(probabilities)
    # Normalise away accumulated floating point drift.
    total = pmf.sum()
    if total > 0:
        pmf = pmf / total
    return pmf


def frequent_probability_dynamic_programming(
    probabilities: Sequence[float], min_count: int
) -> float:
    """``Pr[sup(X) >= min_count]`` via the paper's DP recurrence.

    This follows the recurrence of Bernecker et al. used by the DP miner:
    ``Pr_{>=i,j} = Pr_{>=i-1,j-1} * p_j + Pr_{>=i,j-1} * (1 - p_j)`` with the
    boundary cases ``Pr_{>=0,j} = 1`` and ``Pr_{>=i,j} = 0`` for ``i > j``.
    The cost is O(N * min_count), cheaper than the full PMF when
    ``min_count`` is small.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    n = len(probabilities)
    min_count = int(min_count)
    if min_count <= 0:
        return 1.0
    if min_count > n:
        return 0.0
    # previous[i] = Pr[at least i occurrences among the first j transactions]
    previous = np.zeros(min_count + 1, dtype=float)
    previous[0] = 1.0
    for j in range(1, n + 1):
        p = probabilities[j - 1]
        current = np.empty_like(previous)
        current[0] = 1.0
        upper = min(j, min_count)
        current[1 : upper + 1] = (
            previous[: upper] * p + previous[1 : upper + 1] * (1.0 - p)
        )
        if upper < min_count:
            current[upper + 1 :] = 0.0
        previous = current
    return float(previous[min_count])


def poisson_tail_probability(expected_support: float, min_count: int) -> float:
    """Poisson approximation of ``Pr[sup(X) >= min_count]``.

    The Poisson-Binomial variable is approximated by a Poisson variable with
    rate ``lambda = esup(X)`` (Le Cam's theorem); the tail is one minus the
    Poisson CDF at ``min_count - 1``.
    """
    if min_count <= 0:
        return 1.0
    lam = max(float(expected_support), 0.0)
    if lam == 0.0:
        return 0.0
    # Survival function computed with a numerically stable running term.
    term = math.exp(-lam)
    cdf = term
    for k in range(1, int(min_count)):
        term *= lam / k
        cdf += term
    return float(max(0.0, min(1.0, 1.0 - cdf)))


def normal_tail_probability(
    expected_support: float, variance: float, min_count: int
) -> float:
    """Normal approximation of ``Pr[sup(X) >= min_count]`` with continuity correction.

    Follows the paper's formula ``Pr(X) ~ Phi((esup - (min_count - 0.5)) / sqrt(Var))``
    (equivalently one minus the CDF evaluated at the corrected threshold).
    """
    if min_count <= 0:
        return 1.0
    if variance <= 0.0:
        # Degenerate distribution: all mass at the expectation.
        return 1.0 if expected_support >= min_count - 0.5 else 0.0
    z = (expected_support - (min_count - 0.5)) / math.sqrt(variance)
    return float(_standard_normal_cdf(z))


def chernoff_upper_bound(expected_support: float, min_count: int) -> float:
    """Chernoff upper bound on ``Pr[sup(X) >= min_count]`` (Lemma 1).

    Returns 1.0 when the bound is uninformative (``min_count`` does not
    exceed the expectation), so callers can use the value directly as a
    conservative estimate of the frequent probability.
    """
    mu = float(expected_support)
    if mu <= 0.0:
        return 0.0 if min_count > 0 else 1.0
    delta = (min_count - mu - 1.0) / mu
    if delta <= 0.0:
        return 1.0
    if delta > 2.0 * math.e - 1.0:
        return float(2.0 ** (-delta * mu))
    return float(math.exp(-(delta * delta) * mu / 4.0))


def poisson_lambda_for_threshold(min_count: int, pft: float) -> float:
    """Smallest Poisson rate whose tail at ``min_count`` exceeds ``pft``.

    PDUApriori converts the probabilistic threshold ``(min_count, pft)`` into
    an equivalent *expected support* threshold: because the Poisson tail is
    monotonically increasing in ``lambda``, a binary search finds the rate at
    which ``Pr[Poisson(lambda) >= min_count] = pft``; itemsets whose expected
    support reaches that rate are (approximately) probabilistic frequent.
    """
    if not 0.0 < pft < 1.0:
        raise ValueError("pft must lie strictly between 0 and 1")
    if min_count <= 0:
        return 0.0
    low, high = 0.0, float(max(min_count, 1))
    while poisson_tail_probability(high, min_count) <= pft:
        high *= 2.0
        if high > 1e9:  # pragma: no cover - defensive guard
            break
    for _ in range(80):
        middle = 0.5 * (low + high)
        if poisson_tail_probability(middle, min_count) > pft:
            high = middle
        else:
            low = middle
    return high


def pack_probability_matrix(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """Zero-pad per-candidate probability vectors into one matrix.

    A padded zero is a Bernoulli(0) transaction, the identity of every
    support-distribution recurrence, so batched evaluations over the padded
    matrix agree bitwise with per-vector evaluations.
    """
    arrays = [np.asarray(vector, dtype=float) for vector in vectors]
    width = max((len(array) for array in arrays), default=0)
    matrix = np.zeros((len(arrays), width), dtype=float)
    for index, array in enumerate(arrays):
        matrix[index, : len(array)] = array
    return matrix


def frequent_probabilities_dp_batch(
    matrix: np.ndarray, min_count: int
) -> np.ndarray:
    """Batched ``Pr[sup(X) >= min_count]`` via the DP recurrence.

    ``matrix`` holds one (possibly zero-padded) probability vector per row;
    the classic O(N * min_count) recurrence is advanced over the transaction
    axis with every candidate updated in one vectorized step, turning the
    per-candidate Python loop into ``max_len`` NumPy operations shared by
    the whole level.  Results are bitwise identical to
    :func:`frequent_probability_dynamic_programming` applied row by row.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    n_candidates, width = matrix.shape
    min_count = int(min_count)
    if min_count <= 0:
        return np.ones(n_candidates, dtype=float)
    if min_count > width:
        return np.zeros(n_candidates, dtype=float)
    # state[c, i] = Pr[at least i occurrences among the transactions seen so far]
    state = np.zeros((n_candidates, min_count + 1), dtype=float)
    state[:, 0] = 1.0
    for j in range(width):
        p = matrix[:, j : j + 1]
        state[:, 1:] = state[:, :-1] * p + state[:, 1:] * (1.0 - p)
    return state[:, min_count].copy()


class SupportEngine:
    """Batched support-distribution queries for one level of candidates.

    The engine is the shared numerical substrate of every miner: it takes
    the per-candidate probability vectors of a whole Apriori level (one row
    per candidate, zero-padded to a matrix) and answers every question the
    eight algorithms ask — expected support, variance, exact DP /
    divide-and-conquer tails, and the Normal / Poisson / Chernoff
    approximations — with the expensive paths vectorized across candidates.

    Parameters
    ----------
    vectors:
        One probability vector per candidate.  Compressed (zeros-omitted)
        vectors are accepted and preferred: padding zeros are identity
        elements of every computation, and the non-zero count doubles as the
        maximum attainable support of each candidate.
    expected, variances:
        Optional precomputed per-candidate moments.  A caller subsetting an
        already-evaluated level (the survivor batch of the Apriori miners)
        passes them to avoid re-deriving the reductions.
    """

    def __init__(
        self,
        vectors: Sequence[Sequence[float]],
        expected: Optional[Sequence[float]] = None,
        variances: Optional[Sequence[float]] = None,
    ) -> None:
        self._vectors = [np.asarray(vector, dtype=float) for vector in vectors]
        self._matrix: Optional[np.ndarray] = None
        self._expected: Optional[np.ndarray] = (
            np.asarray(expected, dtype=float) if expected is not None else None
        )
        self._variance: Optional[np.ndarray] = (
            np.asarray(variances, dtype=float) if variances is not None else None
        )

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def vectors(self) -> Sequence[np.ndarray]:
        return self._vectors

    @property
    def matrix(self) -> np.ndarray:
        """The zero-padded probability matrix (one row per candidate)."""
        if self._matrix is None:
            self._matrix = pack_probability_matrix(self._vectors)
        return self._matrix

    # -- moments (vectorized) ----------------------------------------------------------
    def expected_supports(self) -> np.ndarray:
        """``esup(X)`` of every candidate."""
        if self._expected is None:
            self._expected = np.array(
                [float(vector.sum()) for vector in self._vectors], dtype=float
            )
        return self._expected

    def variances(self) -> np.ndarray:
        """``Var[sup(X)]`` of every candidate."""
        if self._variance is None:
            self._variance = np.array(
                [float((vector * (1.0 - vector)).sum()) for vector in self._vectors],
                dtype=float,
            )
        return self._variance

    def nonzero_counts(self) -> np.ndarray:
        """Number of transactions that can contain each candidate at all.

        This is the maximum attainable support: candidates whose count falls
        below ``min_count`` have frequent probability exactly zero, the
        cheap filter every probabilistic miner applies first.
        """
        return np.array(
            [int(np.count_nonzero(vector)) for vector in self._vectors], dtype=np.int64
        )

    # -- exact tails -------------------------------------------------------------------
    def frequent_probabilities(
        self, min_count: int, method: str = "dynamic_programming"
    ) -> np.ndarray:
        """Exact ``Pr[sup(X) >= min_count]`` of every candidate.

        ``"dynamic_programming"`` advances the whole level through the
        vectorized DP recurrence; ``"divide_conquer"`` assembles each
        candidate's PMF by FFT convolution (inherently per-candidate, so it
        loops, but each convolution is NumPy-heavy).
        """
        min_count = int(min_count)
        if method == "dynamic_programming":
            return frequent_probabilities_dp_batch(self.matrix, min_count)
        if method == "divide_conquer":
            results = np.empty(len(self._vectors), dtype=float)
            for index, vector in enumerate(self._vectors):
                if min_count <= 0:
                    results[index] = 1.0
                elif min_count > len(vector):
                    results[index] = 0.0
                else:
                    tail = float(exact_pmf_divide_conquer(vector)[min_count:].sum())
                    results[index] = max(0.0, min(1.0, tail))
            return results
        raise ValueError(f"unknown method {method!r}")

    # -- approximations ----------------------------------------------------------------
    # The approximation tails are O(1) per candidate once the moments exist;
    # the batched win comes from the vectorized moment reductions above.  The
    # tails themselves deliberately reuse the scalar kernels so the values
    # stay bitwise identical to the per-candidate path.
    def normal_frequent_probabilities(self, min_count: int) -> np.ndarray:
        """Normal approximation (continuity-corrected) of every candidate's tail."""
        expected = self.expected_supports()
        variance = self.variances()
        return np.array(
            [
                normal_tail_probability(float(e), float(v), min_count)
                for e, v in zip(expected, variance)
            ],
            dtype=float,
        )

    def poisson_frequent_probabilities(self, min_count: int) -> np.ndarray:
        """Poisson approximation of every candidate's tail."""
        return np.array(
            [
                poisson_tail_probability(float(e), min_count)
                for e in self.expected_supports()
            ],
            dtype=float,
        )

    def chernoff_bounds(self, min_count: int) -> np.ndarray:
        """Chernoff upper bound on every candidate's frequent probability."""
        return np.array(
            [
                chernoff_upper_bound(float(e), min_count)
                for e in self.expected_supports()
            ],
            dtype=float,
        )


class SupportDistribution:
    """All views of the support distribution of one itemset.

    Parameters
    ----------
    probabilities:
        Vector of per-transaction occurrence probabilities ``p_i(X)``.
    """

    def __init__(self, probabilities: Sequence[float]) -> None:
        self._probabilities = np.asarray(probabilities, dtype=float)
        if np.any((self._probabilities < 0.0) | (self._probabilities > 1.0)):
            raise ValueError("per-transaction probabilities must lie in [0, 1]")
        self._pmf: Optional[np.ndarray] = None

    # -- moments ---------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return len(self._probabilities)

    @property
    def probabilities(self) -> np.ndarray:
        return self._probabilities

    @property
    def expected_support(self) -> float:
        """First moment: ``esup(X)``."""
        return float(self._probabilities.sum())

    @property
    def variance(self) -> float:
        """Second central moment of the support."""
        return float((self._probabilities * (1.0 - self._probabilities)).sum())

    # -- exact distribution ------------------------------------------------------------
    def pmf(self, method: str = "divide_conquer") -> np.ndarray:
        """Exact probability mass function of the support.

        ``method`` is ``"divide_conquer"`` (FFT-accelerated, default) or
        ``"dynamic_programming"``.  The result is cached.
        """
        if self._pmf is None:
            if method == "dynamic_programming":
                self._pmf = exact_pmf_dynamic_programming(self._probabilities)
            elif method == "divide_conquer":
                self._pmf = exact_pmf_divide_conquer(self._probabilities)
            else:
                raise ValueError(f"unknown method {method!r}")
        return self._pmf

    def pmf_as_dict(self) -> Dict[int, float]:
        """The PMF as ``{support: probability}`` with negligible entries removed."""
        return {
            support: float(probability)
            for support, probability in enumerate(self.pmf())
            if probability > 1e-12
        }

    def frequent_probability(self, min_count: int, method: str = "divide_conquer") -> float:
        """Exact ``Pr[sup(X) >= min_count]``.

        ``method`` selects the evaluation strategy: ``"divide_conquer"``
        (full PMF, then tail sum), ``"dynamic_programming"`` (the paper's DP
        recurrence, does not materialise the full PMF).
        """
        min_count = int(min_count)
        if min_count <= 0:
            return 1.0
        if min_count > self.n_transactions:
            return 0.0
        if method == "dynamic_programming":
            return frequent_probability_dynamic_programming(self._probabilities, min_count)
        tail = float(self.pmf(method)[min_count:].sum())
        return float(max(0.0, min(1.0, tail)))

    # -- approximations -----------------------------------------------------------------
    def poisson_frequent_probability(self, min_count: int) -> float:
        """Poisson approximation of the frequent probability."""
        return poisson_tail_probability(self.expected_support, min_count)

    def normal_frequent_probability(self, min_count: int) -> float:
        """Normal approximation (with continuity correction) of the frequent probability."""
        return normal_tail_probability(self.expected_support, self.variance, min_count)

    def chernoff_bound(self, min_count: int) -> float:
        """Chernoff upper bound on the frequent probability."""
        return chernoff_upper_bound(self.expected_support, min_count)
