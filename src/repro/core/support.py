"""The support distribution of an itemset over an uncertain database.

Under the independence assumption, the support of an itemset ``X`` is the
sum of ``N`` independent Bernoulli variables — one per transaction, with
success probability ``p_i(X)`` — i.e. a **Poisson-Binomial** random
variable.  Every algorithm in the paper reduces to a different way of
querying this distribution:

* expected-support miners use only its expectation,
* exact probabilistic miners evaluate its upper tail exactly
  (dynamic programming or divide-and-conquer convolution),
* approximate miners replace the tail with a Poisson or Normal
  approximation parameterised by the expectation (and variance),
* the Chernoff bound gives a cheap upper bound on the tail used for
  pruning.

:class:`SupportDistribution` packages all of these views behind one object;
the module-level functions expose the raw numerics for reuse and testing.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..plan.spec import resolve_knob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .parallel import ParallelExecutor

__all__ = [
    "MergeableSupportStats",
    "SupportDistribution",
    "SupportEngine",
    "convolve_pmfs",
    "resolve_conv_span",
    "dc_tail_probabilities",
    "exact_pmf_dynamic_programming",
    "exact_pmf_divide_conquer",
    "frequent_probability_dynamic_programming",
    "frequent_probabilities_dp_batch",
    "pack_probability_matrix",
    "DP_BLOCK_BYTES_ENV",
    "resolve_dp_block_bytes",
    "PMF_RENORMALIZE_TOLERANCE",
    "poisson_tail_probability",
    "normal_tail_probability",
    "chernoff_upper_bound",
    "markov_upper_bound",
    "cheap_tail_upper_bound",
    "staged_tail_filter",
    "poisson_lambda_for_threshold",
]

# The Normal CDF is evaluated via math.erf to avoid importing scipy in the
# hot path; scipy is still used by the higher-level statistics helpers.
_SQRT2 = math.sqrt(2.0)


def _standard_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def exact_pmf_dynamic_programming(probabilities: Sequence[float]) -> np.ndarray:
    """Exact Poisson-Binomial PMF by the classic O(N^2) dynamic programme.

    Implements the incremental convolution ``f_j = f_{j-1} * [1 - p_j, p_j]``:
    after absorbing transaction ``j``, ``f_j[k]`` is the probability that
    exactly ``k`` of the first ``j`` transactions contain the itemset.

    Args:
        probabilities: Per-transaction occurrence probabilities ``p_i(X)``
            (zeros may be omitted — they shift nothing).

    Returns:
        Array of length ``N + 1``; ``result[k] = Pr[sup(X) = k]``.

    >>> exact_pmf_dynamic_programming([0.5, 0.5]).tolist()
    [0.25, 0.5, 0.25]
    """
    probabilities = np.asarray(probabilities, dtype=float)
    n = len(probabilities)
    pmf = np.zeros(n + 1, dtype=float)
    pmf[0] = 1.0
    for index, probability in enumerate(probabilities):
        # Shift the distribution by one with probability `probability`.
        upper = index + 1
        pmf[1 : upper + 1] = (
            pmf[1 : upper + 1] * (1.0 - probability) + pmf[:upper] * probability
        )
        pmf[0] *= 1.0 - probability
    return pmf


def resolve_conv_span(span: Optional[int] = None) -> int:
    """Resolve the direct-vs-FFT convolution crossover (``conv_span`` knob).

    Operands up to this length convolve directly (exactly); strictly longer
    ones go through the FFT.  The default of 512 is the measured crossover
    (``benchmarks/bench_ablation_convolution.py`` span sweep: direct wins
    up to ~512-entry operands on this NumPy, the FFT wins 3-6x above it).
    """
    return resolve_knob("conv_span", span)


def convolve_pmfs(
    left: np.ndarray,
    right: np.ndarray,
    use_fft: bool = True,
    span: Optional[int] = None,
) -> np.ndarray:
    """Convolve two support PMFs (the merge of independent disjoint row sets).

    The shared kernel of the DC miner, :class:`MergeableSupportStats` and
    the streaming :class:`~repro.stream.index.IncrementalSupportIndex`.
    Operands longer than the ``conv_span`` plan knob (default 512 — the
    measured crossover) go through the FFT when ``use_fft`` is set; shorter
    ones use exact direct convolution.  ``span`` pins the crossover
    explicitly (batch callers resolve the knob once and pass it down).

    >>> convolve_pmfs(np.array([0.5, 0.5]), np.array([0.5, 0.5])).tolist()
    [0.25, 0.5, 0.25]
    """
    if use_fft:
        if span is None:
            span = resolve_conv_span()
        use_fft = len(left) > span or len(right) > span
    if use_fft:
        size = len(left) + len(right) - 1
        fft_size = 1 << (size - 1).bit_length()
        spectrum = np.fft.rfft(left, fft_size) * np.fft.rfft(right, fft_size)
        result = np.fft.irfft(spectrum, fft_size)[:size]
        # FFT round-off can produce tiny negative values; clip them away.
        np.clip(result, 0.0, None, out=result)
        return result
    return np.convolve(left, right)


#: historical internal alias, kept for in-repo callers
_convolve = convolve_pmfs


#: relative mass drift beyond which :func:`exact_pmf_divide_conquer`
#: renormalises its result (drift below this is left untouched so the DC
#: tails stay directly comparable with the DP recurrence's)
PMF_RENORMALIZE_TOLERANCE = 1e-9


def exact_pmf_divide_conquer(
    probabilities: Sequence[float],
    use_fft: bool = True,
    span: Optional[int] = None,
) -> np.ndarray:
    """Exact Poisson-Binomial PMF by divide-and-conquer convolution.

    The database is split recursively; the PMFs of the halves are combined
    by polynomial multiplication ``pmf = pmf_left (*) pmf_right`` (support
    of a union of disjoint transaction sets is the sum of independent
    supports).  With FFT-based convolution the total cost is O(N log^2 N),
    the strategy behind the paper's DC algorithm — and the same identity the
    partition-parallel :class:`MergeableSupportStats` uses to merge exact
    PMFs across row shards.

    Negative FFT round-off is always clipped away, but the total mass is
    renormalised only when it drifts from 1 by more than
    :data:`PMF_RENORMALIZE_TOLERANCE`.  An unconditional renormalisation
    would silently mask genuine FFT accuracy loss *and* perturb every entry
    of well-conditioned results, making DC tails disagree with DP tails by
    far more than the convolution round-off itself; with the tolerance gate
    the two exact methods agree within 1e-12 on dense inputs (pinned by the
    regression tests) while a pathologically drifted PMF still gets
    repaired.

    Args:
        probabilities: Per-transaction occurrence probabilities ``p_i(X)``.
        use_fft: Convolve halves longer than the ``conv_span`` knob via
            FFT; disabling falls back to quadratic direct convolution (the
            paper's DC ablation).
        span: Explicit crossover, resolved once through
            :func:`resolve_conv_span` when omitted.

    Returns:
        Array of length ``N + 1``; ``result[k] = Pr[sup(X) = k]``.

    >>> exact_pmf_divide_conquer([0.5, 0.5]).tolist()
    [0.25, 0.5, 0.25]
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if use_fft and span is None:
        span = resolve_conv_span()  # resolve once, not per recursion step

    def _recurse(chunk: np.ndarray) -> np.ndarray:
        if len(chunk) == 0:
            return np.array([1.0])
        if len(chunk) == 1:
            p = float(chunk[0])
            return np.array([1.0 - p, p])
        middle = len(chunk) // 2
        return convolve_pmfs(
            _recurse(chunk[:middle]), _recurse(chunk[middle:]), use_fft, span=span
        )

    pmf = _recurse(probabilities)
    total = pmf.sum()
    if total > 0 and abs(total - 1.0) > PMF_RENORMALIZE_TOLERANCE:
        pmf = pmf / total
    return pmf


def frequent_probability_dynamic_programming(
    probabilities: Sequence[float], min_count: int
) -> float:
    """``Pr[sup(X) >= min_count]`` via the paper's DP recurrence.

    This follows the recurrence of Bernecker et al. used by the DP miner:
    ``Pr_{>=i,j} = Pr_{>=i-1,j-1} * p_j + Pr_{>=i,j-1} * (1 - p_j)`` with the
    boundary cases ``Pr_{>=0,j} = 1`` and ``Pr_{>=i,j} = 0`` for ``i > j``.
    The cost is O(N * min_count), cheaper than the full PMF when
    ``min_count`` is small.

    Args:
        probabilities: Per-transaction occurrence probabilities ``p_i(X)``.
        min_count: Absolute support threshold ``minsup`` (``i`` above).

    Returns:
        The exact frequent probability ``Pr[sup(X) >= min_count]``.

    >>> frequent_probability_dynamic_programming([0.5, 0.5], 1)
    0.75
    >>> frequent_probability_dynamic_programming([0.5, 0.5], 3)
    0.0
    """
    probabilities = np.asarray(probabilities, dtype=float)
    n = len(probabilities)
    min_count = int(min_count)
    if min_count <= 0:
        return 1.0
    if min_count > n:
        return 0.0
    # previous[i] = Pr[at least i occurrences among the first j transactions]
    previous = np.zeros(min_count + 1, dtype=float)
    previous[0] = 1.0
    for j in range(1, n + 1):
        p = probabilities[j - 1]
        current = np.empty_like(previous)
        current[0] = 1.0
        upper = min(j, min_count)
        current[1 : upper + 1] = (
            previous[: upper] * p + previous[1 : upper + 1] * (1.0 - p)
        )
        if upper < min_count:
            current[upper + 1 :] = 0.0
        previous = current
    return float(previous[min_count])


def poisson_tail_probability(expected_support: float, min_count: int) -> float:
    """Poisson approximation of ``Pr[sup(X) >= min_count]``.

    The Poisson-Binomial variable is approximated by a Poisson variable with
    rate ``lambda = esup(X)`` (Le Cam's theorem); the tail is
    ``1 - F_Poisson(min_count - 1; lambda)
    = 1 - sum_{k < min_count} e^{-lambda} lambda^k / k!``,
    the formula behind the paper's PDUApriori.

    Args:
        expected_support: The rate ``lambda = esup(X)``.
        min_count: Absolute support threshold.

    Returns:
        The approximate frequent probability, clipped to ``[0, 1]``.

    >>> round(poisson_tail_probability(1.0, 1), 12)
    0.632120558829
    >>> poisson_tail_probability(0.0, 1)
    0.0
    """
    if min_count <= 0:
        return 1.0
    lam = max(float(expected_support), 0.0)
    if lam == 0.0:
        return 0.0
    # Survival function computed with a numerically stable running term.
    term = math.exp(-lam)
    cdf = term
    for k in range(1, int(min_count)):
        term *= lam / k
        cdf += term
    return float(max(0.0, min(1.0, 1.0 - cdf)))


def normal_tail_probability(
    expected_support: float, variance: float, min_count: int
) -> float:
    """Normal approximation of ``Pr[sup(X) >= min_count]`` with continuity correction.

    Follows the paper's formula (central limit theorem on the Poisson-
    Binomial support, used by NDUApriori and NDUH-Mine):
    ``Pr(X) ~ Phi((esup(X) - (min_count - 0.5)) / sqrt(Var[sup(X)]))``.

    Args:
        expected_support: First moment ``esup(X)``.
        variance: Second central moment ``Var[sup(X)]``.
        min_count: Absolute support threshold (continuity-corrected by 0.5).

    Returns:
        The approximate frequent probability.

    >>> normal_tail_probability(1.0, 0.5, 1)  # threshold exactly at the mean
    0.7602499389065233
    >>> normal_tail_probability(2.0, 0.0, 1)  # degenerate: all mass at esup
    1.0
    """
    if min_count <= 0:
        return 1.0
    if variance <= 0.0:
        # Degenerate distribution: all mass at the expectation.
        return 1.0 if expected_support >= min_count - 0.5 else 0.0
    z = (expected_support - (min_count - 0.5)) / math.sqrt(variance)
    return float(_standard_normal_cdf(z))


def chernoff_upper_bound(expected_support: float, min_count: int) -> float:
    """Chernoff upper bound on ``Pr[sup(X) >= min_count]`` (Lemma 1).

    With ``mu = esup(X)`` and ``delta = (min_count - mu - 1) / mu`` the bound
    is ``2^{-delta * mu}`` when ``delta > 2e - 1`` and
    ``e^{-delta^2 mu / 4}`` otherwise — the cheap pre-filter of the paper's
    DPB/DCB configurations.

    Args:
        expected_support: First moment ``mu = esup(X)``.
        min_count: Absolute support threshold.

    Returns:
        An upper bound on the frequent probability; 1.0 when the bound is
        uninformative (``min_count`` does not exceed the expectation), so
        callers can use the value directly as a conservative estimate.

    >>> chernoff_upper_bound(10.0, 5)   # threshold below the mean: no information
    1.0
    >>> chernoff_upper_bound(1.0, 40) == 2.0 ** -38
    True
    """
    mu = float(expected_support)
    if mu <= 0.0:
        return 0.0 if min_count > 0 else 1.0
    delta = (min_count - mu - 1.0) / mu
    if delta <= 0.0:
        return 1.0
    if delta > 2.0 * math.e - 1.0:
        return float(2.0 ** (-delta * mu))
    return float(math.exp(-(delta * delta) * mu / 4.0))


def markov_upper_bound(expected_support: float, min_count: int) -> float:
    """Markov's inequality on the support tail: ``Pr[sup >= m] <= esup / m``.

    The cheapest sound bound of the filter-verify cascade — one division
    from the already-computed expected support, no exponentials.  It is the
    inequality behind the miners' item prefilter, applied here per
    candidate as the first verify stage.

    >>> markov_upper_bound(2.0, 8)
    0.25
    >>> markov_upper_bound(5.0, 0)
    1.0
    """
    if min_count <= 0:
        return 1.0
    return min(1.0, max(float(expected_support), 0.0) / min_count)


def cheap_tail_upper_bound(expected_support: float, min_count: int) -> float:
    """Cheapest sound upper bound on ``Pr[sup(X) >= min_count]``.

    The minimum of the Chernoff bound (Lemma 1) and Markov's inequality
    (``Pr <= esup / min_count``), both O(1) from the expected support — the
    shared pre-filter of the top-k miners (batch and streaming), applied
    against the rising k-th-best floor exactly as the threshold miners
    apply the Chernoff bound against ``pft``.

    >>> cheap_tail_upper_bound(1.0, 10) <= 0.1
    True
    >>> cheap_tail_upper_bound(5.0, 0)
    1.0
    """
    if min_count <= 0:
        return 1.0
    return min(
        1.0,
        chernoff_upper_bound(expected_support, min_count),
        float(expected_support) / min_count,
    )


def staged_tail_filter(
    expected_support: float, min_count: int, floor: float
) -> bool:
    """Bound-ordered kill test: is the exact tail certainly below ``floor``?

    Evaluates the cheap upper bounds in cost order and stops at the first
    decisive one — Markov (one division) before Chernoff (exponentials) —
    instead of always paying for both.  The decision is identical to
    ``cheap_tail_upper_bound(...) < floor`` because
    ``min(a, b) < floor  ⇔  a < floor or b < floor``; only the work is
    staged.  The shared kill stage of the top-k miners (batch and
    streaming), applied against the rising k-th-best floor.

    >>> staged_tail_filter(1.0, 10, 0.2)   # Markov alone decides: 0.1 < 0.2
    True
    >>> staged_tail_filter(1.0, 10, 0.05)  # Chernoff decides: 2^-8ish < 0.05
    True
    >>> staged_tail_filter(9.0, 10, 0.5)   # bounds uninformative near the mean
    False
    """
    if floor <= 0.0 or min_count <= 0:
        return False
    if markov_upper_bound(expected_support, min_count) < floor:
        return True
    return chernoff_upper_bound(expected_support, min_count) < floor


def poisson_lambda_for_threshold(min_count: int, pft: float) -> float:
    """Smallest Poisson rate whose tail at ``min_count`` exceeds ``pft``.

    PDUApriori converts the probabilistic threshold ``(min_count, pft)`` into
    an equivalent *expected support* threshold: because the Poisson tail is
    monotonically increasing in ``lambda``, a binary search finds the rate at
    which ``Pr[Poisson(lambda) >= min_count] = pft``; itemsets whose expected
    support reaches that rate are (approximately) probabilistic frequent.

    Args:
        min_count: Absolute support threshold.
        pft: Probabilistic frequentness threshold, strictly inside (0, 1).

    Returns:
        The smallest rate ``lambda*`` with
        ``Pr[Poisson(lambda*) >= min_count] > pft`` (up to bisection
        precision).

    Raises:
        ValueError: If ``pft`` is not strictly between 0 and 1.

    >>> lam = poisson_lambda_for_threshold(3, 0.9)
    >>> poisson_tail_probability(lam, 3) > 0.9
    True
    >>> poisson_tail_probability(lam * 0.99, 3) > 0.9
    False
    """
    if not 0.0 < pft < 1.0:
        raise ValueError("pft must lie strictly between 0 and 1")
    if min_count <= 0:
        return 0.0
    low, high = 0.0, float(max(min_count, 1))
    while poisson_tail_probability(high, min_count) <= pft:
        high *= 2.0
        if high > 1e9:  # pragma: no cover - defensive guard
            break
    for _ in range(80):
        middle = 0.5 * (low + high)
        if poisson_tail_probability(middle, min_count) > pft:
            high = middle
        else:
            low = middle
    return high


#: env override for the serial DP's transient padded-matrix budget (bytes)
DP_BLOCK_BYTES_ENV = "REPRO_DP_BLOCK_BYTES"
#: default budget of one padded DP block.  128 MiB holds a full level of
#: every in-RAM workload in one block (identical behaviour to the
#: pre-blocking code) while capping the transient on out-of-core databases,
#: whose vector widths scale with the mapped row count.
DEFAULT_DP_BLOCK_BYTES = 128 << 20


def resolve_dp_block_bytes(value: Optional[int] = None) -> int:
    """The serial DP's padded-matrix byte budget (``dp_block_bytes`` knob)."""
    return resolve_knob("dp_block_bytes", value)


def pack_probability_matrix(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """Zero-pad per-candidate probability vectors into one matrix.

    A padded zero is a Bernoulli(0) transaction, the identity of every
    support-distribution recurrence, so batched evaluations over the padded
    matrix agree bitwise with per-vector evaluations — and, for the same
    reason, evaluations of candidate *chunks* (whose padded widths differ)
    agree bitwise with the full batch, the property the parallel executor's
    chunked DP relies on.

    Args:
        vectors: One probability vector per candidate (ragged lengths).

    Returns:
        A ``(n_candidates, max_len)`` float matrix, each row zero-padded.

    >>> pack_probability_matrix([[0.5], [0.25, 1.0]]).tolist()
    [[0.5, 0.0], [0.25, 1.0]]
    """
    arrays = [np.asarray(vector, dtype=float) for vector in vectors]
    width = max((len(array) for array in arrays), default=0)
    matrix = np.zeros((len(arrays), width), dtype=float)
    for index, array in enumerate(arrays):
        matrix[index, : len(array)] = array
    return matrix


def frequent_probabilities_dp_batch(
    matrix: np.ndarray, min_count: int
) -> np.ndarray:
    """Batched ``Pr[sup(X) >= min_count]`` via the DP recurrence.

    ``matrix`` holds one (possibly zero-padded) probability vector per row;
    the classic O(N * min_count) recurrence
    ``Pr_{>=i,j} = Pr_{>=i-1,j-1} * p_j + Pr_{>=i,j-1} * (1 - p_j)``
    is advanced over the transaction axis with every candidate updated in
    one vectorized step, turning the per-candidate Python loop into
    ``max_len`` NumPy operations shared by the whole level.  Results are
    bitwise identical to :func:`frequent_probability_dynamic_programming`
    applied row by row.

    Args:
        matrix: ``(n_candidates, max_len)`` padded probability matrix (see
            :func:`pack_probability_matrix`).
        min_count: Absolute support threshold.

    Returns:
        Array of ``Pr[sup(X) >= min_count]``, one entry per candidate row.

    >>> frequent_probabilities_dp_batch(
    ...     pack_probability_matrix([[0.5, 0.5], [1.0]]), 1
    ... ).tolist()
    [0.75, 1.0]
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    n_candidates, width = matrix.shape
    min_count = int(min_count)
    if min_count <= 0:
        return np.ones(n_candidates, dtype=float)
    if min_count > width:
        return np.zeros(n_candidates, dtype=float)
    # state[c, i] = Pr[at least i occurrences among the transactions seen so far]
    state = np.zeros((n_candidates, min_count + 1), dtype=float)
    state[:, 0] = 1.0
    for j in range(width):
        p = matrix[:, j : j + 1]
        state[:, 1:] = state[:, :-1] * p + state[:, 1:] * (1.0 - p)
    return state[:, min_count].copy()


def dc_tail_probabilities(
    vectors: Sequence[np.ndarray],
    min_count: int,
    span: Optional[int] = None,
) -> np.ndarray:
    """Per-candidate ``Pr[sup(X) >= min_count]`` via divide-and-conquer PMFs.

    The single kernel shared by the serial engine path and the parallel
    executor's candidate chunks — one implementation, so the two paths
    cannot drift apart.

    Args:
        vectors: One zeros-omitted probability vector per candidate.
        min_count: Absolute support threshold.
        span: Explicit direct-vs-FFT crossover; resolved once through
            :func:`resolve_conv_span` when omitted.  The parallel executor
            resolves it on the coordinator and ships it inside the task
            payloads, so worker processes use the coordinator's plan even
            though contextvar scopes do not cross the fork.

    Returns:
        Array of exact frequent probabilities, clipped to ``[0, 1]``.

    >>> import numpy as np
    >>> dc_tail_probabilities([np.array([0.5, 0.5]), np.array([1.0])], 1).tolist()
    [0.75, 1.0]
    """
    min_count = int(min_count)
    if span is None:
        span = resolve_conv_span()
    results = np.empty(len(vectors), dtype=float)
    for index, vector in enumerate(vectors):
        if min_count <= 0:
            results[index] = 1.0
        elif min_count > len(vector):
            results[index] = 0.0
        else:
            tail = float(
                exact_pmf_divide_conquer(vector, span=span)[min_count:].sum()
            )
            results[index] = max(0.0, min(1.0, tail))
    return results


class SupportEngine:
    """Batched support-distribution queries for one level of candidates.

    The engine is the shared numerical substrate of every miner: it takes
    the per-candidate probability vectors of a whole Apriori level (one row
    per candidate, zero-padded to a matrix) and answers every question the
    eight algorithms ask — expected support, variance, exact DP /
    divide-and-conquer tails, and the Normal / Poisson / Chernoff
    approximations — with the expensive paths vectorized across candidates.

    Parameters
    ----------
    vectors:
        One probability vector per candidate.  Compressed (zeros-omitted)
        vectors are accepted and preferred: padding zeros are identity
        elements of every computation, and the non-zero count doubles as the
        maximum attainable support of each candidate.
    expected, variances:
        Optional precomputed per-candidate moments.  A caller subsetting an
        already-evaluated level (the survivor batch of the Apriori miners)
        passes them to avoid re-deriving the reductions.
    executor:
        Optional :class:`~repro.core.parallel.ParallelExecutor`.  When it is
        present and parallel, the exact tail evaluations are distributed as
        candidate chunks across its worker pool; every chunk runs the same
        serial kernel, so the results stay bitwise identical to the
        single-process path.
    """

    def __init__(
        self,
        vectors: Sequence[Sequence[float]],
        expected: Optional[Sequence[float]] = None,
        variances: Optional[Sequence[float]] = None,
        executor: Optional["ParallelExecutor"] = None,
    ) -> None:
        self._vectors = [np.asarray(vector, dtype=float) for vector in vectors]
        self._matrix: Optional[np.ndarray] = None
        self._expected: Optional[np.ndarray] = (
            np.asarray(expected, dtype=float) if expected is not None else None
        )
        self._variance: Optional[np.ndarray] = (
            np.asarray(variances, dtype=float) if variances is not None else None
        )
        self._executor = executor

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def vectors(self) -> Sequence[np.ndarray]:
        return self._vectors

    @property
    def matrix(self) -> np.ndarray:
        """The zero-padded probability matrix (one row per candidate)."""
        if self._matrix is None:
            self._matrix = pack_probability_matrix(self._vectors)
        return self._matrix

    # -- moments (vectorized) ----------------------------------------------------------
    # The reductions special-case empty vectors (stage-1 kills arrive as
    # empty vectors): the empty sum is exactly 0.0, so skipping the NumPy
    # call is bitwise-neutral and saves one dispatch per killed candidate.
    def expected_supports(self) -> np.ndarray:
        """``esup(X)`` of every candidate."""
        if self._expected is None:
            self._expected = np.array(
                [float(vector.sum()) if vector.size else 0.0 for vector in self._vectors],
                dtype=float,
            )
        return self._expected

    def variances(self) -> np.ndarray:
        """``Var[sup(X)]`` of every candidate."""
        if self._variance is None:
            self._variance = np.array(
                [
                    float((vector * (1.0 - vector)).sum()) if vector.size else 0.0
                    for vector in self._vectors
                ],
                dtype=float,
            )
        return self._variance

    def nonzero_counts(self) -> np.ndarray:
        """Number of transactions that can contain each candidate at all.

        This is the maximum attainable support: candidates whose count falls
        below ``min_count`` have frequent probability exactly zero, the
        cheap filter every probabilistic miner applies first.
        """
        return np.array(
            [
                int(np.count_nonzero(vector)) if vector.size else 0
                for vector in self._vectors
            ],
            dtype=np.int64,
        )

    # -- exact tails -------------------------------------------------------------------
    def frequent_probabilities(
        self, min_count: int, method: str = "dynamic_programming"
    ) -> np.ndarray:
        """Exact ``Pr[sup(X) >= min_count]`` of every candidate.

        ``"dynamic_programming"`` advances the whole level through the
        vectorized DP recurrence; ``"divide_conquer"`` assembles each
        candidate's PMF by FFT convolution (inherently per-candidate, so it
        loops, but each convolution is NumPy-heavy).  With a parallel
        executor attached, either evaluation is split into candidate chunks
        across the worker pool (bitwise-identical results).
        """
        min_count = int(min_count)
        distribute = self._executor is not None and self._executor.should_distribute(
            len(self._vectors)
        )
        if method == "dynamic_programming":
            if distribute:
                return self._executor.dp_tails(self._vectors, min_count)
            if self._matrix is not None:
                # A caller already materialised the padded matrix through
                # the ``matrix`` property — reuse it whole.
                return frequent_probabilities_dp_batch(self._matrix, min_count)
            # The padded matrix is built transiently: the DP sweep is its
            # only consumer on this path, and caching it on the engine
            # would pin the level's peak allocation for the whole mining
            # run (pinned by ``tests/test_support_memory.py``).  Its size
            # is 8 * n_candidates * max_len bytes — on out-of-core
            # databases (``repro.db.store``) max_len scales with the full
            # row count, so the build is additionally blocked over
            # candidates to bound the transient at REPRO_DP_BLOCK_BYTES.
            # Padded columns are Bernoulli(0) identity steps of the
            # recurrence, so per-block evaluation (block-local padding
            # widths included) is bitwise identical to one full batch.
            width = max((len(vector) for vector in self._vectors), default=0)
            block = max(1, resolve_dp_block_bytes() // (8 * max(width, 1)))
            if len(self._vectors) <= block:
                return frequent_probabilities_dp_batch(
                    pack_probability_matrix(self._vectors), min_count
                )
            return np.concatenate(
                [
                    frequent_probabilities_dp_batch(
                        pack_probability_matrix(self._vectors[start : start + block]),
                        min_count,
                    )
                    for start in range(0, len(self._vectors), block)
                ]
            )
        if method == "divide_conquer":
            if distribute:
                return self._executor.dc_tails(self._vectors, min_count)
            return dc_tail_probabilities(self._vectors, min_count)
        raise ValueError(f"unknown method {method!r}")

    # -- approximations ----------------------------------------------------------------
    # The approximation tails are O(1) per candidate once the moments exist;
    # the batched win comes from the vectorized moment reductions above.  The
    # tails themselves deliberately reuse the scalar kernels so the values
    # stay bitwise identical to the per-candidate path.
    def normal_frequent_probabilities(self, min_count: int) -> np.ndarray:
        """Normal approximation (continuity-corrected) of every candidate's tail."""
        expected = self.expected_supports()
        variance = self.variances()
        return np.array(
            [
                normal_tail_probability(float(e), float(v), min_count)
                for e, v in zip(expected, variance)
            ],
            dtype=float,
        )

    def poisson_frequent_probabilities(self, min_count: int) -> np.ndarray:
        """Poisson approximation of every candidate's tail."""
        return np.array(
            [
                poisson_tail_probability(float(e), min_count)
                for e in self.expected_supports()
            ],
            dtype=float,
        )

    def chernoff_bounds(self, min_count: int) -> np.ndarray:
        """Chernoff upper bound on every candidate's frequent probability."""
        return np.array(
            [
                chernoff_upper_bound(float(e), min_count)
                for e in self.expected_supports()
            ],
            dtype=float,
        )

    def markov_bounds(self, min_count: int) -> np.ndarray:
        """Markov upper bound on every candidate's frequent probability."""
        expected = self.expected_supports()
        if min_count <= 0:
            return np.ones(len(expected), dtype=float)
        return np.minimum(1.0, np.maximum(expected, 0.0) / float(min_count))

    def undecided_after_bounds(
        self,
        min_count: int,
        pft: float,
        counts: Optional[np.ndarray] = None,
        use_bounds: bool = True,
        pruner=None,
        notes: Optional[Dict[str, float]] = None,
    ) -> List[int]:
        """Stage 3 of the cascade: the filter half of filter-verify.

        Applies the cheap sound upper bounds to one evaluated level in cost
        order and returns the indices the bounds could *not* decide — the
        only candidates the caller's exact DP/DC (or approximation) tail
        still has to verify:

        1. **occupancy count** — a candidate with fewer than ``min_count``
           possible occurrences has frequent probability exactly zero
           (always applied; it mirrors the semantic filter every registered
           miner already runs, and it is free when stage 1 killed the
           candidate into an empty vector);
        2. **Markov** — ``esup / min_count <= pft`` decides *infrequent*
           from a single division;
        3. **Chernoff** — Lemma 1 of the paper, evaluated only for the
           candidates Markov left undecided.

        The Poisson tail joins this cascade only where it is itself the
        scoring kernel (PDUApriori's ``lambda*`` translation and the top-k
        Poisson ranking): it approximates — but does not bound — the exact
        tail, so using it to kill here could change exact results.

        Args:
            min_count: Absolute support threshold.
            pft: Decision threshold (Definition 4 keeps ``Pr > pft``); a
                bound ``<= pft`` is decisive.
            counts: Optional per-candidate maximum attainable supports (the
                stage-1 popcounts); ``None`` derives them from the vectors.
            use_bounds: When False (the paper's *NB* configurations) only
                the semantic count filter runs.
            pruner: Optional
                :class:`~repro.algorithms.pruning.ChernoffPruner`-style
                accountant; every candidate reaching the Chernoff stage is
                fed through ``pruner.register`` so the tested/pruned
                statistics match the historical per-candidate path.
            notes: Optional mutable mapping; ``markov_tested`` /
                ``markov_pruned`` are accumulated into it.

        Returns:
            Indices of the undecided candidates, in candidate order.
        """
        min_count = int(min_count)
        counts = self.nonzero_counts() if counts is None else counts
        expected = self.expected_supports()
        markov = self.markov_bounds(min_count) if use_bounds else None
        markov_tested = 0
        markov_pruned = 0
        undecided: List[int] = []
        for index in range(len(self._vectors)):
            if counts[index] < min_count:
                continue
            if markov is not None:
                markov_tested += 1
                if markov[index] <= pft:
                    markov_pruned += 1
                    continue
                bound = chernoff_upper_bound(float(expected[index]), min_count)
                if pruner is not None:
                    if pruner.register(bound, pft):
                        continue
                elif bound <= pft:
                    continue
            undecided.append(index)
        if notes is not None and use_bounds:
            notes["markov_tested"] = notes.get("markov_tested", 0.0) + markov_tested
            notes["markov_pruned"] = notes.get("markov_pruned", 0.0) + markov_pruned
        return undecided


class MergeableSupportStats:
    """Per-shard support statistics of one candidate batch, with exact merges.

    When the database is row-sharded (:mod:`repro.db.partition`), the
    support of a candidate is the sum of its independent per-shard supports.
    Every statistic the miners consume therefore has an exact merge
    operator:

    * **compressed vectors** concatenate in shard order — reproducing the
      unpartitioned vector *bitwise*, since per-transaction products are
      row-local;
    * **expected support** and **variance** add:
      ``esup(X) = sum_s esup_s(X)``, ``Var[sup(X)] = sum_s Var_s[sup(X)]``
      (independence across shards);
    * **maximum attainable supports** (non-zero counts) add;
    * **exact PMFs** convolve: ``pmf = pmf_1 (*) ... (*) pmf_K`` (the PMF of
      a sum of independent variables), using the same :func:`_convolve`
      kernel as the DC miner, so DP/DC tail probabilities survive sharding
      exactly (to convolution round-off, well below 1e-12).

    The scalar merges are mathematically exact but may differ from the
    serial reductions in the last ulp (different summation order).  The
    mining engine therefore uses the *vector concatenation* merge and
    re-derives moments and tails with the serial kernels — that path is
    byte-identical to an unpartitioned run — while this class is the
    aggregation algebra for distributed consumers that only ship
    statistics, never vectors.

    >>> left = MergeableSupportStats.from_vectors([[0.5]], with_pmfs=True)
    >>> right = MergeableSupportStats.from_vectors([[0.5]], with_pmfs=True)
    >>> merged = left.merge(right)
    >>> merged.expected.tolist(), merged.pmfs[0].tolist()
    ([1.0], [0.25, 0.5, 0.25])
    >>> merged.frequent_probabilities(1).tolist()
    [0.75]
    """

    __slots__ = (
        "vectors",
        "expected",
        "variance",
        "max_supports",
        "occupancy_counts",
        "pmfs",
    )

    def __init__(
        self,
        vectors: List[np.ndarray],
        expected: np.ndarray,
        variance: np.ndarray,
        max_supports: np.ndarray,
        pmfs: Optional[List[np.ndarray]] = None,
        occupancy_counts: Optional[np.ndarray] = None,
    ) -> None:
        self.vectors = vectors
        self.expected = expected
        self.variance = variance
        self.max_supports = max_supports
        #: per-candidate supporting-row counts from the shard's packed
        #: occupancy bitmaps (stage 1 of the cascade); additive across
        #: shards like every other scalar statistic, and ``None`` when the
        #: shard was built without bitmap support
        self.occupancy_counts = occupancy_counts
        self.pmfs = pmfs

    def __len__(self) -> int:
        return len(self.vectors)

    @classmethod
    def from_vectors(
        cls, vectors: Sequence[Sequence[float]], with_pmfs: bool = False
    ) -> "MergeableSupportStats":
        """Compute the statistics of one shard from its compressed vectors.

        Args:
            vectors: One zeros-omitted probability vector per candidate,
                restricted to the shard's rows.
            with_pmfs: Also materialise the exact per-candidate PMFs
                (needed when tails are to be merged across shards).

        Returns:
            The shard's mergeable statistics.
        """
        arrays = [np.asarray(vector, dtype=float) for vector in vectors]
        expected = np.array([float(v.sum()) for v in arrays], dtype=float)
        variance = np.array(
            [float((v * (1.0 - v)).sum()) for v in arrays], dtype=float
        )
        max_supports = np.array(
            [int(np.count_nonzero(v)) for v in arrays], dtype=np.int64
        )
        pmfs = [exact_pmf_divide_conquer(v) for v in arrays] if with_pmfs else None
        return cls(arrays, expected, variance, max_supports, pmfs)

    @classmethod
    def from_shard(
        cls, shard, candidates: Sequence, with_pmfs: bool = False
    ) -> "MergeableSupportStats":
        """One shard's statistics, carrying its bitmap occupancy counts.

        ``shard`` is a :class:`~repro.db.columnar.ColumnarView` (or any
        object offering ``batch_vectors`` and ``level_occupancy_counts``);
        the occupancy counts come from the shard's own packed bitmaps, so a
        distributed consumer can merge counts (by addition) without ever
        shipping vectors.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        stats = cls.from_vectors(shard.batch_vectors(candidates), with_pmfs=with_pmfs)
        stats.occupancy_counts = shard.level_occupancy_counts(candidates)
        return stats

    @classmethod
    def from_partition(
        cls, partition, candidates: Sequence, with_pmfs: bool = False
    ) -> "MergeableSupportStats":
        """Evaluate ``candidates`` over every shard of ``partition`` and merge.

        ``partition`` is a :class:`~repro.db.partition.ColumnarPartition`
        (duck-typed: anything with a ``shards`` sequence whose members offer
        ``batch_vectors`` and ``level_occupancy_counts``).  Every shard
        carries its own bitmap occupancy counts; the merge adds them, so
        the merged statistics expose the same stage-1 kill signal as the
        unpartitioned cascade.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        parts = [
            cls.from_shard(shard, candidates, with_pmfs=with_pmfs)
            for shard in partition.shards
        ]
        return cls.merge_all(parts)

    def merge(self, other: "MergeableSupportStats") -> "MergeableSupportStats":
        """Merge two shards' statistics (this shard's rows precede ``other``'s).

        Returns:
            A new :class:`MergeableSupportStats`; inputs are unchanged.

        Raises:
            ValueError: If the candidate counts differ, or only one side
                carries PMFs.
        """
        if len(self) != len(other):
            raise ValueError(
                f"cannot merge stats of {len(self)} and {len(other)} candidates"
            )
        if (self.pmfs is None) != (other.pmfs is None):
            raise ValueError("cannot merge PMF-carrying stats with PMF-free stats")
        pmfs = None
        if self.pmfs is not None and other.pmfs is not None:
            span = resolve_conv_span()  # resolve once per merge, not per PMF
            pmfs = [
                _convolve(left, right, use_fft=True, span=span)
                for left, right in zip(self.pmfs, other.pmfs)
            ]
        occupancy = None
        if self.occupancy_counts is not None and other.occupancy_counts is not None:
            occupancy = self.occupancy_counts + other.occupancy_counts
        return MergeableSupportStats(
            [
                np.concatenate((left, right))
                for left, right in zip(self.vectors, other.vectors)
            ],
            self.expected + other.expected,
            self.variance + other.variance,
            self.max_supports + other.max_supports,
            pmfs,
            occupancy,
        )

    @classmethod
    def merge_all(
        cls, parts: Sequence["MergeableSupportStats"]
    ) -> "MergeableSupportStats":
        """Fold :meth:`merge` over per-shard statistics in shard order."""
        if not parts:
            raise ValueError("merge_all requires at least one shard")
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        return merged

    def frequent_probabilities(self, min_count: int) -> np.ndarray:
        """``Pr[sup(X) >= min_count]`` per candidate from the merged PMFs.

        Requires the statistics to have been built ``with_pmfs=True``.
        """
        if self.pmfs is None:
            raise ValueError("statistics were built without PMFs")
        min_count = int(min_count)
        results = np.empty(len(self.pmfs), dtype=float)
        for index, pmf in enumerate(self.pmfs):
            if min_count <= 0:
                results[index] = 1.0
            elif min_count >= len(pmf):
                results[index] = 0.0
            else:
                results[index] = max(0.0, min(1.0, float(pmf[min_count:].sum())))
        return results

    def engine(self, executor: Optional["ParallelExecutor"] = None) -> SupportEngine:
        """The byte-exact :class:`SupportEngine` over the merged vectors.

        Moments are deliberately *not* taken from the additive merge: the
        engine recomputes them from the concatenated vectors with the serial
        kernels so that a partitioned run reports values bitwise identical
        to an unpartitioned one.
        """
        return SupportEngine(self.vectors, executor=executor)


class SupportDistribution:
    """All views of the support distribution of one itemset.

    Parameters
    ----------
    probabilities:
        Vector of per-transaction occurrence probabilities ``p_i(X)``.
    """

    def __init__(self, probabilities: Sequence[float]) -> None:
        self._probabilities = np.asarray(probabilities, dtype=float)
        if np.any((self._probabilities < 0.0) | (self._probabilities > 1.0)):
            raise ValueError("per-transaction probabilities must lie in [0, 1]")
        self._pmf: Optional[np.ndarray] = None

    # -- moments ---------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return len(self._probabilities)

    @property
    def probabilities(self) -> np.ndarray:
        return self._probabilities

    @property
    def expected_support(self) -> float:
        """First moment: ``esup(X)``."""
        return float(self._probabilities.sum())

    @property
    def variance(self) -> float:
        """Second central moment of the support."""
        return float((self._probabilities * (1.0 - self._probabilities)).sum())

    # -- exact distribution ------------------------------------------------------------
    def pmf(self, method: str = "divide_conquer") -> np.ndarray:
        """Exact probability mass function of the support.

        ``method`` is ``"divide_conquer"`` (FFT-accelerated, default) or
        ``"dynamic_programming"``.  The result is cached.
        """
        if self._pmf is None:
            if method == "dynamic_programming":
                self._pmf = exact_pmf_dynamic_programming(self._probabilities)
            elif method == "divide_conquer":
                self._pmf = exact_pmf_divide_conquer(self._probabilities)
            else:
                raise ValueError(f"unknown method {method!r}")
        return self._pmf

    def pmf_as_dict(self) -> Dict[int, float]:
        """The PMF as ``{support: probability}`` with negligible entries removed."""
        return {
            support: float(probability)
            for support, probability in enumerate(self.pmf())
            if probability > 1e-12
        }

    def frequent_probability(self, min_count: int, method: str = "divide_conquer") -> float:
        """Exact ``Pr[sup(X) >= min_count]``.

        ``method`` selects the evaluation strategy: ``"divide_conquer"``
        (full PMF, then tail sum), ``"dynamic_programming"`` (the paper's DP
        recurrence, does not materialise the full PMF).
        """
        min_count = int(min_count)
        if min_count <= 0:
            return 1.0
        if min_count > self.n_transactions:
            return 0.0
        if method == "dynamic_programming":
            return frequent_probability_dynamic_programming(self._probabilities, min_count)
        tail = float(self.pmf(method)[min_count:].sum())
        return float(max(0.0, min(1.0, tail)))

    # -- approximations -----------------------------------------------------------------
    def poisson_frequent_probability(self, min_count: int) -> float:
        """Poisson approximation of the frequent probability."""
        return poisson_tail_probability(self.expected_support, min_count)

    def normal_frequent_probability(self, min_count: int) -> float:
        """Normal approximation (with continuity correction) of the frequent probability."""
        return normal_tail_probability(self.expected_support, self.variance, min_count)

    def chernoff_bound(self, min_count: int) -> float:
        """Chernoff upper bound on the frequent probability."""
        return chernoff_upper_bound(self.expected_support, min_count)
