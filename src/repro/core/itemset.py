"""Itemset representation.

An itemset is an immutable, hashable, sorted collection of item
identifiers.  Keeping items sorted gives a canonical form, so two itemsets
built from differently-ordered inputs compare and hash identically — the
property every candidate-generation step relies on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, Union

__all__ = ["Itemset"]

ItemsLike = Union["Itemset", Iterable[int], int]


class Itemset:
    """An immutable set of item identifiers with a canonical (sorted) order."""

    __slots__ = ("_items",)

    def __init__(self, items: ItemsLike = ()) -> None:
        if isinstance(items, Itemset):
            self._items: Tuple[int, ...] = items._items
            return
        if isinstance(items, int):
            items = (items,)
        unique = sorted({int(item) for item in items})
        for item in unique:
            if item < 0:
                raise ValueError(f"item identifiers must be non-negative, got {item}")
        self._items = tuple(unique)

    # -- container protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Itemset):
            return self._items == other._items
        if isinstance(other, (tuple, list, set, frozenset)):
            return self._items == tuple(sorted(int(i) for i in other))
        return NotImplemented

    def __lt__(self, other: "Itemset") -> bool:
        return self._items < other._items

    def __repr__(self) -> str:
        return f"Itemset({list(self._items)})"

    # -- set algebra -----------------------------------------------------------------
    @property
    def items(self) -> Tuple[int, ...]:
        """The items in ascending order."""
        return self._items

    def union(self, other: ItemsLike) -> "Itemset":
        """Return the union of this itemset and ``other``."""
        return Itemset(tuple(self._items) + tuple(Itemset(other)._items))

    def intersection(self, other: ItemsLike) -> "Itemset":
        """Return the intersection of this itemset and ``other``."""
        other_set = set(Itemset(other)._items)
        return Itemset(item for item in self._items if item in other_set)

    def difference(self, other: ItemsLike) -> "Itemset":
        """Return the items of this itemset not present in ``other``."""
        other_set = set(Itemset(other)._items)
        return Itemset(item for item in self._items if item not in other_set)

    def issubset(self, other: ItemsLike) -> bool:
        """Return True if every item of this itemset appears in ``other``."""
        other_set = set(Itemset(other)._items)
        return all(item in other_set for item in self._items)

    def issuperset(self, other: ItemsLike) -> bool:
        """Return True if this itemset contains every item of ``other``."""
        return Itemset(other).issubset(self)

    def with_item(self, item: int) -> "Itemset":
        """Return a new itemset with ``item`` added."""
        return Itemset(self._items + (int(item),))

    def subsets_of_size(self, size: int) -> Iterator["Itemset"]:
        """Yield every subset of the given size (used by Apriori-style pruning)."""
        from itertools import combinations

        for combination in combinations(self._items, size):
            yield Itemset(combination)

    def prefix(self, length: int) -> "Itemset":
        """Return the itemset made of the first ``length`` items in canonical order."""
        return Itemset(self._items[:length])
