"""Unified mining front-end.

:func:`mine` dispatches to any registered algorithm by name, resolving the
threshold arguments according to the algorithm's family.  This is the
"single entry point" a downstream user of the library is expected to call::

    from repro import mine, datasets

    db = datasets.make_accident(scale=0.01)
    result = mine(db, algorithm="uapriori", min_esup=0.3)
    result = mine(db, algorithm="dcb", min_sup=0.3, pft=0.9)
"""

from __future__ import annotations

from typing import Optional

from ..db.database import UncertainDatabase
from .registry import get_algorithm
from .results import MiningResult

__all__ = ["mine"]


def mine(
    database: UncertainDatabase,
    algorithm: str = "uapriori",
    min_esup: Optional[float] = None,
    min_sup: Optional[float] = None,
    pft: float = 0.9,
    **options,
) -> MiningResult:
    """Mine frequent itemsets from ``database`` with the named algorithm.

    Parameters
    ----------
    database:
        The uncertain database to mine.
    algorithm:
        Registered algorithm name; see
        :func:`repro.core.registry.algorithm_names`.
    min_esup:
        Minimum expected support (ratio in ``(0, 1]`` or absolute value).
        Required by expected-support algorithms.
    min_sup:
        Minimum support (ratio or absolute count).  Required by exact and
        approximate probabilistic algorithms.
    pft:
        Probabilistic frequentness threshold used by probabilistic
        algorithms (default 0.9, the paper's default).
    options:
        Extra keyword arguments forwarded to the algorithm constructor
        (e.g. ``use_pruning=False`` for the exact miners,
        ``track_memory=True`` for any miner, ``backend="rows"`` /
        ``backend="columnar"`` to pin the probability-evaluation engine, or
        ``workers=4`` / ``shards=4`` to engage the partition-parallel
        engine — results are byte-identical for every setting).

    Returns
    -------
    MiningResult
        The frequent itemsets and run statistics.
    """
    info = get_algorithm(algorithm)
    miner = info.factory(**options)
    if info.family == "expected":
        if min_esup is None:
            raise ValueError(f"algorithm {algorithm!r} requires min_esup")
        return miner.mine(database, min_esup=min_esup)
    if min_sup is None:
        raise ValueError(f"algorithm {algorithm!r} requires min_sup")
    return miner.mine(database, min_sup=min_sup, pft=pft)
