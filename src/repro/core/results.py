"""Result records returned by the miners.

Every miner, regardless of family, returns a :class:`MiningResult` made of
:class:`FrequentItemset` records plus run statistics.  A uniform result
shape is what allows the evaluation harness to compare algorithms across
the two frequent-itemset definitions — the central methodological point of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from .itemset import Itemset

__all__ = ["FrequentItemset", "MiningStatistics", "MiningResult"]


@dataclass(frozen=True)
class FrequentItemset:
    """One frequent itemset together with its support statistics.

    ``frequent_probability`` is populated by the probabilistic miners (exact
    or approximate); expected-support miners leave it ``None``.  ``variance``
    is populated by the miners that compute it (the Normal-approximation
    family and the exact miners), demonstrating the paper's point that the
    two definitions meet once the variance is tracked alongside the
    expectation.
    """

    itemset: Itemset
    expected_support: float
    variance: Optional[float] = None
    frequent_probability: Optional[float] = None

    def __len__(self) -> int:
        return len(self.itemset)


@dataclass
class MiningStatistics:
    """Bookkeeping of one mining run (uniform across algorithms).

    The counters follow one accounting contract, charged by the
    :class:`~repro.core.search.LevelwiseSearch` driver so every miner means
    the same thing by the same number (pinned per miner by
    ``tests/test_search_engine.py``):

    ``database_scans``
        Passes over the transaction data: **one** for the opening
        item-statistics scan, **one per generator-driven candidate level**
        (joined or exhaustive — the level's batched evaluation reads every
        transaction once, whatever the backend), and **one per auxiliary
        structure built from a full pass** (the UH-struct, the global
        UFP-tree, the sampled-worlds materialisation).  Streaming slides
        charge none: their statistics come from the incremental index, not
        from scans.
    ``candidates_generated``
        Every candidate submitted by a level generator (the apriori join
        after subset pruning, the exhaustive ``combinations``, a
        depth-first expander's extension sets).  Seed 1-itemsets taken
        straight from the item-statistics pass are *not* generated — they
        were never produced by a generator — but the exhaustive references
        count their size-1 level because their generator enumerates it.
    ``candidates_pruned``
        ``generated - admitted`` per level: every generated candidate the
        decision rule (or a sound bound before it) kept out of the next
        level.  Bound-filtered and exactly-rejected candidates count the
        same — the counter answers "how much of the generated frontier
        died", not "why".
    ``exact_evaluations``
        Candidates whose *score kernel* actually ran (exact tails after
        the bound chain, sampled-world estimates, direct PMF reads).
        Expected-support arithmetic is not an exact evaluation; bound
        filters are not either.
    """

    algorithm: str = ""
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    candidates_generated: int = 0
    candidates_pruned: int = 0
    exact_evaluations: int = 0
    database_scans: int = 0
    notes: Dict[str, float] = field(default_factory=dict)


class MiningResult:
    """The frequent itemsets found by one run, with lookup helpers."""

    def __init__(
        self,
        itemsets: Iterable[FrequentItemset],
        statistics: Optional[MiningStatistics] = None,
    ) -> None:
        self._itemsets: List[FrequentItemset] = sorted(
            itemsets, key=lambda record: (len(record.itemset), record.itemset.items)
        )
        self._by_itemset: Dict[Itemset, FrequentItemset] = {
            record.itemset: record for record in self._itemsets
        }
        self.statistics = statistics or MiningStatistics()

    # -- container protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._itemsets)

    def __iter__(self) -> Iterator[FrequentItemset]:
        return iter(self._itemsets)

    def __contains__(self, itemset: object) -> bool:
        return Itemset(itemset) in self._by_itemset  # type: ignore[arg-type]

    def __getitem__(self, itemset) -> FrequentItemset:
        return self._by_itemset[Itemset(itemset)]

    # -- views ------------------------------------------------------------------------
    @property
    def itemsets(self) -> List[FrequentItemset]:
        """All records, ordered by itemset size then lexicographically."""
        return list(self._itemsets)

    def itemset_keys(self) -> Set[Itemset]:
        """The set of frequent itemsets (without statistics)."""
        return set(self._by_itemset)

    def of_size(self, size: int) -> List[FrequentItemset]:
        """All frequent itemsets containing exactly ``size`` items."""
        return [record for record in self._itemsets if len(record.itemset) == size]

    def max_size(self) -> int:
        """The size of the largest frequent itemset (0 when empty)."""
        return max((len(record.itemset) for record in self._itemsets), default=0)

    def get(self, itemset, default: Optional[FrequentItemset] = None) -> Optional[FrequentItemset]:
        """Return the record for ``itemset`` or ``default`` when not frequent."""
        return self._by_itemset.get(Itemset(itemset), default)

    def to_rows(self, vocabulary=None) -> List[Dict[str, object]]:
        """Flatten the result into dictionaries (for CSV export / reporting).

        When a vocabulary is supplied items are reported with their original
        labels.
        """
        rows: List[Dict[str, object]] = []
        for record in self._itemsets:
            if vocabulary is not None:
                items = tuple(vocabulary.label_of(item) for item in record.itemset)
            else:
                items = record.itemset.items
            rows.append(
                {
                    "itemset": items,
                    "size": len(record.itemset),
                    "expected_support": record.expected_support,
                    "variance": record.variance,
                    "frequent_probability": record.frequent_probability,
                }
            )
        return rows
