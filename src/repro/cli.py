"""Command line interface: ``repro-mine``.

Three subcommands cover the common workflows:

``repro-mine list``
    Show the registered algorithms and datasets.

``repro-mine mine``
    Mine a benchmark dataset (or an ``item:probability`` text file) with one
    algorithm and print the frequent itemsets.

``repro-mine experiment``
    Run one of the paper's figure/table scenarios and print the resulting
    table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.miner import mine
from .core.registry import algorithm_names, get_algorithm
from .datasets.registry import dataset_names, load_dataset
from .db.io import read_uncertain
from .eval import reporting, runner, scenarios

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Frequent itemset mining over uncertain databases (VLDB 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered algorithms and datasets")

    mine_parser = subparsers.add_parser("mine", help="mine one dataset with one algorithm")
    mine_parser.add_argument("--algorithm", "-a", default="uapriori", help="algorithm name")
    mine_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    mine_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    mine_parser.add_argument("--min-esup", type=float, default=None, help="minimum expected support")
    mine_parser.add_argument("--min-sup", type=float, default=None, help="minimum support")
    mine_parser.add_argument("--pft", type=float, default=0.9, help="probabilistic frequent threshold")
    mine_parser.add_argument("--limit", type=int, default=20, help="print at most this many itemsets")
    mine_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend (default: columnar)",
    )
    _add_parallel_arguments(mine_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper's experiment scenarios"
    )
    experiment_parser.add_argument(
        "figure",
        choices=["fig4", "fig5", "fig6", "table8", "table9"],
        help="which experiment family to run",
    )
    experiment_parser.add_argument("--scale", type=float, default=0.002, help="dataset scale factor")
    experiment_parser.add_argument(
        "--max-points", type=int, default=None, help="truncate each sweep to this many points"
    )
    experiment_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend (default: columnar)",
    )
    _add_parallel_arguments(experiment_parser)
    return parser


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the partition-parallel engine "
            "(default: REPRO_WORKERS or 1; 0 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "row shards of the columnar view "
            "(default: REPRO_SHARDS or the worker count)"
        ),
    )


def _command_list() -> int:
    print("Algorithms:")
    for name in algorithm_names():
        info = get_algorithm(name)
        print(f"  {name:22s} [{info.family}]  {info.description}")
    print("\nDatasets:")
    for name in dataset_names():
        print(f"  {name}")
    return 0


def _command_mine(args: argparse.Namespace) -> int:
    if args.dataset in dataset_names():
        database = load_dataset(args.dataset, scale=args.scale)
    else:
        database = read_uncertain(args.dataset, name=args.dataset)

    info = get_algorithm(args.algorithm)
    if info.family == "expected":
        threshold = args.min_esup if args.min_esup is not None else 0.5
        result = mine(
            database,
            algorithm=args.algorithm,
            min_esup=threshold,
            backend=args.backend,
            workers=args.workers,
            shards=args.shards,
        )
    else:
        threshold = args.min_sup if args.min_sup is not None else 0.5
        result = mine(
            database,
            algorithm=args.algorithm,
            min_sup=threshold,
            pft=args.pft,
            backend=args.backend,
            workers=args.workers,
            shards=args.shards,
        )

    statistics = result.statistics
    print(
        f"{args.algorithm}: {len(result)} frequent itemsets in "
        f"{statistics.elapsed_seconds:.3f}s over {len(database)} transactions"
    )
    for record in result.itemsets[: args.limit]:
        probability = (
            f"  Pr={record.frequent_probability:.3f}"
            if record.frequent_probability is not None
            else ""
        )
        print(f"  {record.itemset.items}  esup={record.expected_support:.2f}{probability}")
    if len(result) > args.limit:
        print(f"  ... ({len(result) - args.limit} more)")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.figure == "fig4":
        specs = scenarios.figure4_time_and_memory(args.scale)
    elif args.figure == "fig5":
        specs = scenarios.figure5_min_sup(args.scale)
    elif args.figure == "fig6":
        specs = scenarios.figure6_min_sup(args.scale)
    elif args.figure == "table8":
        specs = [scenarios.table8_accuracy_dense(args.scale)]
    else:
        specs = [scenarios.table9_accuracy_sparse(args.scale)]

    for spec in specs:
        print(f"== {spec.experiment_id}: {spec.title} ==")
        if spec.experiment_id.startswith("table"):
            points = runner.run_accuracy_experiment(
                spec,
                max_points=args.max_points,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
            )
            print(reporting.format_accuracy_table(points))
        else:
            points = runner.run_experiment(
                spec,
                max_points=args.max_points,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
            )
            print(reporting.format_sweep_table(points))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mine`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "mine":
        return _command_mine(args)
    if args.command == "experiment":
        return _command_experiment(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
