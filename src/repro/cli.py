"""Command line interface: ``repro-mine``.

Five subcommands cover the common workflows:

``repro-mine list``
    Show the registered algorithms and datasets.

``repro-mine mine``
    Mine a benchmark dataset (or an ``item:probability`` text file) with one
    algorithm and print the frequent itemsets.

``repro-mine mine-topk``
    Mine the k highest-ranked itemsets (expected-support or frequentness-
    probability ranking) with threshold-raising pruning; ``--verify``
    additionally mines everything through the corresponding threshold miner,
    truncates, and checks the two agree.

``repro-mine experiment``
    Run one of the paper's figure/table scenarios and print the resulting
    table.

``repro-mine stream-mine``
    Replay a dataset as a transaction stream through a sliding window and
    re-emit the frequent set after every slide (incremental maintenance;
    ``--verify`` additionally batch-mines each window and checks agreement).

``repro-mine store-build``
    Persist a dataset as an out-of-core memory-mapped columnar store
    (:mod:`repro.db.store`); ``repro-mine mine --store DIR`` then mines it
    off the mapped planes without loading the data into RAM.

``repro-mine serve``
    Run the mining service (:mod:`repro.service`): a long-lived JSON-over-
    socket server with a warm dataset registry, a monotonicity-exploiting
    result cache and bounded concurrent admission.

``repro-mine plan-explain``
    Show the :class:`~repro.plan.ExecutionPlan` a mine of the dataset would
    run under — dataset features, the chosen value and source of every
    knob, and (under ``--plan auto``) the planner's rationale and predicted
    cost.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.miner import mine
from .core.parallel import fanout_scope
from .core.registry import algorithm_names, get_algorithm
from .db.columnar import bitset_scope
from .db.store import ColumnarStore, resolve_store_path
from .core.topk import (
    mine_topk,
    ranking_of,
    resolve_evaluator,
    truncation_baseline,
)
from .datasets.registry import dataset_names, load_dataset
from .db.io import read_uncertain
from .eval import reporting, runner, scenarios
from .stream import (
    BATCH_EQUIVALENTS,
    STREAMING_MINERS,
    TransactionStream,
    make_streaming_miner,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Frequent itemset mining over uncertain databases (VLDB 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered algorithms and datasets")

    mine_parser = subparsers.add_parser("mine", help="mine one dataset with one algorithm")
    mine_parser.add_argument("--algorithm", "-a", default="uapriori", help="algorithm name")
    mine_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    mine_parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "mine an out-of-core columnar store (see store-build) instead of "
            "--dataset; with no DIR, the REPRO_STORE environment variable "
            "supplies the directory"
        ),
    )
    mine_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    mine_parser.add_argument("--min-esup", type=float, default=None, help="minimum expected support")
    mine_parser.add_argument("--min-sup", type=float, default=None, help="minimum support")
    mine_parser.add_argument("--pft", type=float, default=0.9, help="probabilistic frequent threshold")
    mine_parser.add_argument("--limit", type=int, default=20, help="print at most this many itemsets")
    mine_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend (default: columnar)",
    )
    _add_parallel_arguments(mine_parser)

    topk_parser = subparsers.add_parser(
        "mine-topk", help="mine the k highest-ranked itemsets of one dataset"
    )
    topk_parser.add_argument(
        "--algorithm",
        "-a",
        default="uapriori",
        help=(
            "registered algorithm or evaluator name (esup/dp/dc/normal/poisson); "
            "expected-support algorithms rank by Definition 2, probabilistic "
            "ones by Definition 4 at --min-sup"
        ),
    )
    topk_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    topk_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    topk_parser.add_argument("-k", type=int, default=10, help="how many itemsets to return")
    topk_parser.add_argument(
        "--min-sup",
        type=float,
        default=None,
        help="support level of the probabilistic ranking (default 0.3)",
    )
    topk_parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "also mine everything through the corresponding threshold miner, "
            "truncate to k, and check the two results agree"
        ),
    )
    topk_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend (default: columnar)",
    )
    _add_parallel_arguments(topk_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper's experiment scenarios"
    )
    experiment_parser.add_argument(
        "figure",
        choices=["fig4", "fig5", "fig6", "table8", "table9", "topk"],
        help="which experiment family to run",
    )
    experiment_parser.add_argument("--scale", type=float, default=0.002, help="dataset scale factor")
    experiment_parser.add_argument(
        "--max-points", type=int, default=None, help="truncate each sweep to this many points"
    )
    experiment_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend (default: columnar)",
    )
    _add_parallel_arguments(experiment_parser)

    stream_parser = subparsers.add_parser(
        "stream-mine",
        help="mine a sliding window over a replayed transaction stream",
    )
    stream_parser.add_argument(
        "--algorithm",
        "-a",
        choices=sorted(STREAMING_MINERS),
        default="uapriori",
        help="streaming miner variant",
    )
    stream_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    stream_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    stream_parser.add_argument("--window", "-w", type=int, default=256, help="sliding window capacity")
    stream_parser.add_argument("--step", type=int, default=32, help="arrivals per slide")
    stream_parser.add_argument(
        "--slides", type=int, default=None, help="stop after this many slides (default: drain the stream)"
    )
    stream_parser.add_argument("--min-esup", type=float, default=None, help="minimum expected support (uapriori)")
    stream_parser.add_argument("--min-sup", type=float, default=None, help="minimum support (dp)")
    stream_parser.add_argument("--pft", type=float, default=0.9, help="probabilistic frequent threshold (dp)")
    stream_parser.add_argument("--limit", type=int, default=10, help="print at most this many itemsets per slide")
    stream_parser.add_argument(
        "--verify",
        action="store_true",
        help="batch-mine every window from scratch and check the frequent sets agree",
    )
    stream_parser.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default=None,
        help="probability-evaluation backend of the --verify batch runs",
    )
    _add_parallel_arguments(stream_parser)

    store_parser = subparsers.add_parser(
        "store-build",
        help="persist a dataset as an out-of-core memory-mapped columnar store",
    )
    store_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    store_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    store_parser.add_argument(
        "--out", "-o", required=True, metavar="DIR", help="target store directory"
    )
    store_parser.add_argument(
        "--no-bitmaps",
        action="store_true",
        help="skip the packed occupancy-bitmap plane (smaller store, slower cascade)",
    )

    verify_parser = subparsers.add_parser(
        "store-verify",
        help="recompute plane checksums of a columnar store and report corruption",
    )
    verify_parser.add_argument(
        "directory",
        nargs="?",
        default=None,
        metavar="DIR",
        help="store directory (default: the REPRO_STORE environment variable)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the JSON-over-socket mining service"
    )
    serve_parser.add_argument(
        "--host", default=None, help="bind address (default: REPRO_SERVICE_HOST or 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: REPRO_SERVICE_PORT or 0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent request executors (default: REPRO_SERVICE_WORKERS or 4)",
    )
    serve_parser.add_argument(
        "--queue",
        type=int,
        default=None,
        help=(
            "requests allowed to wait for an executor before rejection "
            "(default: REPRO_SERVICE_QUEUE or 16)"
        ),
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request timeout in seconds (default: REPRO_SERVICE_TIMEOUT_SECONDS or 30)",
    )
    serve_parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="NAME=DATASET[:SCALE]",
        help="pre-register a benchmark dataset at startup (repeatable)",
    )
    serve_parser.add_argument(
        "--register-store",
        action="append",
        default=[],
        metavar="NAME=DIR",
        help="pre-register an out-of-core columnar store at startup (repeatable)",
    )
    serve_parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound 'host port' to PATH once serving (for scripts/CI)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve_parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "install a deterministic fault-injection plan for the server "
            "process (e.g. 'seed=7;socket-drop@2'; see REPRO_FAULTS)"
        ),
    )

    explain_parser = subparsers.add_parser(
        "plan-explain",
        help="show the execution plan a mine of one dataset would run under",
    )
    explain_parser.add_argument(
        "--dataset", "-d", default="accident", help="benchmark dataset name or path to an item:probability file"
    )
    explain_parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="explain a mine of an out-of-core columnar store instead of --dataset",
    )
    explain_parser.add_argument("--scale", type=float, default=0.002, help="benchmark scale factor")
    explain_parser.add_argument(
        "--plan",
        default="auto",
        metavar="SPEC",
        help="plan request to explain (default: auto, the cost-model planner)",
    )
    explain_parser.add_argument(
        "--min-sup",
        type=float,
        default=None,
        help=(
            "query support threshold (ratio or absolute) the planner's "
            "search-depth estimate should assume"
        ),
    )
    explain_parser.add_argument(
        "--pft",
        type=float,
        default=None,
        help="probabilistic frequentness threshold for the depth estimate",
    )
    return parser


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the partition-parallel engine "
            "(default: REPRO_WORKERS or 1; 0 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "row shards of the columnar view "
            "(default: REPRO_SHARDS or the worker count)"
        ),
    )
    parser.add_argument(
        "--bitset",
        choices=["on", "off"],
        default=None,
        help=(
            "bitset evaluation cascade: packed-bitmap candidate killing, "
            "cross-level prefix caching and bound-ordered verification "
            "(default: REPRO_BITSET or on; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--fanout",
        choices=["auto", "shm", "pickle"],
        default=None,
        help=(
            "shard dispatch to worker processes: shared-memory/manifest "
            "descriptors (auto, zero-copy) or legacy whole-view pickles "
            "(default: REPRO_FANOUT or auto; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="SPEC",
        help=(
            "execution plan: 'auto' for the cost-model planner, or a "
            "comma-separated knob spec such as "
            "'backend=columnar,workers=4,conv_span=256' "
            "(default: REPRO_PLAN; --backend/--workers/--shards stay the "
            "strongest tier, but a knob named in --plan beats the same "
            "knob given via --bitset/--fanout or environment variables)"
        ),
    )


def _command_list() -> int:
    print("Algorithms:")
    for name in algorithm_names():
        info = get_algorithm(name)
        print(f"  {name:22s} [{info.family}]  {info.description}")
    print("\nDatasets:")
    for name in dataset_names():
        print(f"  {name}")
    return 0


def _load_mine_database(args: argparse.Namespace):
    if getattr(args, "store", None) is not None:
        directory = resolve_store_path(args.store or None)
        return ColumnarStore.open(directory).database()
    if args.dataset in dataset_names():
        return load_dataset(args.dataset, scale=args.scale)
    return read_uncertain(args.dataset, name=args.dataset)


def _command_mine(args: argparse.Namespace) -> int:
    database = _load_mine_database(args)

    info = get_algorithm(args.algorithm)
    if info.family == "expected":
        threshold = args.min_esup if args.min_esup is not None else 0.5
        result = mine(
            database,
            algorithm=args.algorithm,
            min_esup=threshold,
            backend=args.backend,
            workers=args.workers,
            shards=args.shards,
            plan=args.plan,
        )
    else:
        threshold = args.min_sup if args.min_sup is not None else 0.5
        result = mine(
            database,
            algorithm=args.algorithm,
            min_sup=threshold,
            pft=args.pft,
            backend=args.backend,
            workers=args.workers,
            shards=args.shards,
            plan=args.plan,
        )

    statistics = result.statistics
    print(
        f"{args.algorithm}: {len(result)} frequent itemsets in "
        f"{statistics.elapsed_seconds:.3f}s over {len(database)} transactions"
    )
    for record in result.itemsets[: args.limit]:
        probability = (
            f"  Pr={record.frequent_probability:.3f}"
            if record.frequent_probability is not None
            else ""
        )
        print(f"  {record.itemset.items}  esup={record.expected_support:.2f}{probability}")
    if len(result) > args.limit:
        print(f"  ... ({len(result) - args.limit} more)")
    return 0


def _command_mine_topk(args: argparse.Namespace) -> int:
    if args.dataset in dataset_names():
        database = load_dataset(args.dataset, scale=args.scale)
    else:
        database = read_uncertain(args.dataset, name=args.dataset)

    evaluator = resolve_evaluator(args.algorithm)
    ranking = ranking_of(evaluator)
    min_sup: Optional[float] = None
    if ranking == "probability":
        min_sup = args.min_sup if args.min_sup is not None else 0.3
    elif args.min_sup is not None:
        print(
            f"note: --min-sup is ignored — {args.algorithm!r} ranks by "
            "expected support (Definition 2), not frequentness probability"
        )

    result = mine_topk(
        database,
        args.k,
        algorithm=args.algorithm,
        min_sup=min_sup,
        backend=args.backend,
        workers=args.workers,
        shards=args.shards,
        plan=args.plan,
    )
    statistics = result.statistics
    label = "esup ranking" if ranking == "esup" else f"Pr ranking at min_sup={min_sup}"
    print(
        f"topk-{evaluator}: best {len(result)} of k={args.k} ({label}) in "
        f"{statistics.elapsed_seconds:.3f}s over {len(database)} transactions"
    )
    for rank, record in enumerate(result, start=1):
        probability = (
            f"  Pr={record.frequent_probability:.4f}"
            if record.frequent_probability is not None
            else ""
        )
        print(
            f"  #{rank:<3d} {record.itemset.items}  "
            f"esup={record.expected_support:.2f}{probability}"
        )

    if args.verify:
        baseline = truncation_baseline(
            database,
            args.k,
            evaluator,
            min_sup=min_sup,
            reference=result,
            backend=args.backend,
            workers=args.workers,
            shards=args.shards,
            plan=args.plan,
        )
        matches = result.ranked_keys() == baseline.ranked_keys()
        print(
            f"verify (mine-then-truncate via {args.algorithm!r} family): "
            f"{'match' if matches else 'MISMATCH'}"
        )
        if not matches:
            return 1
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.figure == "topk":
        for spec in scenarios.topk_scenarios(args.scale):
            print(f"== {spec.scenario_id}: {spec.title} ==")
            points = runner.run_topk_scenario(
                spec,
                verify=True,
                max_points=args.max_points,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
                plan=args.plan,
            )
            rows = [point.as_dict() for point in points]
            print(
                reporting.format_table(
                    rows,
                    [
                        "algorithm",
                        "k",
                        "n_itemsets",
                        "kth_score",
                        "elapsed_seconds",
                        "baseline_seconds",
                        "matches_truncation",
                    ],
                )
            )
            print()
        return 0
    if args.figure == "fig4":
        specs = scenarios.figure4_time_and_memory(args.scale)
    elif args.figure == "fig5":
        specs = scenarios.figure5_min_sup(args.scale)
    elif args.figure == "fig6":
        specs = scenarios.figure6_min_sup(args.scale)
    elif args.figure == "table8":
        specs = [scenarios.table8_accuracy_dense(args.scale)]
    else:
        specs = [scenarios.table9_accuracy_sparse(args.scale)]

    for spec in specs:
        print(f"== {spec.experiment_id}: {spec.title} ==")
        if spec.experiment_id.startswith("table"):
            points = runner.run_accuracy_experiment(
                spec,
                max_points=args.max_points,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
                plan=args.plan,
            )
            print(reporting.format_accuracy_table(points))
        else:
            points = runner.run_experiment(
                spec,
                max_points=args.max_points,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
                plan=args.plan,
            )
            print(reporting.format_sweep_table(points))
        print()
    return 0


def _command_stream_mine(args: argparse.Namespace) -> int:
    if args.dataset in dataset_names():
        database = load_dataset(args.dataset, scale=args.scale)
    else:
        database = read_uncertain(args.dataset, name=args.dataset)

    if args.algorithm == "uapriori":
        options = {"min_esup": args.min_esup if args.min_esup is not None else 0.3}
    else:
        options = {
            "min_sup": args.min_sup if args.min_sup is not None else 0.3,
            "pft": args.pft,
        }
    batch_algorithm, batch_kwargs = BATCH_EQUIVALENTS[args.algorithm], dict(options)

    stream = TransactionStream.from_database(database)
    miner = make_streaming_miner(args.algorithm, args.window, plan=args.plan, **options)

    print(
        f"stream-{args.algorithm}: window={args.window} step={args.step} "
        f"over {len(database)} replayed transactions"
    )
    slide = 0
    mismatches = 0
    while args.slides is None or slide <= args.slides:
        step = args.window if slide == 0 else args.step
        result = miner.advance(stream, step)
        if result is None:
            break
        statistics = result.statistics
        line = (
            f"slide {slide:3d}  [{miner.window.oldest_sequence},"
            f"{miner.window.next_sequence}): {len(result)} frequent itemsets "
            f"in {statistics.elapsed_seconds * 1000.0:.2f}ms"
        )
        if args.verify:
            batch = mine(
                miner.window.contents(),
                algorithm=batch_algorithm,
                backend=args.backend,
                workers=args.workers,
                shards=args.shards,
                plan=args.plan,
                **batch_kwargs,
            )
            matches = {r.itemset.items for r in result} == {
                r.itemset.items for r in batch
            }
            mismatches += not matches
            line += (
                f"  (batch {batch.statistics.elapsed_seconds * 1000.0:.2f}ms, "
                f"{'match' if matches else 'MISMATCH'})"
            )
        print(line)
        for record in result.itemsets[: args.limit]:
            probability = (
                f"  Pr={record.frequent_probability:.3f}"
                if record.frequent_probability is not None
                else ""
            )
            print(f"    {record.itemset.items}  esup={record.expected_support:.2f}{probability}")
        if len(result) > args.limit:
            print(f"    ... ({len(result) - args.limit} more)")
        slide += 1
    if args.verify and mismatches:
        print(f"verification FAILED on {mismatches} slides")
        return 1
    return 0


def _command_store_build(args: argparse.Namespace) -> int:
    if args.dataset in dataset_names():
        database = load_dataset(args.dataset, scale=args.scale)
    else:
        database = read_uncertain(args.dataset, name=args.dataset)
    store = ColumnarStore.save(
        database, args.out, with_bitmaps=not args.no_bitmaps
    )
    statistics = database.stats()
    print(
        f"store-build: {len(database)} transactions, "
        f"{statistics.n_items} items, {store.nnz} units -> {store.directory}"
    )
    print(
        f"  planes {store.data_nbytes} bytes on disk, "
        f"manifest {store.manifest_nbytes} bytes "
        f"(mine with: repro-mine mine --store {store.directory})"
    )
    return 0


def _command_store_verify(args: argparse.Namespace) -> int:
    directory = resolve_store_path(args.directory)
    store = ColumnarStore.open(directory)
    report = store.verify()
    print(f"store-verify: {report['directory']}")
    for plane, entry in sorted(report["planes"].items()):
        if entry.get("skipped"):
            detail = f"skipped ({entry['skipped']})"
        elif entry.get("error"):
            detail = f"ERROR ({entry['error']})"
        elif entry["ok"]:
            detail = f"ok (crc32 {entry['actual']}, {entry['nbytes']} bytes)"
        else:
            detail = (
                f"CORRUPT (expected crc32 {entry['expected']}, "
                f"got {entry['actual']})"
            )
        print(f"  {plane:8s} {detail}")
    if report["ok"]:
        print("store-verify: OK")
        return 0
    print("store-verify: FAILED")
    return 1


def _command_plan_explain(args: argparse.Namespace) -> int:
    from .core.thresholds import QueryThresholds
    from .plan import (
        DatasetFeatures,
        Planner,
        ensure_plan,
        materialize_plan,
        plan_request_is_auto,
    )

    database = _load_mine_database(args)
    request = ensure_plan(args.plan)
    auto = plan_request_is_auto(request)
    planner = Planner.from_trajectory()
    features = DatasetFeatures.from_database(database)
    thresholds = None
    if args.min_sup is not None or args.pft is not None:
        thresholds = QueryThresholds(min_support=args.min_sup, pft=args.pft)
    resolved = materialize_plan(
        request, database, planner=planner, thresholds=thresholds
    )

    print(
        f"plan-explain: {getattr(database, 'name', args.dataset)} -- "
        f"request {args.plan!r}"
        + (" (cost-model planner engaged)" if auto else "")
    )
    print("features:")
    for key, value in features.to_dict().items():
        rendered = f"{value:.4g}" if isinstance(value, float) else f"{value}"
        print(f"  {key:20s} {rendered}")
    print("plan:")
    for name, value in resolved.knob_items():
        print(f"  {name:20s} {value}")
    print(
        "predicted cost: "
        f"{planner.predict_seconds(features, resolved, thresholds=thresholds):.4f}s"
    )
    if auto:
        decision = planner.plan(features, thresholds=thresholds)
        print("rationale:")
        for key, reason in decision.rationale.items():
            print(f"  {key}: {reason}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import MiningServer

    if args.faults:
        from . import faults

        faults.install_faults(faults.FaultPlan.parse(args.faults))
        print(f"serve: fault plan installed ({args.faults!r})")
    server = MiningServer(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        max_queue=args.queue,
        timeout_seconds=args.timeout,
        use_cache=not args.no_cache,
    )
    for entry in args.register:
        name, _, target = entry.partition("=")
        if not name or not target:
            print(f"serve: bad --register {entry!r}, expected NAME=DATASET[:SCALE]")
            return 2
        dataset, _, scale = target.partition(":")
        spec = {"kind": "benchmark", "dataset": dataset}
        if scale:
            spec["scale"] = float(scale)
        server.registry.register(name, spec)
        print(f"serve: registered {name!r} <- benchmark {dataset!r}")
    for entry in args.register_store:
        name, _, directory = entry.partition("=")
        if not name or not directory:
            print(f"serve: bad --register-store {entry!r}, expected NAME=DIR")
            return 2
        server.registry.register(name, {"kind": "store", "directory": directory})
        print(f"serve: registered {name!r} <- store {directory}")

    server.start()
    host, port = server.address
    print(f"serve: listening on {host}:{port} (workers={server.max_workers}, "
          f"queue={server.max_queue}, timeout={server.timeout_seconds:g}s)")
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")

    def _stop(signum, frame):  # pragma: no cover - signal path
        server.close()

    previous = [
        (signal.SIGINT, signal.signal(signal.SIGINT, _stop)),
        (signal.SIGTERM, signal.signal(signal.SIGTERM, _stop)),
    ]
    try:
        # Blocks until a signal or a client 'shutdown' op closes the server.
        server.wait()
    finally:
        server.close()
        for signum, handler in previous:
            signal.signal(signum, handler)
    print("serve: stopped")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-mine`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "store-build":
        return _command_store_build(args)
    if args.command == "store-verify":
        return _command_store_verify(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "plan-explain":
        return _command_plan_explain(args)
    with bitset_scope(getattr(args, "bitset", None)), fanout_scope(
        getattr(args, "fanout", None)
    ):
        if args.command == "mine":
            return _command_mine(args)
        if args.command == "mine-topk":
            return _command_mine_topk(args)
        if args.command == "experiment":
            return _command_experiment(args)
        if args.command == "stream-mine":
            return _command_stream_mine(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
