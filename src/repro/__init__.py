"""repro — frequent itemset mining over uncertain databases.

A faithful, uniformly implemented reproduction of the experimental study

    Tong, Chen, Cheng, Yu.  "Mining Frequent Itemsets over Uncertain
    Databases."  PVLDB 5(11), 2012.

The library provides the uncertain-database substrate, the eight
representative mining algorithms the paper compares (three expected-support
miners, two exact probabilistic miners with and without Chernoff pruning,
three approximate probabilistic miners), benchmark dataset generators and
the evaluation harness that regenerates every figure and table of the
paper's evaluation section.

Quick start::

    import repro

    db = repro.datasets.make_accident(scale=0.005)
    result = repro.mine(db, algorithm="uapriori", min_esup=0.3)
    for record in result:
        print(record.itemset, record.expected_support)
"""

from . import algorithms, core, datasets, db, eval, stream
from .core import (
    AssociationRule,
    FrequentItemset,
    Itemset,
    MiningResult,
    MiningStatistics,
    SupportDistribution,
    TopKResult,
    algorithm_names,
    algorithms_in_family,
    closed_itemsets,
    derive_rules,
    mine,
    mine_topk,
)
from .db import DatabaseBuilder, UncertainDatabase, UncertainTransaction, paper_example_database

__version__ = "1.0.0"

__all__ = [
    "AssociationRule",
    "DatabaseBuilder",
    "FrequentItemset",
    "Itemset",
    "MiningResult",
    "MiningStatistics",
    "SupportDistribution",
    "TopKResult",
    "UncertainDatabase",
    "UncertainTransaction",
    "__version__",
    "algorithm_names",
    "algorithms_in_family",
    "algorithms",
    "closed_itemsets",
    "core",
    "derive_rules",
    "datasets",
    "db",
    "eval",
    "mine",
    "mine_topk",
    "paper_example_database",
    "stream",
]
