"""The monotonicity-exploiting result cache of the mining service.

Frequent-itemset answers nest as thresholds tighten.  For an
anti-monotone score the result at a *stricter* threshold is exactly a
filter of the result at any *looser* one — no mining required — and the
per-itemset statistics (expected support, variance, frequentness
probability) are threshold-independent, so the filtered records are
bitwise identical to a fresh mine.  The cache exploits this per family:

``expected`` (Definition 2, ``min_esup``)
    Expected support is anti-monotone and the miners keep records with
    ``esup >= N * min_esup`` (inclusive).  A cached answer at absolute
    threshold ``t0`` serves any request with ``t >= t0`` by keeping the
    records with ``esup >= t``.

``exact`` (Definition 4, fixed ``min_count``, ``pft`` axis)
    ``Pr[sup >= min_count]`` is anti-monotone in the itemset, so at a
    fixed ``min_count`` the answer at a higher ``pft`` filters a lower
    one: keep records with ``pr > pft`` (strict, the Definition 4
    boundary).  ``min_count`` itself is **not** a filter axis — the
    probabilities are functions of ``min_count`` — so it lives in the
    group key.

``pdu-apriori`` (Poisson approximation)
    The miner translates ``(min_count, pft)`` into an equivalent expected
    support threshold ``lambda*`` once and mines by expected support, so
    the filter axis is ``lambda*`` with the expected-support predicate.

Everything else (the Normal-approximation family, whose score is not
anti-monotone, and the Monte-Carlo sampler) is cached under its exact
parameter key only — a filter there could disagree with a fresh mine.

Top-k answers nest on the ``k`` axis instead: the ranked list at ``k`` is
a prefix of the list at any ``k' >= k`` (the rank order is a deterministic
total order), and a list that came back *shorter* than its own ``k'`` is
exhaustive — it serves every ``k``.

Entries live in a :class:`~repro.db.cache.ByteBudgetLRU`
(``REPRO_SERVICE_RESULT_BYTES``); filtered answers are re-inserted under
their own threshold so repeats become exact hits.  Every group key carries
the dataset name **and revision** — re-registering a dataset bumps the
revision, so stale answers are unreachable by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.results import FrequentItemset
from ..core.support import poisson_lambda_for_threshold
from ..core.thresholds import ExpectedSupportThreshold, ProbabilisticThreshold
from .protocol import ServiceError

__all__ = [
    "RESULT_BYTES_ENV",
    "DEFAULT_RESULT_BYTES",
    "MinePlan",
    "ResultCache",
    "plan_mine",
    "plan_topk",
]

#: env override for the result-cache byte budget
RESULT_BYTES_ENV = "REPRO_SERVICE_RESULT_BYTES"
#: default result budget — tens of thousands of cached records
DEFAULT_RESULT_BYTES = 64 << 20

#: Definition 4 miners whose reported probability is exact and anti-monotone
_EXACT_PFT_ALGORITHMS = frozenset({"dpb", "dpnb", "dcb", "dcnb", "exhaustive-prob"})
#: miners that reduce (min_count, pft) to an expected-support threshold
_POISSON_ALGORITHMS = frozenset({"pdu-apriori"})


@dataclass(frozen=True)
class MinePlan:
    """A normalised, cache-addressable mining request.

    ``group`` identifies the result *family* (dataset+revision, algorithm,
    backend, definition-fixing parameters); ``axis`` is the monotone
    threshold within the group (``None`` for exact-key-only algorithms);
    ``keep`` is the membership predicate a fresh mine applies at ``axis``.
    """

    group: Tuple[Any, ...]
    axis: Optional[float]
    keep: Optional[Callable[[FrequentItemset], bool]]


def plan_mine(
    dataset: str,
    revision: str,
    algorithm: str,
    family: str,
    n_transactions: int,
    backend: str,
    min_esup: Optional[float],
    min_sup: Optional[float],
    pft: float,
    conv_span: Optional[int] = None,
) -> MinePlan:
    """Build the cache plan of one ``mine`` request.

    The group/axis split mirrors the threshold resolution of
    :mod:`repro.algorithms.base` exactly — same helpers, same floats — so
    the ``keep`` predicate reproduces the miner's own admission comparison
    bit for bit.  The group carries every bitwise-relevant execution knob
    (``backend`` and ``conv_span``); the bitwise-neutral ones (bitset,
    fanout, workers, shards, cache budgets) are deliberately excluded so
    answers are shared across them.
    """
    if conv_span is None:
        from ..plan.spec import resolve_knob

        conv_span = resolve_knob("conv_span")
    base = (dataset, revision, "mine", algorithm, backend, int(conv_span))
    if family == "expected":
        absolute = ExpectedSupportThreshold(float(min_esup)).absolute(n_transactions)
        return MinePlan(
            group=base,
            axis=float(absolute),
            keep=lambda record, _t=float(absolute): record.expected_support >= _t,
        )
    min_count = ProbabilisticThreshold(float(min_sup), float(pft)).min_count(
        n_transactions
    )
    if algorithm in _EXACT_PFT_ALGORITHMS:
        return MinePlan(
            group=base + (min_count,),
            axis=float(pft),
            keep=lambda record, _t=float(pft): (
                record.frequent_probability is not None
                and record.frequent_probability > _t
            ),
        )
    if algorithm in _POISSON_ALGORITHMS:
        lambda_threshold = max(
            poisson_lambda_for_threshold(min_count, float(pft)), 1e-12
        )
        return MinePlan(
            group=base + (min_count,),
            axis=float(lambda_threshold),
            keep=lambda record, _t=float(lambda_threshold): (
                record.expected_support >= _t
            ),
        )
    # Non-anti-monotone scores (Normal approximation) and Monte-Carlo
    # estimates: cache hits must match the full parameter set exactly.
    return MinePlan(group=base + (min_count, float(pft)), axis=None, keep=None)


def plan_topk(
    dataset: str,
    revision: str,
    evaluator: str,
    ranking: str,
    n_transactions: int,
    backend: str,
    min_sup: Optional[float],
    conv_span: Optional[int] = None,
) -> Tuple[Any, ...]:
    """The group key of one ``mine-topk`` request (the axis is ``k``)."""
    if conv_span is None:
        from ..plan.spec import resolve_knob

        conv_span = resolve_knob("conv_span")
    min_count: Optional[int] = None
    if ranking == "probability":
        if min_sup is None:
            raise ServiceError(
                "bad-params",
                f"evaluator {evaluator!r} ranks by frequentness probability "
                "and requires min_sup",
            )
        min_count = ProbabilisticThreshold(float(min_sup)).min_count(n_transactions)
    return (dataset, revision, "topk", evaluator, backend, int(conv_span), min_count)


class _CachedEntry:
    """One cached answer: records plus its LRU byte charge."""

    __slots__ = ("records", "k", "exhausted", "payload_nbytes")

    def __init__(
        self, records: List[FrequentItemset], k: Optional[int] = None
    ) -> None:
        self.records = records
        self.k = k
        #: a top-k answer shorter than its k holds *every* rankable itemset
        self.exhausted = k is not None and len(records) < k
        items = sum(len(record.itemset) for record in records)
        self.payload_nbytes = 256 + 120 * len(records) + 8 * items


class ResultCache:
    """Byte-budgeted, monotonicity-aware storage of served answers."""

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        from ..db.cache import ByteBudgetLRU, resolve_budget

        if budget_bytes is None:
            budget_bytes = resolve_budget(RESULT_BYTES_ENV, DEFAULT_RESULT_BYTES)
        self._lru = ByteBudgetLRU(budget_bytes)
        self._index: Dict[Tuple[Any, ...], Set[Tuple[Any, ...]]] = {}
        self._lock = threading.RLock()
        self.exact_hits = 0
        self.filter_hits = 0
        self.misses = 0

    # -- mine --------------------------------------------------------------------
    def fetch_mine(
        self, plan: MinePlan
    ) -> Optional[Tuple[List[FrequentItemset], str]]:
        """Serve ``plan`` from cache: exact hit, monotone filter, or ``None``."""
        with self._lock:
            exact_key = plan.group + ("axis", plan.axis)
            entry = self._lru.get(exact_key)
            if entry is not None:
                self.exact_hits += 1
                return entry.records, "hit"
            if plan.axis is None:
                self.misses += 1
                return None
            source = self._best_filter_source(plan.group, plan.axis)
            if source is None:
                self.misses += 1
                return None
            filtered = [record for record in source.records if plan.keep(record)]
            self.filter_hits += 1
            # Re-insert under the requested threshold: the next identical
            # request is an exact hit, and the entry is smaller than its
            # source so the marginal budget cost is low.
            self._store(exact_key, plan.group, _CachedEntry(filtered))
            return filtered, "filter"

    def store_mine(self, plan: MinePlan, records: List[FrequentItemset]) -> None:
        with self._lock:
            self._store(
                plan.group + ("axis", plan.axis), plan.group, _CachedEntry(records)
            )

    def _best_filter_source(
        self, group: Tuple[Any, ...], axis: float
    ) -> Optional[_CachedEntry]:
        """The cached entry at the loosest-but-tightest threshold <= ``axis``.

        Any cached threshold at or below the requested one is a sound
        filter source; the largest such threshold holds the fewest surplus
        records, so filtering it is cheapest.
        """
        best_key: Optional[Tuple[Any, ...]] = None
        best_axis: Optional[float] = None
        for full_key in self._group_keys(group):
            cached_axis = full_key[-1]
            if cached_axis is None or cached_axis > axis:
                continue
            if best_axis is None or cached_axis > best_axis:
                best_axis = cached_axis
                best_key = full_key
        if best_key is None:
            return None
        return self._lru.get(best_key)

    # -- top-k -------------------------------------------------------------------
    def fetch_topk(
        self, group: Tuple[Any, ...], k: int
    ) -> Optional[Tuple[List[FrequentItemset], str]]:
        """Serve a top-k request: exact hit, prefix of a larger k, or ``None``."""
        with self._lock:
            exact_key = group + ("k", int(k))
            entry = self._lru.get(exact_key)
            if entry is not None:
                self.exact_hits += 1
                return entry.records, "hit"
            best_key: Optional[Tuple[Any, ...]] = None
            best_k: Optional[int] = None
            for full_key in self._group_keys(group):
                cached = self._lru.peek(full_key)
                if cached is None:
                    continue
                usable = cached.k >= k or cached.exhausted
                if not usable:
                    continue
                if best_k is None or cached.k < best_k:
                    best_k = cached.k
                    best_key = full_key
            if best_key is None:
                self.misses += 1
                return None
            source = self._lru.get(best_key)
            if source is None:  # pragma: no cover - racing eviction
                self.misses += 1
                return None
            prefix = source.records[: int(k)]
            self.filter_hits += 1
            self._store(exact_key, group, _CachedEntry(prefix, k=int(k)))
            return prefix, "filter"

    def store_topk(
        self, group: Tuple[Any, ...], k: int, records: List[FrequentItemset]
    ) -> None:
        with self._lock:
            self._store(group + ("k", int(k)), group, _CachedEntry(records, k=int(k)))

    # -- shared plumbing ---------------------------------------------------------
    def _store(
        self, full_key: Tuple[Any, ...], group: Tuple[Any, ...], entry: _CachedEntry
    ) -> None:
        self._lru.put(full_key, entry)
        if full_key in self._lru:
            self._index.setdefault(group, set()).add(full_key)

    def _group_keys(self, group: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
        """The group's live keys; entries the LRU evicted are pruned lazily."""
        keys = self._index.get(group)
        if not keys:
            return []
        dead = [key for key in keys if key not in self._lru]
        for key in dead:
            keys.discard(key)
        if not keys:
            self._index.pop(group, None)
            return []
        return list(keys)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()
            self._index.clear()

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._lru),
                "nbytes": self._lru.nbytes,
                "budget_bytes": self._lru.budget_bytes,
                "exact_hits": self.exact_hits,
                "filter_hits": self.filter_hits,
                "misses": self.misses,
                "evictions": self._lru.evictions,
            }
