"""Wire protocol of the mining service: newline-delimited JSON.

One request is one JSON object on one line; one response is one JSON
object on one line.  The framing is deliberately primitive — any language
with a socket and a JSON parser is a client — and the schema is small:

Request::

    {"id": 7, "op": "mine", "params": {"dataset": "accident", ...}}

Success response::

    {"id": 7, "ok": true, "result": {...}}

Error response (the server **always** replies; a client never hangs on a
bad request)::

    {"id": 7, "ok": false, "error": {"type": "unknown-dataset",
                                     "message": "..."}}

Floats round-trip bitwise: Python's ``json`` emits ``repr``-shortest
decimal forms, which parse back to the identical IEEE-754 double — the
property the result cache's "bitwise-equal to a fresh mine" contract
rides on (pinned by ``tests/test_service.py``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.itemset import Itemset
from ..core.results import FrequentItemset

__all__ = [
    "MAX_LINE_BYTES",
    "ERROR_TYPES",
    "ServiceError",
    "encode_line",
    "decode_line",
    "error_reply",
    "ok_reply",
    "encode_records",
    "decode_records",
    "encode_statistics",
    "record_keys",
]

#: hard cap on one framed line (requests beyond it are malformed — the
#: inline-records register op stays well under this for test datasets)
MAX_LINE_BYTES = 32 << 20

#: the structured error vocabulary of the service
ERROR_TYPES = (
    "malformed-request",
    "bad-request",
    "unknown-op",
    "unknown-dataset",
    "unknown-algorithm",
    "bad-params",
    "overloaded",
    "timeout",
    "shutting-down",
    "connection-lost",
    "corrupt-dataset",
    "internal",
)


class ServiceError(Exception):
    """A structured service failure: a machine-readable type plus a message.

    Raised server-side to produce an error reply, and raised client-side
    when an error reply is received — the ``type`` survives the round-trip.
    (``connection-lost`` is the exception: it is minted client-side when
    the transport dies before a reply arrives, so *every* client failure
    is a ServiceError with a typed cause.)

    ``retry_after_seconds`` is an optional server hint carried with
    retryable errors (today: ``overloaded`` admission rejections); a
    retrying client sleeps that long before its next attempt instead of
    guessing.
    """

    def __init__(
        self,
        error_type: str,
        message: str,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown error type {error_type!r}; known: {ERROR_TYPES}")
        super().__init__(message)
        self.type = error_type
        self.message = message
        self.retry_after_seconds = (
            None if retry_after_seconds is None else float(retry_after_seconds)
        )

    def as_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"type": self.type, "message": self.message}
        if self.retry_after_seconds is not None:
            payload["retry_after_seconds"] = self.retry_after_seconds
        return payload


def encode_line(document: Dict[str, Any]) -> bytes:
    """Frame one protocol document as a single JSON line (UTF-8)."""
    return (json.dumps(document, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one framed line into a request/response document.

    Raises:
        ServiceError: ``malformed-request`` when the line is not a JSON
            object (the caller turns this into a structured error reply).
    """
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError("malformed-request", f"not a JSON line: {error}") from None
    if not isinstance(document, dict):
        raise ServiceError(
            "malformed-request",
            f"expected a JSON object, got {type(document).__name__}",
        )
    return document


def ok_reply(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_reply(request_id: Any, error: ServiceError) -> Dict[str, Any]:
    return {"id": request_id, "ok": False, "error": error.as_payload()}


def encode_records(records) -> List[Dict[str, Any]]:
    """Serialize mining records, preserving order and float identity.

    Works on any iterable of :class:`~repro.core.results.FrequentItemset`
    — a canonical :class:`MiningResult` (size/lexicographic order) or a
    :class:`TopKResult` (rank order).
    """
    return [
        {
            "items": list(record.itemset.items),
            "esup": record.expected_support,
            "var": record.variance,
            "pr": record.frequent_probability,
        }
        for record in records
    ]


def decode_records(payload: List[Dict[str, Any]]) -> List[FrequentItemset]:
    """Rebuild :class:`FrequentItemset` records from their wire form."""
    return [
        FrequentItemset(
            Itemset(tuple(int(item) for item in entry["items"])),
            float(entry["esup"]),
            None if entry.get("var") is None else float(entry["var"]),
            None if entry.get("pr") is None else float(entry["pr"]),
        )
        for entry in payload
    ]


def encode_statistics(statistics) -> Dict[str, Any]:
    """The statistics slice a serving client cares about."""
    return {
        "algorithm": statistics.algorithm,
        "elapsed_seconds": statistics.elapsed_seconds,
        "candidates_generated": statistics.candidates_generated,
        "candidates_pruned": statistics.candidates_pruned,
        "exact_evaluations": statistics.exact_evaluations,
    }


def record_keys(records: List[FrequentItemset]) -> List[Tuple[Tuple[int, ...], float, Optional[float], Optional[float]]]:
    """The bitwise-comparison view of a record list (tests and --verify)."""
    return [
        (
            record.itemset.items,
            record.expected_support,
            record.variance,
            record.frequent_probability,
        )
        for record in records
    ]
