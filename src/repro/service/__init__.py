"""Mining-as-a-service: registry, result cache, server, client.

The service layer turns the library into a long-lived process: datasets
are registered once and kept warm (:mod:`~repro.service.registry`),
answers are cached and re-served by threshold monotonicity
(:mod:`~repro.service.cache`), and a threaded JSON-over-socket server
(:mod:`~repro.service.server`) fields concurrent clients with bounded
admission and per-request timeouts.  ``repro-mine serve`` starts one from
the command line; :class:`MiningClient` talks to it from Python.
"""

from .cache import ResultCache, plan_mine, plan_topk
from .client import MiningClient
from .protocol import ServiceError, decode_records, encode_records, record_keys
from .registry import DatasetHandle, DatasetRegistry
from .server import MiningServer

__all__ = [
    "DatasetHandle",
    "DatasetRegistry",
    "MiningClient",
    "MiningServer",
    "ResultCache",
    "ServiceError",
    "decode_records",
    "encode_records",
    "plan_mine",
    "plan_topk",
    "record_keys",
]
