"""A blocking Python client for the mining service.

One client wraps one TCP connection and issues requests sequentially
(request ``id``s are still attached and checked, so a desynchronised
stream fails loudly instead of silently mismatching).  Thin by design:
every method is one :meth:`MiningClient.call` with the op's params, and
error replies surface as :class:`~repro.service.protocol.ServiceError`
with the server's error type intact.

>>> from repro.service import MiningServer, MiningClient  # doctest: +SKIP
>>> with MiningServer(max_workers=2) as server:           # doctest: +SKIP
...     with MiningClient(*server.address) as client:
...         client.register("toy", dataset="t10i4d100k", scale=0.001)
...         reply = client.mine("toy", algorithm="uapriori", min_esup=0.3)
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional

from ..core.results import FrequentItemset
from .protocol import (
    MAX_LINE_BYTES,
    ServiceError,
    decode_line,
    decode_records,
    encode_line,
)

__all__ = ["MiningClient"]


class MiningClient:
    """Socket client speaking the newline-delimited JSON protocol.

    Args:
        host: Server address.
        port: Server port (take both from ``MiningServer.address``).
        timeout_seconds: Socket timeout applied to connect and to every
            reply read.  Keep it above the server's per-request timeout so
            the server-side ``timeout`` error (a structured reply) arrives
            before the client-side socket gives up.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout_seconds: float = 60.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_seconds = float(timeout_seconds)
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._ids = itertools.count(1)

    # -- connection --------------------------------------------------------------
    def connect(self) -> "MiningClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_seconds
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "MiningClient":
        return self.connect()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- core request/reply ------------------------------------------------------
    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Issue one request and return the ``result`` object of the reply.

        Raises:
            ServiceError: The server replied with a structured error (its
                ``type`` is preserved).
            ConnectionError: The connection dropped before a reply arrived.
        """
        self.connect()
        request_id = next(self._ids)
        document = {"id": request_id, "op": op, "params": params or {}}
        self._sock.sendall(encode_line(document))
        if timeout_seconds is not None:
            self._sock.settimeout(timeout_seconds)
        try:
            reply = decode_line(self._read_line())
        finally:
            if timeout_seconds is not None:
                self._sock.settimeout(self.timeout_seconds)
        if reply.get("id") != request_id:
            raise ConnectionError(
                f"reply id {reply.get('id')!r} does not match request {request_id}"
            )
        if reply.get("ok"):
            return reply.get("result", {})
        error = reply.get("error") or {}
        raise ServiceError(
            error.get("type", "internal"), error.get("message", "unknown error")
        )

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ConnectionError("reply line exceeds protocol maximum")
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection mid-reply")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- convenience ops ---------------------------------------------------------
    def ping(self, delay_seconds: float = 0.0, **params) -> Dict[str, Any]:
        return self.call("ping", {"delay_seconds": delay_seconds, **params})

    def register(self, name: str, **spec) -> Dict[str, Any]:
        """Register a dataset; see :meth:`DatasetRegistry.register` for specs."""
        return self.call("register", {"name": name, **spec})

    def unregister(self, name: str) -> bool:
        return bool(self.call("unregister", {"dataset": name}).get("removed"))

    def list(self) -> Dict[str, Any]:
        return self.call("list")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def mine(self, dataset: str, **params) -> Dict[str, Any]:
        return self.call("mine", {"dataset": dataset, **params})

    def mine_topk(self, dataset: str, k: int, **params) -> Dict[str, Any]:
        return self.call("mine-topk", {"dataset": dataset, "k": int(k), **params})

    def plan(self, dataset: str, **params) -> Dict[str, Any]:
        """The execution plan a mine of ``dataset`` would run under.

        Pass ``plan="auto"`` for the cost-model planner's choice (with its
        rationale), a knob spec string/dict to see it resolved, or nothing
        for the server's environment defaults.
        """
        return self.call("plan", {"dataset": dataset, **params})

    def mine_records(self, dataset: str, **params) -> List[FrequentItemset]:
        """``mine`` decoded straight to :class:`FrequentItemset` records."""
        return decode_records(self.mine(dataset, **params)["itemsets"])

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")
