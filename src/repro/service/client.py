"""A blocking Python client for the mining service.

One client wraps one TCP connection and issues requests sequentially
(request ``id``s are still attached and checked, so a desynchronised
stream fails loudly instead of silently mismatching).  Thin by design:
every method is one :meth:`MiningClient.call` with the op's params, and
error replies surface as :class:`~repro.service.protocol.ServiceError`
with the server's error type intact.

**Every failure is structured.**  Transport failures — refused connects,
connections reset mid-request, truncated or garbled reply frames — raise
``ServiceError`` with the client-minted ``connection-lost`` type rather
than leaking raw ``ConnectionResetError`` / JSON decode errors, so a
caller handles one exception shape for every way a request can die.

**Retry policy.**  The client retries with exponential backoff + jitter:

* *connect failures* — nothing was sent, so any op retries;
* *mid-request connection loss* — only **idempotent** ops retry (mining
  and introspection; ``register``/``unregister``/``shutdown`` may have
  executed, so they surface the error after one attempt);
* *overloaded rejections* — the request never entered the worker pool, so
  any op retries, sleeping the server's ``retry_after_seconds`` hint when
  one is attached instead of the local backoff guess.

>>> from repro.service import MiningServer, MiningClient  # doctest: +SKIP
>>> with MiningServer(max_workers=2) as server:           # doctest: +SKIP
...     with MiningClient(*server.address) as client:
...         client.register("toy", dataset="t10i4d100k", scale=0.001)
...         reply = client.mine("toy", algorithm="uapriori", min_esup=0.3)
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Dict, List, Optional

from ..core.results import FrequentItemset
from .protocol import (
    ERROR_TYPES,
    MAX_LINE_BYTES,
    ServiceError,
    decode_line,
    decode_records,
    encode_line,
)

__all__ = ["MiningClient"]

#: ops safe to resubmit after a mid-request connection loss: read-only or
#: deterministic-result requests whose double execution is observably
#: identical to a single one
_IDEMPOTENT_OPS = frozenset(
    {"ping", "list", "stats", "health", "mine", "mine-topk", "plan"}
)


class MiningClient:
    """Socket client speaking the newline-delimited JSON protocol.

    Args:
        host: Server address.
        port: Server port (take both from ``MiningServer.address``).
        timeout_seconds: Socket timeout applied to connect and to every
            reply read.  Keep it above the server's per-request timeout so
            the server-side ``timeout`` error (a structured reply) arrives
            before the client-side socket gives up.
        retries: Extra attempts after a retryable failure (see the module
            docstring for what retries when).  ``0`` disables retrying.
        backoff_seconds: Base of the exponential backoff between attempts
            (``backoff * 2**n``, capped at ``backoff_cap_seconds``); an
            ``overloaded`` reply's ``retry_after_seconds`` hint overrides
            the computed delay.
        jitter_seconds: Upper bound of the uniform random jitter added to
            every backoff sleep (desynchronises retry storms from clients
            that failed together; pass ``0`` for deterministic tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_seconds: float = 60.0,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 2.0,
        jitter_seconds: float = 0.02,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_seconds = float(timeout_seconds)
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)
        self.jitter_seconds = float(jitter_seconds)
        #: transport/overload retries performed over this client's lifetime
        self.retries_performed = 0
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._ids = itertools.count(1)

    # -- connection --------------------------------------------------------------
    def connect(self) -> "MiningClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_seconds
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "MiningClient":
        return self.connect()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- core request/reply ------------------------------------------------------
    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Issue one request (retrying per policy), return the reply ``result``.

        Raises:
            ServiceError: The server replied with a structured error (its
                ``type`` — and ``retry_after_seconds`` hint, when present —
                are preserved), or the transport failed in a way the retry
                policy does not cover, surfacing as ``connection-lost``.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(op, params, timeout_seconds)
            except ServiceError as error:
                if attempt >= self.retries or not self._retryable(op, error):
                    raise
                delay = error.retry_after_seconds
                if delay is None:
                    delay = min(
                        self.backoff_cap_seconds,
                        self.backoff_seconds * (2 ** attempt),
                    )
                if self.jitter_seconds > 0:
                    delay += random.uniform(0.0, self.jitter_seconds)
                time.sleep(delay)
                attempt += 1
                self.retries_performed += 1

    @staticmethod
    def _retryable(op: str, error: ServiceError) -> bool:
        if error.type == "overloaded":
            # Rejected at admission — never executed, safe for any op.
            return True
        if error.type != "connection-lost":
            return False
        # getattr: connection-lost errors minted by _call_once carry the
        # sent flag; one decoded from a server reply (never happens today)
        # conservatively counts as sent.
        if not getattr(error, "request_sent", True):
            return True
        return op in _IDEMPOTENT_OPS

    def _call_once(
        self,
        op: str,
        params: Optional[Dict[str, Any]],
        timeout_seconds: Optional[float],
    ) -> Dict[str, Any]:
        try:
            self.connect()
        except OSError as oserror:
            self._sock = None
            error = ServiceError(
                "connection-lost",
                f"connect to {self.host}:{self.port} failed: {oserror}",
            )
            error.request_sent = False
            raise error from None
        request_id = next(self._ids)
        document = {"id": request_id, "op": op, "params": params or {}}
        try:
            self._sock.sendall(encode_line(document))
            if timeout_seconds is not None:
                self._sock.settimeout(timeout_seconds)
            try:
                reply = decode_line(self._read_line())
            finally:
                if timeout_seconds is not None and self._sock is not None:
                    self._sock.settimeout(self.timeout_seconds)
        except ServiceError as decode_error:
            # decode_line failed: the reply frame arrived garbled or cut
            # short (a dying server flushed half a line).  The stream is
            # unusable — drop the connection and surface the typed loss.
            self.close()
            error = ServiceError(
                "connection-lost",
                f"reply was truncated or corrupt: {decode_error.message}",
            )
            error.request_sent = True
            raise error from None
        except (ConnectionError, OSError) as oserror:
            self.close()
            error = ServiceError(
                "connection-lost",
                f"connection failed mid-request: {oserror or type(oserror).__name__}",
            )
            error.request_sent = True
            raise error from None
        reply_id = reply.get("id")
        if reply_id != request_id:
            if reply_id is None and not reply.get("ok"):
                # A connection-scoped error (oversize frame, garbled line):
                # the server could not attribute it to a request id and
                # closes the connection after sending it.  It answers the
                # in-flight request.
                self.close()
                raise self._reply_error(reply)
            self.close()
            error = ServiceError(
                "connection-lost",
                f"reply id {reply_id!r} does not match request "
                f"{request_id} (stream desynchronised)",
            )
            error.request_sent = True
            raise error
        if reply.get("ok"):
            return reply.get("result", {})
        raise self._reply_error(reply)

    @staticmethod
    def _reply_error(reply: Dict[str, Any]) -> ServiceError:
        """Rebuild the server's structured error from an error reply."""
        payload = reply.get("error") or {}
        error_type = payload.get("type", "internal")
        if error_type not in ERROR_TYPES:  # a newer server's vocabulary
            error_type = "internal"
        return ServiceError(
            error_type,
            payload.get("message", "unknown error"),
            payload.get("retry_after_seconds"),
        )

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ConnectionError("reply line exceeds protocol maximum")
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection mid-reply")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- convenience ops ---------------------------------------------------------
    def ping(self, delay_seconds: float = 0.0, **params) -> Dict[str, Any]:
        return self.call("ping", {"delay_seconds": delay_seconds, **params})

    def register(self, name: str, **spec) -> Dict[str, Any]:
        """Register a dataset; see :meth:`DatasetRegistry.register` for specs."""
        return self.call("register", {"name": name, **spec})

    def unregister(self, name: str) -> bool:
        return bool(self.call("unregister", {"dataset": name}).get("removed"))

    def list(self) -> Dict[str, Any]:
        return self.call("list")

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def health(self) -> Dict[str, Any]:
        """Degraded-state report: queue depth, pool restarts, fault counters."""
        return self.call("health")

    def mine(self, dataset: str, **params) -> Dict[str, Any]:
        return self.call("mine", {"dataset": dataset, **params})

    def mine_topk(self, dataset: str, k: int, **params) -> Dict[str, Any]:
        return self.call("mine-topk", {"dataset": dataset, "k": int(k), **params})

    def plan(self, dataset: str, **params) -> Dict[str, Any]:
        """The execution plan a mine of ``dataset`` would run under.

        Pass ``plan="auto"`` for the cost-model planner's choice (with its
        rationale), a knob spec string/dict to see it resolved, or nothing
        for the server's environment defaults.
        """
        return self.call("plan", {"dataset": dataset, **params})

    def mine_records(self, dataset: str, **params) -> List[FrequentItemset]:
        """``mine`` decoded straight to :class:`FrequentItemset` records."""
        return decode_records(self.mine(dataset, **params)["itemsets"])

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")
