"""The warm dataset registry of the mining service.

A dataset is registered **once** — by benchmark name, by path to an
``item:probability`` file, by out-of-core store directory, or as inline
records — and every subsequent request refers to it by its registered
name.  The registry keeps the expensive derived state *warm* between
requests: the :class:`~repro.db.columnar.ColumnarView` (CSR planes, item
statistics) and, for mapped datasets, the open
:class:`~repro.db.store.ColumnarStore`.

Warmth is budgeted, not unbounded.  The registered *handles* (how to
rebuild a dataset) are tiny and live forever; the warm *payloads* (the
materialised databases and their views) live in a
:class:`~repro.db.cache.ByteBudgetLRU` under ``REPRO_SERVICE_REGISTRY_BYTES``.
When the budget overflows, the least-recently-served dataset degrades to
cold — the next request that names it transparently rebuilds (or re-opens)
it and re-warms the cache.  Mapped datasets are charged a nominal constant
(their pages live in the OS page cache, exactly the
:data:`~repro.db.cache.MAPPED_CHARGE_BYTES` argument), so one registry can
keep many out-of-core stores warm alongside a few in-RAM datasets.

Every registration — including re-registration under an existing name —
bumps the dataset's **revision**.  The revision is part of every result
cache key, which is what guarantees cached answers are never served across
a re-register boundary (``tests/test_service_cache.py`` pins this).
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from .. import faults
from ..datasets.registry import dataset_names, load_dataset
from ..db.cache import ByteBudgetLRU, resolve_budget
from ..db.database import UncertainDatabase
from ..db.io import read_uncertain
from ..db.store import MANIFEST_NAME, ColumnarStore, StoreError
from .protocol import ServiceError

__all__ = [
    "REGISTRY_BYTES_ENV",
    "DEFAULT_REGISTRY_BYTES",
    "WARM_ENV",
    "DatasetHandle",
    "DatasetRegistry",
]

#: env override for the warm-payload byte budget
REGISTRY_BYTES_ENV = "REPRO_SERVICE_REGISTRY_BYTES"
#: default warm budget: a few benchmark-scale datasets
DEFAULT_REGISTRY_BYTES = 256 << 20
#: env knob ("on"/"off") for eager view warming at registration time
WARM_ENV = "REPRO_SERVICE_WARM"

#: nominal warm charge of a store-backed dataset (pages are reclaimable)
MAPPED_DATASET_CHARGE_BYTES = 4096


class DatasetHandle:
    """The permanent registration record of one dataset.

    Holds everything needed to rebuild the dataset after its warm payload
    was evicted — never the payload itself.
    """

    __slots__ = ("name", "revision", "spec", "n_transactions", "n_items", "kind")

    def __init__(
        self,
        name: str,
        revision: str,
        spec: Dict[str, Any],
        n_transactions: int,
        n_items: int,
    ) -> None:
        self.name = name
        self.revision = revision
        self.spec = spec
        self.n_transactions = n_transactions
        self.n_items = n_items
        self.kind = spec["kind"]

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "revision": self.revision,
            "kind": self.kind,
            "n_transactions": self.n_transactions,
            "n_items": self.n_items,
        }


class _WarmDataset:
    """A materialised database plus its byte charge for the LRU.

    ``payload_nbytes`` is the duck-typed charge
    :func:`repro.db.cache._payload_nbytes` consults: in-RAM datasets pay
    roughly their columnar footprint (16 bytes per stored unit: CSR row
    index + probability), store-backed datasets pay the nominal mapped
    charge.
    """

    __slots__ = ("database", "payload_nbytes")

    def __init__(self, database: UncertainDatabase, mapped: bool) -> None:
        self.database = database
        if mapped:
            self.payload_nbytes = MAPPED_DATASET_CHARGE_BYTES
        else:
            units = sum(len(t) for t in database.transactions)
            self.payload_nbytes = 16 * units + 512


class DatasetRegistry:
    """Named datasets with budgeted warm payloads and revisioned lifecycle."""

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        warm_views: Optional[bool] = None,
    ) -> None:
        if budget_bytes is None:
            budget_bytes = resolve_budget(REGISTRY_BYTES_ENV, DEFAULT_REGISTRY_BYTES)
        if warm_views is None:
            warm_views = os.environ.get(WARM_ENV, "").strip().lower() != "off"
        self.warm_views = bool(warm_views)
        self._warm = ByteBudgetLRU(budget_bytes)
        self._handles: Dict[str, DatasetHandle] = {}
        self._revisions = itertools.count(1)
        self._lock = threading.RLock()
        #: payload rebuilds forced by eviction (cold checkouts)
        self.rebuilds = 0
        #: store-backed datasets rebuilt from their ``source`` spec after
        #: failing checksum verification
        self.store_rebuilds = 0
        #: whole-cache flushes forced by the ``registry-evict`` fault site
        self.fault_evictions = 0

    # -- registration ------------------------------------------------------------
    def register(self, name: str, spec: Dict[str, Any]) -> DatasetHandle:
        """Register (or re-register) ``name`` from a build specification.

        Specs (the ``register`` op's params, minus the name):

        * ``{"kind": "benchmark", "dataset": <registered name>, "scale": s}``
        * ``{"kind": "file", "path": <item:probability file>}``
        * ``{"kind": "store", "directory": <columnar store dir>}``
        * ``{"kind": "inline", "records": [[[item, prob], ...], ...]}``

        The dataset is built immediately (a bad spec fails the register
        call, not some later mine) and enters the warm cache.  Re-registering
        an existing name atomically replaces it under a fresh revision.
        """
        name = str(name)
        if not name:
            raise ServiceError("bad-params", "dataset name must be non-empty")
        database, mapped, revision_suffix = self._build(spec)
        if self.warm_views:
            _warm_database(database)
        with self._lock:
            revision = f"r{next(self._revisions)}{revision_suffix}"
            handle = DatasetHandle(
                name,
                revision,
                dict(spec),
                len(database),
                len(database.items()),
            )
            self._handles[name] = handle
            self._warm.put((name, revision), _WarmDataset(database, mapped))
            return handle

    def unregister(self, name: str) -> bool:
        """Drop ``name`` entirely (handle and warm payload); True if present."""
        with self._lock:
            handle = self._handles.pop(name, None)
            if handle is None:
                return False
            self._warm.pop((name, handle.revision))
            return True

    # -- serving -----------------------------------------------------------------
    def checkout(self, name: str) -> Tuple[DatasetHandle, UncertainDatabase]:
        """Return the handle and (re)warmed database of ``name``.

        Raises:
            ServiceError: ``unknown-dataset`` when the name was never
                registered (or was unregistered).
        """
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                raise ServiceError(
                    "unknown-dataset",
                    f"dataset {name!r} is not registered; known: {self.names()}",
                )
            if faults.fire("registry-evict"):
                # Eviction storm: every warm payload degrades to cold at
                # once.  Serving must survive it — checkouts fall through
                # to the rebuild path below, nothing errors.
                self._warm.clear()
                self.fault_evictions += 1
            warm = self._warm.get((name, handle.revision))
            if warm is not None:
                return handle, warm.database
        # Rebuild outside the registry lock: a cold checkout must not
        # serialize every other request behind dataset construction.
        database, mapped, _ = self._build(handle.spec)
        if self.warm_views:
            _warm_database(database)
        with self._lock:
            current = self._handles.get(name)
            if current is not handle:
                # Re-registered (or unregistered) while rebuilding; retry
                # against the new state rather than serving stale data.
                return self.checkout(name)
            self.rebuilds += 1
            self._warm.put((name, handle.revision), _WarmDataset(database, mapped))
            return handle, database

    # -- introspection -----------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    def is_warm(self, name: str) -> bool:
        """Whether ``name`` would serve without a rebuild (no recency touch)."""
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                return False
            return (name, handle.revision) in self._warm

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "datasets": [self._handles[name].describe() for name in sorted(self._handles)],
                "warm": sorted(name for name in self._handles if self.is_warm(name)),
                "budget_bytes": self._warm.budget_bytes,
                "warm_nbytes": self._warm.nbytes,
                "rebuilds": self.rebuilds,
                "store_rebuilds": self.store_rebuilds,
                "fault_evictions": self.fault_evictions,
            }

    # -- construction ------------------------------------------------------------
    def _build(self, spec: Dict[str, Any]) -> Tuple[UncertainDatabase, bool, str]:
        """Materialise a database from its spec: (db, mapped?, revision suffix)."""
        kind = spec.get("kind")
        try:
            if kind == "benchmark":
                dataset = str(spec["dataset"])
                if dataset not in dataset_names():
                    raise ServiceError(
                        "bad-params",
                        f"unknown benchmark dataset {dataset!r}; known: {dataset_names()}",
                    )
                scale = float(spec.get("scale", 0.002))
                return load_dataset(dataset, scale=scale), False, ""
            if kind == "file":
                return read_uncertain(str(spec["path"]), name=str(spec["path"])), False, ""
            if kind == "store":
                store = self._open_verified_store(spec)
                stamp = store.stamp()
                return store.database(), True, f"-s{stamp[1]:x}-{stamp[2]:x}"
            if kind == "inline":
                records = [
                    {int(item): float(probability) for item, probability in row}
                    for row in spec["records"]
                ]
                return UncertainDatabase.from_records(records, name="inline"), False, ""
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError, StoreError) as error:
            raise ServiceError(
                "bad-params", f"invalid dataset spec {spec!r}: {error}"
            ) from None
        except OSError as error:
            raise ServiceError("bad-params", f"cannot load dataset: {error}") from None
        raise ServiceError(
            "bad-params",
            f"dataset spec kind must be benchmark/file/store/inline, got {kind!r}",
        )

    def _open_verified_store(self, spec: Dict[str, Any]) -> ColumnarStore:
        """Open a store-backed dataset, verifying plane checksums first.

        A store that fails verification (or fails to open at all) degrades
        to a transparent rebuild when the spec carries a ``source`` sub-spec
        — any other registerable spec describing where the data came from.
        The corrupt store is overwritten in place from the rebuilt database
        and re-verified; without a ``source``, the corruption surfaces as a
        structured ``corrupt-dataset`` error instead of wrong answers.
        """
        directory = str(spec["directory"])
        try:
            store = ColumnarStore.open(directory)
            store.verify(strict=True)
            return store
        except StoreError as error:
            source = spec.get("source")
            if not isinstance(source, dict):
                if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
                    # Nothing was ever stored here — a bad spec, not
                    # corruption; surfaces as bad-params like any other.
                    raise
                raise ServiceError(
                    "corrupt-dataset",
                    f"store {directory!r} failed verification and the spec "
                    f"carries no 'source' to rebuild from: {error}",
                ) from None
        database, _, _ = self._build(dict(source))
        store = ColumnarStore.save(database, directory)
        store.verify(strict=True)
        with self._lock:
            self.store_rebuilds += 1
        return store


def _warm_database(database: UncertainDatabase) -> None:
    """Eagerly build the derived state a first mine would otherwise pay for."""
    view = database.columnar()
    view.item_statistics()
