"""The mining server: a threaded JSON-over-socket serving layer.

Architecture (one box per component, see ``docs/ARCHITECTURE.md``)::

    client --- TCP ---> connection thread (framing, structured errors)
                           |  admission: bounded semaphore (workers+queue)
                           v
                        worker pool (ThreadPoolExecutor, per-request timeout)
                           |  checkout             |  fetch/store
                           v                       v
                        DatasetRegistry         ResultCache
                        (warm views, LRU)       (monotone filters, LRU)
                           |
                           v
                        repro.core.miner.mine / core.topk.mine_topk

The serving contract, pinned by ``tests/test_service*.py``:

* **Never a hung client.**  Every received request gets exactly one reply
  — malformed lines, unknown ops/datasets/algorithms, overload rejections
  and per-request timeouts all come back as structured errors.
* **Bounded admission.**  At most ``max_workers`` requests execute and
  ``max_queue`` wait; anything beyond is rejected immediately with an
  ``overloaded`` error instead of queuing unboundedly.
* **Graceful shutdown.**  ``close()`` stops accepting, lets in-flight
  requests finish and reply, then joins every connection thread and the
  worker pool.  Requests arriving mid-shutdown get a ``shutting-down``
  error.
* **Bitwise answers.**  Cached (exact-hit or monotone-filtered) responses
  are byte-identical to a fresh mine of the same request.
"""

from __future__ import annotations

import os
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Dict, Optional, Tuple

from .. import faults
from ..core.miner import mine
from ..core.parallel import live_pool_count, pool_restart_count
from ..core.registry import get_algorithm
from ..core.topk import mine_topk, ranking_of, resolve_evaluator
from ..plan import (
    DatasetFeatures,
    ExecutionPlan,
    Planner,
    ensure_plan,
    materialize_plan,
    plan_request_is_auto,
)
from .cache import ResultCache, plan_mine, plan_topk
from .protocol import (
    MAX_LINE_BYTES,
    ServiceError,
    decode_line,
    encode_line,
    encode_records,
    encode_statistics,
    error_reply,
    ok_reply,
)
from .registry import DatasetRegistry

__all__ = [
    "HOST_ENV",
    "PORT_ENV",
    "WORKERS_ENV",
    "QUEUE_ENV",
    "TIMEOUT_ENV",
    "MAX_FRAME_ENV",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_WORKERS",
    "DEFAULT_QUEUE",
    "DEFAULT_TIMEOUT_SECONDS",
    "MiningServer",
]

#: env knobs of the serving layer (see the README knob table)
HOST_ENV = "REPRO_SERVICE_HOST"
PORT_ENV = "REPRO_SERVICE_PORT"
WORKERS_ENV = "REPRO_SERVICE_WORKERS"
QUEUE_ENV = "REPRO_SERVICE_QUEUE"
TIMEOUT_ENV = "REPRO_SERVICE_TIMEOUT_SECONDS"
#: cap on one inbound request frame; oversize frames are rejected with a
#: structured ``bad-request`` error (never silently dropped)
MAX_FRAME_ENV = "REPRO_SERVICE_MAX_FRAME_BYTES"

DEFAULT_HOST = "127.0.0.1"
#: 0 = bind an ephemeral port (read it back from ``server.address``)
DEFAULT_PORT = 0
DEFAULT_WORKERS = 4
DEFAULT_QUEUE = 16
DEFAULT_TIMEOUT_SECONDS = 30.0

#: how often an idle connection thread re-checks the shutdown flag
_POLL_SECONDS = 0.05

#: ops that execute on the worker pool under admission control
_HEAVY_OPS = frozenset({"mine", "mine-topk", "register", "plan"})

#: the ``retry_after_seconds`` hint attached to ``overloaded`` rejections —
#: long enough for a worker slot to plausibly free, short enough that a
#: retrying client adds little latency when the burst clears immediately
_OVERLOAD_RETRY_AFTER_SECONDS = 0.1


def _env_str(name: str, default: str) -> str:
    value = os.environ.get(name, "").strip()
    return value or default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name, "").strip()
    return int(value) if value else default


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name, "").strip()
    return float(value) if value else default


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = False  # server_close() joins connection threads
    block_on_close = True

    def __init__(self, address, handler, mining_server: "MiningServer") -> None:
        self.mining_server = mining_server
        super().__init__(address, handler)


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per client connection: framing loop + reply writing."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server = self.server.mining_server
        sock = self.request
        sock.settimeout(_POLL_SECONDS)
        buffer = b""
        while True:
            if server.stopping and not buffer:
                return
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            if len(buffer) > server.max_frame_bytes:
                reply = error_reply(
                    None,
                    ServiceError(
                        "bad-request",
                        f"request frame exceeds {server.max_frame_bytes} bytes",
                    ),
                )
                self._send(sock, encode_line(reply))
                return
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                reply_bytes = encode_line(server.handle_line(line))
                # Fault-injection sites of the reply path (no-ops unless a
                # FaultPlan is active): a dropped connection discards the
                # whole reply with an RST; a truncated frame flushes half a
                # line then aborts — both exercise the client's typed
                # connection-lost handling end to end.
                if faults.fire("socket-drop"):
                    self._abort(sock)
                    return
                if faults.fire("socket-truncate"):
                    self._send(sock, reply_bytes[: max(1, len(reply_bytes) // 2)])
                    self._abort(sock)
                    return
                if not self._send(sock, reply_bytes):
                    return
                if server.stopping:
                    return

    @staticmethod
    def _send(sock, payload: bytes) -> bool:
        try:
            sock.sendall(payload)
            return True
        except OSError:
            return False

    @staticmethod
    def _abort(sock) -> None:
        """Hard-close: SO_LINGER(on, 0) turns close() into an RST, so the
        client sees an immediate reset instead of an orderly EOF."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass


class MiningServer:
    """A long-lived, multi-tenant frequent-itemset mining server.

    Parameters (each ``None`` falls back to its ``REPRO_SERVICE_*`` knob,
    then to the documented default):

    Args:
        host: Bind address (default ``127.0.0.1``).
        port: Bind port; ``0`` picks an ephemeral port, readable from
            :attr:`address` after :meth:`start`.
        max_workers: Concurrently executing heavy requests.
        max_queue: Heavy requests allowed to *wait* for a worker; beyond
            ``max_workers + max_queue`` in flight, requests are rejected
            with a structured ``overloaded`` error.
        timeout_seconds: Per-request execution ceiling.  A request may ask
            for less via ``params.timeout_seconds`` but never more.
        max_frame_bytes: Largest accepted request frame; oversize frames
            get a structured ``bad-request`` reply and the connection is
            closed.  Capped at the protocol's ``MAX_LINE_BYTES``.
        registry: Shared :class:`DatasetRegistry` (one is built otherwise).
        result_cache: Shared :class:`ResultCache` (one is built otherwise).
        use_cache: Master switch for result caching (per-request
            ``params.cache: false`` opts out of both lookup and store).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        max_workers: Optional[int] = None,
        max_queue: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        max_frame_bytes: Optional[int] = None,
        registry: Optional[DatasetRegistry] = None,
        result_cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        self.host = host if host is not None else _env_str(HOST_ENV, DEFAULT_HOST)
        self.port = int(port) if port is not None else _env_int(PORT_ENV, DEFAULT_PORT)
        self.max_workers = (
            int(max_workers)
            if max_workers is not None
            else _env_int(WORKERS_ENV, DEFAULT_WORKERS)
        )
        self.max_queue = (
            int(max_queue) if max_queue is not None else _env_int(QUEUE_ENV, DEFAULT_QUEUE)
        )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        self.timeout_seconds = (
            float(timeout_seconds)
            if timeout_seconds is not None
            else _env_float(TIMEOUT_ENV, DEFAULT_TIMEOUT_SECONDS)
        )
        self.max_frame_bytes = min(
            int(max_frame_bytes)
            if max_frame_bytes is not None
            else _env_int(MAX_FRAME_ENV, MAX_LINE_BYTES),
            MAX_LINE_BYTES,
        )
        if self.max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {self.max_frame_bytes}"
            )
        self.registry = registry if registry is not None else DatasetRegistry()
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self.use_cache = bool(use_cache)
        self._planner: Optional[Planner] = None
        self._planner_lock = threading.Lock()

        self._admission = threading.Semaphore(self.max_workers + self.max_queue)
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._close_lock = threading.Lock()
        self._tcp: Optional[_ServiceTCPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started_at = 0.0
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.requests_rejected = 0
        self.requests_timed_out = 0
        self.requests_failed = 0
        #: heavy requests currently holding an admission slot (executing
        #: or queued for a worker) — the ``health`` op's queue-depth gauge
        self._in_flight = 0

    # -- lifecycle ---------------------------------------------------------------
    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — call after :meth:`start`."""
        if self._tcp is None:
            raise RuntimeError("server is not started")
        return self._tcp.server_address[:2]

    def start(self) -> "MiningServer":
        """Bind the socket and start serving in a background thread."""
        if self._tcp is not None:
            raise RuntimeError("server is already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-service"
        )
        self._tcp = _ServiceTCPServer(
            (self.host, self.port), _ConnectionHandler, self
        )
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": _POLL_SECONDS},
            name="repro-service-accept",
        )
        self._serve_thread.start()
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        """Graceful shutdown: drain in-flight requests, join every thread."""
        with self._close_lock:
            if self._tcp is None or self._stopped.is_set():
                self._stopped.set()
                return
            self._stopping.set()
            self._tcp.shutdown()
            self._serve_thread.join()
            # server_close() joins the per-connection threads: every
            # in-flight request finishes and replies before this returns.
            self._tcp.server_close()
            self._executor.shutdown(wait=True)
            self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has fully shut down (the CLI's foreground)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "MiningServer":
        if self._tcp is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------------
    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode one framed request and produce exactly one reply document."""
        request_id: Any = None
        try:
            document = decode_line(line)
            request_id = document.get("id")
            op = document.get("op")
            if not isinstance(op, str):
                raise ServiceError("malformed-request", "request carries no op")
            params = document.get("params", {})
            if not isinstance(params, dict):
                raise ServiceError("malformed-request", "params must be an object")
            result = self._dispatch(op, params)
            with self._counter_lock:
                self.requests_served += 1
            return ok_reply(request_id, result)
        except ServiceError as error:
            self._count_error(error)
            return error_reply(request_id, error)
        except Exception as error:  # noqa: BLE001 - the never-hang backstop
            internal = ServiceError("internal", f"{type(error).__name__}: {error}")
            self._count_error(internal)
            return error_reply(request_id, internal)

    def _count_error(self, error: ServiceError) -> None:
        with self._counter_lock:
            self.requests_failed += 1
            if error.type == "overloaded":
                self.requests_rejected += 1
            elif error.type == "timeout":
                self.requests_timed_out += 1

    def _dispatch(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.stopping:
            raise ServiceError("shutting-down", "server is shutting down")
        heavy = op in _HEAVY_OPS or (
            op == "ping" and float(params.get("delay_seconds", 0.0) or 0.0) > 0.0
        )
        if not heavy:
            return self._run_op(op, params)
        if not self._admission.acquire(blocking=False):
            raise ServiceError(
                "overloaded",
                f"admission limit reached ({self.max_workers} executing + "
                f"{self.max_queue} queued); retry later",
                retry_after_seconds=_OVERLOAD_RETRY_AFTER_SECONDS,
            )
        with self._counter_lock:
            self._in_flight += 1
        try:
            future = self._executor.submit(self._run_op, op, params)
        except RuntimeError:
            self._release_slot()
            raise ServiceError("shutting-down", "server is shutting down") from None
        future.add_done_callback(lambda _f: self._release_slot())
        timeout = self.timeout_seconds
        requested = params.get("timeout_seconds")
        if requested is not None:
            timeout = min(timeout, float(requested))
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            future.cancel()
            raise ServiceError(
                "timeout", f"request exceeded {timeout:.3f}s"
            ) from None

    def _run_op(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            delay = float(params.get("delay_seconds", 0.0) or 0.0)
            if delay > 0.0:
                time.sleep(delay)
            return {"pong": True, "delayed_seconds": delay}
        if op == "list":
            return {
                "datasets": self.registry.describe()["datasets"],
                "algorithms": _algorithm_listing(),
            }
        if op == "register":
            return self._op_register(params)
        if op == "unregister":
            name = _require_str(params, "dataset")
            return {"removed": self.registry.unregister(name)}
        if op == "stats":
            return self._op_stats()
        if op == "health":
            return self._op_health()
        if op == "mine":
            return self._op_mine(params)
        if op == "mine-topk":
            return self._op_mine_topk(params)
        if op == "plan":
            return self._op_plan(params)
        if op == "shutdown":
            self._begin_stop()
            return {"stopping": True}
        raise ServiceError("unknown-op", f"unknown op {op!r}")

    def _begin_stop(self) -> None:
        self._stopping.set()
        threading.Thread(target=self.close, name="repro-service-closer").start()

    # -- ops ---------------------------------------------------------------------
    def _op_register(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = _require_str(params, "name")
        spec = {key: value for key, value in params.items() if key != "name"}
        if "kind" not in spec:
            # Infer the spec kind from the parameter shape, so simple
            # clients can say {"name": ..., "dataset": "accident"}.
            if "dataset" in spec:
                spec["kind"] = "benchmark"
            elif "directory" in spec:
                spec["kind"] = "store"
            elif "records" in spec:
                spec["kind"] = "inline"
            elif "path" in spec:
                spec["kind"] = "file"
            else:
                raise ServiceError(
                    "bad-params",
                    "register needs one of dataset/directory/records/path",
                )
        handle = self.registry.register(name, spec)
        return handle.describe()

    def _release_slot(self) -> None:
        with self._counter_lock:
            self._in_flight -= 1
        self._admission.release()

    def _op_stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            counters = {
                "served": self.requests_served,
                "failed": self.requests_failed,
                "rejected": self.requests_rejected,
                "timed_out": self.requests_timed_out,
            }
        return {
            "registry": self.registry.describe(),
            "result_cache": self.result_cache.describe(),
            "requests": counters,
            "live_pools": live_pool_count(),
            "pool_restarts": pool_restart_count(),
            "faults": faults.fault_counters(),
            "max_workers": self.max_workers,
            "max_queue": self.max_queue,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
        }

    def _op_health(self) -> Dict[str, Any]:
        """Degraded-state report: cheap gauges a load balancer can poll.

        Deliberately a *light* op — it answers even when every worker slot
        is saturated (the condition it exists to report).
        """
        with self._counter_lock:
            in_flight = self._in_flight
            rejected = self.requests_rejected
            timed_out = self.requests_timed_out
        queue_depth = max(0, in_flight - self.max_workers)
        registry = self.registry.describe()
        reasons = []
        if self.stopping:
            reasons.append("shutting down")
        if in_flight >= self.max_workers + self.max_queue:
            reasons.append("admission saturated")
        elif queue_depth > 0:
            reasons.append("requests queued")
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "in_flight": in_flight,
            "queue_depth": queue_depth,
            "max_workers": self.max_workers,
            "max_queue": self.max_queue,
            "rejected": rejected,
            "timed_out": timed_out,
            "live_pools": live_pool_count(),
            "pool_restarts": pool_restart_count(),
            "registry_rebuilds": registry.get("rebuilds", 0),
            "store_rebuilds": registry.get("store_rebuilds", 0),
            "fault_evictions": registry.get("fault_evictions", 0),
            "cache_evictions": self.result_cache.describe().get("evictions", 0),
            "faults": faults.fault_counters(),
        }

    def _mine_options(self, params: Dict[str, Any]) -> Dict[str, Any]:
        options: Dict[str, Any] = {}
        if params.get("backend") is not None:
            options["backend"] = str(params["backend"])
        if params.get("workers") is not None:
            options["workers"] = int(params["workers"])
        if params.get("shards") is not None:
            options["shards"] = int(params["shards"])
        return options

    def _get_planner(self) -> Planner:
        with self._planner_lock:
            if self._planner is None:
                self._planner = Planner.from_trajectory()
            return self._planner

    def _materialize_request_plan(
        self, params: Dict[str, Any], database, options: Dict[str, Any]
    ) -> ExecutionPlan:
        """Resolve the request's execution plan to concrete knobs, server-side.

        The returned plan is fully specified, so passing it into the miner
        pins every knob through a thread-local scope — concurrent requests
        with different plans never observe each other's configuration (no
        process-global state is touched), and the resolved bitwise-relevant
        knobs are available up front for the cache key.
        """
        request = params.get("plan")
        try:
            planner = self._get_planner() if plan_request_is_auto(request) else None
            return materialize_plan(
                ensure_plan(request),
                database,
                explicit={
                    "backend": options.get("backend"),
                    "workers": options.get("workers"),
                    "shards": options.get("shards"),
                },
                planner=planner,
            )
        except (TypeError, ValueError, KeyError) as error:
            raise ServiceError("bad-params", f"invalid plan: {error}") from None

    def _op_plan(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Report the execution plan a mine of ``params.dataset`` would run under."""
        name = _require_str(params, "dataset")
        handle, database = self.registry.checkout(name)
        options = self._mine_options(params)
        exec_plan = self._materialize_request_plan(params, database, options)
        planner = self._get_planner()
        features = DatasetFeatures.from_database(database)
        reply: Dict[str, Any] = {
            "dataset": handle.name,
            "revision": handle.revision,
            "plan": exec_plan.to_dict(),
            "features": features.to_dict(),
            "predicted_seconds": planner.predict_seconds(features, exec_plan),
        }
        if plan_request_is_auto(params.get("plan")):
            reply["rationale"] = dict(planner.plan(features).rationale)
        return reply

    def _op_mine(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = _require_str(params, "dataset")
        algorithm = str(params.get("algorithm", "uapriori"))
        try:
            info = get_algorithm(algorithm)
        except KeyError as error:
            raise ServiceError("unknown-algorithm", str(error)) from None
        handle, database = self.registry.checkout(name)
        options = self._mine_options(params)
        exec_plan = self._materialize_request_plan(params, database, options)
        use_cache = self.use_cache and bool(params.get("cache", True))

        try:
            if info.family == "expected":
                min_esup = float(params.get("min_esup", 0.5))
                min_sup = None
                pft = 0.9
            else:
                min_esup = None
                min_sup = float(params.get("min_sup", 0.5))
                pft = float(params.get("pft", 0.9))
            cache_plan = plan_mine(
                handle.name,
                handle.revision,
                info.name,
                info.family,
                len(database),
                exec_plan.backend,
                min_esup,
                min_sup,
                pft,
                conv_span=exec_plan.conv_span,
            )
        except (TypeError, ValueError) as error:
            raise ServiceError("bad-params", f"invalid thresholds: {error}") from None

        statistics = None
        cached = self.result_cache.fetch_mine(cache_plan) if use_cache else None
        if cached is not None:
            records, status = cached
        else:
            status = "miss" if use_cache else "off"
            try:
                if info.family == "expected":
                    result = mine(
                        database,
                        algorithm=info.name,
                        min_esup=min_esup,
                        plan=exec_plan,
                        **options,
                    )
                else:
                    result = mine(
                        database,
                        algorithm=info.name,
                        min_sup=min_sup,
                        pft=pft,
                        plan=exec_plan,
                        **options,
                    )
            except (TypeError, ValueError) as error:
                raise ServiceError("bad-params", str(error)) from None
            records = result.itemsets
            statistics = encode_statistics(result.statistics)
            if use_cache:
                self.result_cache.store_mine(cache_plan, records)

        limit = params.get("limit")
        shown = records if limit is None else records[: int(limit)]
        return {
            "dataset": handle.name,
            "revision": handle.revision,
            "algorithm": info.name,
            "n": len(records),
            "cache": status,
            "plan": exec_plan.to_dict(),
            "itemsets": encode_records(shown),
            "truncated": len(shown) < len(records),
            "statistics": statistics,
        }

    def _op_mine_topk(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = _require_str(params, "dataset")
        algorithm = str(params.get("algorithm", "uapriori"))
        try:
            evaluator = resolve_evaluator(algorithm)
        except KeyError as error:
            raise ServiceError("unknown-algorithm", str(error)) from None
        ranking = ranking_of(evaluator)
        try:
            k = int(params["k"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError("bad-params", "mine-topk requires an integer k") from None
        if k < 1:
            raise ServiceError("bad-params", f"k must be >= 1, got {k}")
        handle, database = self.registry.checkout(name)
        options = self._mine_options(params)
        exec_plan = self._materialize_request_plan(params, database, options)
        use_cache = self.use_cache and bool(params.get("cache", True))

        min_sup: Optional[float] = None
        if ranking == "probability":
            min_sup = float(params.get("min_sup", 0.3))
        group = plan_topk(
            handle.name,
            handle.revision,
            evaluator,
            ranking,
            len(database),
            exec_plan.backend,
            min_sup,
            conv_span=exec_plan.conv_span,
        )

        statistics = None
        cached = self.result_cache.fetch_topk(group, k) if use_cache else None
        if cached is not None:
            records, status = cached
        else:
            status = "miss" if use_cache else "off"
            try:
                result = mine_topk(
                    database,
                    k,
                    algorithm=evaluator,
                    min_sup=min_sup,
                    plan=exec_plan,
                    **options,
                )
            except (TypeError, ValueError) as error:
                raise ServiceError("bad-params", str(error)) from None
            records = result.itemsets
            statistics = encode_statistics(result.statistics)
            if use_cache:
                self.result_cache.store_topk(group, k, records)

        return {
            "dataset": handle.name,
            "revision": handle.revision,
            "evaluator": evaluator,
            "ranking": ranking,
            "k": k,
            "n": len(records),
            "cache": status,
            "plan": exec_plan.to_dict(),
            "itemsets": encode_records(records),
            "statistics": statistics,
        }


def _require_str(params: Dict[str, Any], key: str) -> str:
    value = params.get(key)
    if not isinstance(value, str) or not value:
        raise ServiceError("bad-params", f"params.{key} must be a non-empty string")
    return value


def _algorithm_listing() -> list:
    from ..core.registry import algorithm_names

    listing = []
    for name in algorithm_names():
        info = get_algorithm(name)
        listing.append(
            {"name": info.name, "family": info.family, "description": info.description}
        )
    return listing
