"""Experiment scenarios: one specification per figure panel / table of the paper.

Each :class:`ExperimentSpec` names the dataset (by registry name), the
algorithms to compare, the swept parameter with its values and the fixed
thresholds.  The default values reproduce the paper's parameter grids
(Tables 6 and 7 and the axis ranges of Figures 4-6) at a scaled-down
database size so a pure-Python sweep finishes in minutes; passing a larger
``scale`` regenerates the original sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ExperimentSpec",
    "StreamingScenario",
    "TopKScenario",
    "EXPECTED_ALGORITHMS",
    "EXACT_ALGORITHMS",
    "APPROXIMATE_ALGORITHMS",
    "figure4_time_and_memory",
    "figure4_scalability",
    "figure4_zipf",
    "figure5_min_sup",
    "figure5_pft",
    "figure5_scalability",
    "figure5_zipf",
    "figure6_min_sup",
    "figure6_pft",
    "figure6_scalability",
    "figure6_zipf",
    "table8_accuracy_dense",
    "table9_accuracy_sparse",
    "streaming_scenarios",
    "topk_scenarios",
    "all_scenarios",
]

#: the three expected-support miners of Figure 4
EXPECTED_ALGORITHMS = ("uapriori", "uh-mine", "ufp-growth")
#: the four exact probabilistic configurations of Figure 5
EXACT_ALGORITHMS = ("dpnb", "dpb", "dcnb", "dcb")
#: the three approximate miners of Figure 6 (DCB is added as the exact reference)
APPROXIMATE_ALGORITHMS = ("pdu-apriori", "ndu-apriori", "nduh-mine")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: a dataset, a set of algorithms and a parameter sweep."""

    experiment_id: str
    title: str
    dataset: str
    algorithms: Sequence[str]
    parameter: str
    values: Sequence[float]
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    fixed: Dict[str, float] = field(default_factory=dict)
    track_memory: bool = False

    def with_memory_tracking(self) -> "ExperimentSpec":
        """Return a copy of this spec with peak-memory measurement enabled."""
        return ExperimentSpec(
            experiment_id=self.experiment_id + "-memory",
            title=self.title + " (memory)",
            dataset=self.dataset,
            algorithms=self.algorithms,
            parameter=self.parameter,
            values=self.values,
            dataset_kwargs=dict(self.dataset_kwargs),
            fixed=dict(self.fixed),
            track_memory=True,
        )


# ---------------------------------------------------------------------------
# Figure 4: expected-support-based algorithms
# ---------------------------------------------------------------------------

_FIG4_GRIDS: Dict[str, Sequence[float]] = {
    # The paper sweeps min_esup downwards; the grids mirror the x-axes of
    # Figure 4 but stop before the pure-Python runs become hour-long.
    "connect": (0.9, 0.8, 0.7, 0.6, 0.5),
    "accident": (0.4, 0.3, 0.2, 0.1),
    "kosarak": (0.1, 0.05, 0.01, 0.005),
    "gazelle": (0.1, 0.05, 0.025, 0.01),
}


def figure4_time_and_memory(scale: float = 0.002, track_memory: bool = False) -> List[ExperimentSpec]:
    """Figure 4(a-h): running time / memory of the expected-support miners vs ``min_esup``."""
    panels = {"connect": "4a", "accident": "4b", "kosarak": "4c", "gazelle": "4d"}
    specs = []
    for dataset, panel in panels.items():
        specs.append(
            ExperimentSpec(
                experiment_id=f"fig{panel}",
                title=f"{dataset}: min_esup vs time",
                dataset=dataset,
                algorithms=EXPECTED_ALGORITHMS,
                parameter="min_esup",
                values=_FIG4_GRIDS[dataset],
                dataset_kwargs={"scale": scale},
                track_memory=track_memory,
            )
        )
    return specs


def figure4_scalability(sizes: Sequence[int] = (200, 400, 800, 1600, 3200)) -> ExperimentSpec:
    """Figure 4(i-j): scalability of the expected-support miners on T25I15D."""
    return ExperimentSpec(
        experiment_id="fig4i",
        title="T25I15D: number of transactions vs time",
        dataset="t25i15d",
        algorithms=EXPECTED_ALGORITHMS,
        parameter="n_transactions",
        values=tuple(sizes),
        fixed={"min_esup": 0.1},
    )


def figure4_zipf(skews: Sequence[float] = (0.8, 1.2, 1.6, 2.0)) -> ExperimentSpec:
    """Figure 4(k-l): effect of the Zipf skew on the expected-support miners."""
    return ExperimentSpec(
        experiment_id="fig4k",
        title="Zipf dense: skew vs time",
        dataset="zipf-dense",
        algorithms=EXPECTED_ALGORITHMS,
        parameter="skew",
        values=tuple(skews),
        dataset_kwargs={"n_transactions": 600},
        fixed={"min_esup": 0.05},
    )


# ---------------------------------------------------------------------------
# Figure 5: exact probabilistic algorithms
# ---------------------------------------------------------------------------


def figure5_min_sup(scale: float = 0.002, track_memory: bool = False) -> List[ExperimentSpec]:
    """Figure 5(a-d): exact miners vs ``min_sup`` on Accident (dense) and Kosarak (sparse)."""
    return [
        ExperimentSpec(
            experiment_id="fig5a",
            title="accident: min_sup vs time (exact miners)",
            dataset="accident",
            algorithms=EXACT_ALGORITHMS,
            parameter="min_sup",
            values=(0.4, 0.3, 0.2, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"pft": 0.9},
            track_memory=track_memory,
        ),
        ExperimentSpec(
            experiment_id="fig5c",
            title="kosarak: min_sup vs time (exact miners)",
            dataset="kosarak",
            algorithms=EXACT_ALGORITHMS,
            parameter="min_sup",
            values=(0.1, 0.05, 0.02, 0.01),
            dataset_kwargs={"scale": scale},
            fixed={"pft": 0.9},
            track_memory=track_memory,
        ),
    ]


def figure5_pft(scale: float = 0.002, track_memory: bool = False) -> List[ExperimentSpec]:
    """Figure 5(e-h): exact miners vs ``pft``."""
    return [
        ExperimentSpec(
            experiment_id="fig5e",
            title="accident: pft vs time (exact miners)",
            dataset="accident",
            algorithms=EXACT_ALGORITHMS,
            parameter="pft",
            values=(0.9, 0.7, 0.5, 0.3, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"min_sup": 0.3},
            track_memory=track_memory,
        ),
        ExperimentSpec(
            experiment_id="fig5g",
            title="kosarak: pft vs time (exact miners)",
            dataset="kosarak",
            algorithms=EXACT_ALGORITHMS,
            parameter="pft",
            values=(0.9, 0.7, 0.5, 0.3, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"min_sup": 0.05},
            track_memory=track_memory,
        ),
    ]


def figure5_scalability(sizes: Sequence[int] = (100, 200, 400, 800)) -> ExperimentSpec:
    """Figure 5(i-j): scalability of the exact miners on T25I15D."""
    return ExperimentSpec(
        experiment_id="fig5i",
        title="T25I15D: number of transactions vs time (exact miners)",
        dataset="t25i15d",
        algorithms=EXACT_ALGORITHMS,
        parameter="n_transactions",
        values=tuple(sizes),
        fixed={"min_sup": 0.1, "pft": 0.9},
    )


def figure5_zipf(skews: Sequence[float] = (0.8, 1.2, 1.6, 2.0)) -> ExperimentSpec:
    """Figure 5(k-l): effect of the Zipf skew on the exact miners."""
    return ExperimentSpec(
        experiment_id="fig5k",
        title="Zipf dense: skew vs time (exact miners)",
        dataset="zipf-dense",
        algorithms=EXACT_ALGORITHMS,
        parameter="skew",
        values=tuple(skews),
        dataset_kwargs={"n_transactions": 400},
        fixed={"min_sup": 0.05, "pft": 0.9},
    )


# ---------------------------------------------------------------------------
# Figure 6: approximate probabilistic algorithms (DCB as exact reference)
# ---------------------------------------------------------------------------


def figure6_min_sup(scale: float = 0.002, track_memory: bool = False) -> List[ExperimentSpec]:
    """Figure 6(a-d): approximate miners (plus DCB) vs ``min_sup``."""
    algorithms = ("dcb",) + APPROXIMATE_ALGORITHMS
    return [
        ExperimentSpec(
            experiment_id="fig6a",
            title="accident: min_sup vs time (approximate miners)",
            dataset="accident",
            algorithms=algorithms,
            parameter="min_sup",
            values=(0.4, 0.3, 0.2, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"pft": 0.9},
            track_memory=track_memory,
        ),
        ExperimentSpec(
            experiment_id="fig6c",
            title="kosarak: min_sup vs time (approximate miners)",
            dataset="kosarak",
            algorithms=algorithms,
            parameter="min_sup",
            values=(0.1, 0.05, 0.01, 0.005),
            dataset_kwargs={"scale": scale},
            fixed={"pft": 0.9},
            track_memory=track_memory,
        ),
    ]


def figure6_pft(scale: float = 0.002, track_memory: bool = False) -> List[ExperimentSpec]:
    """Figure 6(e-h): approximate miners (plus DCB) vs ``pft``."""
    algorithms = ("dcb",) + APPROXIMATE_ALGORITHMS
    return [
        ExperimentSpec(
            experiment_id="fig6e",
            title="accident: pft vs time (approximate miners)",
            dataset="accident",
            algorithms=algorithms,
            parameter="pft",
            values=(0.9, 0.7, 0.5, 0.3, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"min_sup": 0.2},
            track_memory=track_memory,
        ),
        ExperimentSpec(
            experiment_id="fig6g",
            title="kosarak: pft vs time (approximate miners)",
            dataset="kosarak",
            algorithms=algorithms,
            parameter="pft",
            values=(0.9, 0.7, 0.5, 0.3, 0.1),
            dataset_kwargs={"scale": scale},
            fixed={"min_sup": 0.05},
            track_memory=track_memory,
        ),
    ]


def figure6_scalability(sizes: Sequence[int] = (200, 400, 800, 1600, 3200)) -> ExperimentSpec:
    """Figure 6(i-j): scalability of the approximate miners on T25I15D."""
    return ExperimentSpec(
        experiment_id="fig6i",
        title="T25I15D: number of transactions vs time (approximate miners)",
        dataset="t25i15d",
        algorithms=APPROXIMATE_ALGORITHMS,
        parameter="n_transactions",
        values=tuple(sizes),
        fixed={"min_sup": 0.1, "pft": 0.9},
    )


def figure6_zipf(skews: Sequence[float] = (0.8, 1.2, 1.6, 2.0)) -> ExperimentSpec:
    """Figure 6(k-l): effect of the Zipf skew on the approximate miners."""
    return ExperimentSpec(
        experiment_id="fig6k",
        title="Zipf dense: skew vs time (approximate miners)",
        dataset="zipf-dense",
        algorithms=APPROXIMATE_ALGORITHMS,
        parameter="skew",
        values=tuple(skews),
        dataset_kwargs={"n_transactions": 600},
        fixed={"min_sup": 0.05, "pft": 0.9},
    )


# ---------------------------------------------------------------------------
# Tables 8 and 9: precision / recall of the approximate miners
# ---------------------------------------------------------------------------


def table8_accuracy_dense(scale: float = 0.002) -> ExperimentSpec:
    """Table 8: approximation accuracy on the dense Accident analogue."""
    return ExperimentSpec(
        experiment_id="table8",
        title="accident: precision/recall of approximate miners",
        dataset="accident",
        algorithms=APPROXIMATE_ALGORITHMS,
        parameter="min_sup",
        values=(0.4, 0.3, 0.2, 0.15, 0.1),
        dataset_kwargs={"scale": scale},
        fixed={"pft": 0.9},
    )


def table9_accuracy_sparse(scale: float = 0.002) -> ExperimentSpec:
    """Table 9: approximation accuracy on the sparse Kosarak analogue."""
    return ExperimentSpec(
        experiment_id="table9",
        title="kosarak: precision/recall of approximate miners",
        dataset="kosarak",
        algorithms=APPROXIMATE_ALGORITHMS,
        parameter="min_sup",
        values=(0.1, 0.05, 0.01, 0.005, 0.0025),
        dataset_kwargs={"scale": scale},
        fixed={"pft": 0.9},
    )


# ---------------------------------------------------------------------------
# Streaming scenarios: sliding-window mining over replayed benchmark traffic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamingScenario:
    """One streaming workload: a dataset replayed through a sliding window.

    The dataset's transactions are replayed in order as the arrival stream;
    the streaming variant of ``algorithm`` (``"uapriori"`` or ``"dp"``)
    re-emits the frequent set after each slide of ``step`` arrivals, up to
    ``max_slides`` slides after the window first fills.
    """

    scenario_id: str
    title: str
    dataset: str
    algorithm: str
    window: int
    step: int
    max_slides: int
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    thresholds: Dict[str, float] = field(default_factory=dict)


def streaming_scenarios(scale: float = 0.002) -> List[StreamingScenario]:
    """The streaming workloads: dense and sparse replays of both definitions.

    Window and step sizes are matched to the scaled benchmark sizes (an
    ``accident`` replay at the default scale holds ~680 transactions, a
    ``kosarak`` replay ~1980), so every scenario completes several full
    slides before the replay is exhausted.
    """
    return [
        StreamingScenario(
            scenario_id="stream-ua-accident",
            title="accident replay: windowed expected-support mining (UApriori)",
            dataset="accident",
            algorithm="uapriori",
            window=256,
            step=32,
            max_slides=8,
            dataset_kwargs={"scale": scale},
            thresholds={"min_esup": 0.3},
        ),
        StreamingScenario(
            scenario_id="stream-dp-accident",
            title="accident replay: windowed exact probabilistic mining (DP)",
            dataset="accident",
            algorithm="dp",
            window=256,
            step=32,
            max_slides=8,
            dataset_kwargs={"scale": scale},
            thresholds={"min_sup": 0.3, "pft": 0.9},
        ),
        StreamingScenario(
            scenario_id="stream-ua-kosarak",
            title="kosarak replay: windowed expected-support mining (UApriori)",
            dataset="kosarak",
            algorithm="uapriori",
            window=512,
            step=64,
            max_slides=8,
            dataset_kwargs={"scale": scale},
            thresholds={"min_esup": 0.02},
        ),
        StreamingScenario(
            scenario_id="stream-dp-kosarak",
            title="kosarak replay: windowed exact probabilistic mining (DP)",
            dataset="kosarak",
            algorithm="dp",
            window=512,
            step=64,
            max_slides=8,
            dataset_kwargs={"scale": scale},
            thresholds={"min_sup": 0.02, "pft": 0.9},
        ),
    ]


# ---------------------------------------------------------------------------
# Top-k scenarios: ranked serving workloads over the same benchmark replicas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopKScenario:
    """One ranked-serving workload: a k-sweep of one evaluator on one dataset.

    ``algorithm`` is a registered algorithm or evaluator name (resolved by
    :func:`repro.core.topk.resolve_evaluator`); ``min_sup`` fixes the
    support level of the probabilistic ranking and is ``None`` for the
    expected-support one.
    """

    scenario_id: str
    title: str
    dataset: str
    algorithm: str
    ks: Sequence[int]
    min_sup: Optional[float] = None
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)


def topk_scenarios(scale: float = 0.002) -> List[TopKScenario]:
    """The ranked-serving workloads: both rankings on dense and sparse replicas.

    The k grids are chosen so the largest k still sits well below the full
    frequent set at the scenarios' implied thresholds (``k << |F|``, the
    regime the threshold-raising floor pays off in).
    """
    return [
        TopKScenario(
            scenario_id="topk-esup-accident",
            title="accident: top-k by expected support (Definition 2 ordering)",
            dataset="accident",
            algorithm="uapriori",
            ks=(5, 10, 25, 50),
            dataset_kwargs={"scale": scale},
        ),
        TopKScenario(
            scenario_id="topk-dp-accident",
            title="accident: top-k by frequentness probability (DP scoring)",
            dataset="accident",
            algorithm="dpb",
            ks=(5, 10, 25),
            min_sup=0.3,
            dataset_kwargs={"scale": scale},
        ),
        TopKScenario(
            scenario_id="topk-esup-kosarak",
            title="kosarak: top-k by expected support (Definition 2 ordering)",
            dataset="kosarak",
            algorithm="uapriori",
            ks=(5, 10, 25, 50),
            dataset_kwargs={"scale": scale},
        ),
        TopKScenario(
            scenario_id="topk-dp-kosarak",
            title="kosarak: top-k by frequentness probability (DP scoring)",
            dataset="kosarak",
            algorithm="dpb",
            ks=(5, 10, 25),
            min_sup=0.02,
            dataset_kwargs={"scale": scale},
        ),
    ]


def all_scenarios(scale: float = 0.002) -> List[ExperimentSpec]:
    """Every figure/table scenario with default (scaled-down) settings."""
    specs: List[ExperimentSpec] = []
    specs.extend(figure4_time_and_memory(scale))
    specs.append(figure4_scalability())
    specs.append(figure4_zipf())
    specs.extend(figure5_min_sup(scale))
    specs.extend(figure5_pft(scale))
    specs.append(figure5_scalability())
    specs.append(figure5_zipf())
    specs.extend(figure6_min_sup(scale))
    specs.extend(figure6_pft(scale))
    specs.append(figure6_scalability())
    specs.append(figure6_zipf())
    specs.append(table8_accuracy_dense(scale))
    specs.append(table9_accuracy_sparse(scale))
    return specs
