"""Accuracy metrics for comparing mining results.

The paper evaluates the approximate probabilistic miners by *precision* and
*recall* against the exact result set (Tables 8 and 9), and argues for the
unification of the two frequent-itemset definitions by showing that the
approximate probabilities converge to the exact ones as the database grows.
These helpers implement exactly those measures over
:class:`~repro.core.results.MiningResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.results import MiningResult

__all__ = ["AccuracyReport", "precision", "recall", "f1_score", "compare_results"]


def precision(approximate: MiningResult, exact: MiningResult) -> float:
    """``|AR ∩ ER| / |AR|`` — the fraction of reported itemsets that are truly frequent.

    Empty-result convention (pinned, so no division by zero is reachable):
    an empty approximate result has precision **1.0** — no false positives
    can exist (the paper's convention, and the vacuous-truth reading of the
    ratio).  This holds whether or not the exact result is empty too.
    """
    approximate_keys = approximate.itemset_keys()
    if not approximate_keys:
        return 1.0
    exact_keys = exact.itemset_keys()
    return len(approximate_keys & exact_keys) / len(approximate_keys)


def recall(approximate: MiningResult, exact: MiningResult) -> float:
    """``|AR ∩ ER| / |ER|`` — the fraction of truly frequent itemsets that are reported.

    Empty-result convention (pinned, so no division by zero is reachable):
    an empty exact result has recall **1.0** — there was nothing to find,
    so nothing was missed — whether or not the approximate result is empty.
    """
    exact_keys = exact.itemset_keys()
    if not exact_keys:
        return 1.0
    approximate_keys = approximate.itemset_keys()
    return len(approximate_keys & exact_keys) / len(exact_keys)


def f1_score(approximate: MiningResult, exact: MiningResult) -> float:
    """Harmonic mean of precision and recall.

    Inherits the empty-result conventions of :func:`precision` and
    :func:`recall`: both results empty gives ``f1 = 1.0`` (precision and
    recall are both 1), exactly one side empty gives ``f1 = 0.0`` (one of
    the two is 0), and the only remaining degenerate case — precision and
    recall both 0, i.e. two disjoint non-empty results — is pinned to
    ``0.0`` explicitly, so the harmonic mean never divides by zero.
    """
    p = precision(approximate, exact)
    r = recall(approximate, exact)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


@dataclass(frozen=True)
class AccuracyReport:
    """Precision/recall comparison of an approximate result against an exact one."""

    precision: float
    recall: float
    f1: float
    n_approximate: int
    n_exact: int
    n_common: int
    false_positives: int
    false_negatives: int
    max_probability_error: Optional[float]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dictionary (for CSV reporting)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "n_approximate": float(self.n_approximate),
            "n_exact": float(self.n_exact),
            "n_common": float(self.n_common),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "max_probability_error": (
                self.max_probability_error if self.max_probability_error is not None else float("nan")
            ),
        }


def compare_results(approximate: MiningResult, exact: MiningResult) -> AccuracyReport:
    """Full accuracy comparison, including the largest frequent-probability error.

    The probability error is only evaluated over itemsets present in both
    results and carrying a probability on both sides (PDUApriori, for
    instance, does not report probabilities, so the field is ``None``).
    """
    approximate_keys = approximate.itemset_keys()
    exact_keys = exact.itemset_keys()
    common = approximate_keys & exact_keys

    max_error: Optional[float] = None
    for itemset in common:
        approximate_probability = approximate[itemset].frequent_probability
        exact_probability = exact[itemset].frequent_probability
        if approximate_probability is None or exact_probability is None:
            continue
        error = abs(approximate_probability - exact_probability)
        max_error = error if max_error is None else max(max_error, error)

    return AccuracyReport(
        precision=precision(approximate, exact),
        recall=recall(approximate, exact),
        f1=f1_score(approximate, exact),
        n_approximate=len(approximate_keys),
        n_exact=len(exact_keys),
        n_common=len(common),
        false_positives=len(approximate_keys - exact_keys),
        false_negatives=len(exact_keys - approximate_keys),
        max_probability_error=max_error,
    )
