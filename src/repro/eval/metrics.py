"""Accuracy metrics for comparing mining results.

The paper evaluates the approximate probabilistic miners by *precision* and
*recall* against the exact result set (Tables 8 and 9), and argues for the
unification of the two frequent-itemset definitions by showing that the
approximate probabilities converge to the exact ones as the database grows.
These helpers implement exactly those measures over
:class:`~repro.core.results.MiningResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.results import MiningResult

__all__ = ["AccuracyReport", "precision", "recall", "f1_score", "compare_results"]


def precision(approximate: MiningResult, exact: MiningResult) -> float:
    """``|AR ∩ ER| / |AR|`` — the fraction of reported itemsets that are truly frequent.

    Follows the paper's convention of reporting 1.0 when the approximate
    result is empty (no false positives can exist).
    """
    approximate_keys = approximate.itemset_keys()
    if not approximate_keys:
        return 1.0
    exact_keys = exact.itemset_keys()
    return len(approximate_keys & exact_keys) / len(approximate_keys)


def recall(approximate: MiningResult, exact: MiningResult) -> float:
    """``|AR ∩ ER| / |ER|`` — the fraction of truly frequent itemsets that are reported."""
    exact_keys = exact.itemset_keys()
    if not exact_keys:
        return 1.0
    approximate_keys = approximate.itemset_keys()
    return len(approximate_keys & exact_keys) / len(exact_keys)


def f1_score(approximate: MiningResult, exact: MiningResult) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(approximate, exact)
    r = recall(approximate, exact)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


@dataclass(frozen=True)
class AccuracyReport:
    """Precision/recall comparison of an approximate result against an exact one."""

    precision: float
    recall: float
    f1: float
    n_approximate: int
    n_exact: int
    n_common: int
    false_positives: int
    false_negatives: int
    max_probability_error: Optional[float]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dictionary (for CSV reporting)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "n_approximate": float(self.n_approximate),
            "n_exact": float(self.n_exact),
            "n_common": float(self.n_common),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "max_probability_error": (
                self.max_probability_error if self.max_probability_error is not None else float("nan")
            ),
        }


def compare_results(approximate: MiningResult, exact: MiningResult) -> AccuracyReport:
    """Full accuracy comparison, including the largest frequent-probability error.

    The probability error is only evaluated over itemsets present in both
    results and carrying a probability on both sides (PDUApriori, for
    instance, does not report probabilities, so the field is ``None``).
    """
    approximate_keys = approximate.itemset_keys()
    exact_keys = exact.itemset_keys()
    common = approximate_keys & exact_keys

    max_error: Optional[float] = None
    for itemset in common:
        approximate_probability = approximate[itemset].frequent_probability
        exact_probability = exact[itemset].frequent_probability
        if approximate_probability is None or exact_probability is None:
            continue
        error = abs(approximate_probability - exact_probability)
        max_error = error if max_error is None else max(max_error, error)

    return AccuracyReport(
        precision=precision(approximate, exact),
        recall=recall(approximate, exact),
        f1=f1_score(approximate, exact),
        n_approximate=len(approximate_keys),
        n_exact=len(exact_keys),
        n_common=len(common),
        false_positives=len(approximate_keys - exact_keys),
        false_negatives=len(exact_keys - approximate_keys),
        max_probability_error=max_error,
    )
