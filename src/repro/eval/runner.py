"""Parameter-sweep runner turning experiment specs into measurement rows.

The runner is the layer behind every benchmark script: given an
:class:`~repro.eval.scenarios.ExperimentSpec`, it builds the dataset,
dispatches the listed algorithms at every point of the sweep and collects a
:class:`SweepPoint` per (algorithm, value) pair — running time, peak memory
and result size, the uniform measures of the paper.
"""

from __future__ import annotations

import functools
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.miner import mine
from ..core.parallel import resolve_shards, resolve_workers
from ..core.registry import get_algorithm
from ..core.results import MiningResult
from ..core.topk import mine_topk, truncation_baseline
from ..datasets.registry import load_dataset
from ..db.columnar import bitset_scope
from ..db.database import UncertainDatabase, resolve_backend
from ..stream import BATCH_EQUIVALENTS, TransactionStream, make_streaming_miner
from .metrics import compare_results
from .scenarios import ExperimentSpec, StreamingScenario, TopKScenario


def _with_bitset_knob(runner):
    """Give a runner entry point a keyword-only ``bitset`` knob.

    ``bitset=None`` (the default) leaves the process configuration —
    ``REPRO_BITSET`` or the default-on cascade — untouched; ``"on"`` /
    ``"off"`` (or a bool) pins the evaluation path for the duration of the
    run only.  Results are identical either way; the knob exists so the
    benchmark harness can time both paths from one process.
    """

    @functools.wraps(runner)
    def wrapper(*args, bitset=None, **kwargs):
        with bitset_scope(bitset):
            return runner(*args, **kwargs)

    return wrapper

__all__ = [
    "SweepPoint",
    "AccuracyPoint",
    "StreamPoint",
    "TopKPoint",
    "BATCH_EQUIVALENTS",
    "run_experiment",
    "run_accuracy_experiment",
    "run_streaming_scenario",
    "run_topk_scenario",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measurement: one algorithm at one value of the swept parameter."""

    experiment_id: str
    dataset: str
    algorithm: str
    parameter: str
    value: float
    elapsed_seconds: float
    peak_memory_bytes: int
    n_itemsets: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "parameter": self.parameter,
            "value": self.value,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "n_itemsets": self.n_itemsets,
        }


@dataclass(frozen=True)
class AccuracyPoint:
    """Precision/recall of one approximate algorithm at one parameter value."""

    experiment_id: str
    dataset: str
    algorithm: str
    parameter: str
    value: float
    precision: float
    recall: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "parameter": self.parameter,
            "value": self.value,
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass(frozen=True)
class StreamPoint:
    """One slide of a streaming scenario: timing and (optionally) verification."""

    scenario_id: str
    dataset: str
    algorithm: str
    slide: int
    window_fill: int
    n_itemsets: int
    elapsed_seconds: float
    batch_seconds: float = math.nan
    matches_batch: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "slide": self.slide,
            "window_fill": self.window_fill,
            "n_itemsets": self.n_itemsets,
            "elapsed_seconds": self.elapsed_seconds,
            "batch_seconds": self.batch_seconds,
            "matches_batch": "" if self.matches_batch is None else self.matches_batch,
        }


@dataclass(frozen=True)
class TopKPoint:
    """One top-k measurement: one evaluator at one value of k."""

    scenario_id: str
    dataset: str
    algorithm: str
    k: int
    n_itemsets: int
    kth_score: float
    elapsed_seconds: float
    baseline_seconds: float = math.nan
    matches_truncation: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "n_itemsets": self.n_itemsets,
            "kth_score": self.kth_score,
            "elapsed_seconds": self.elapsed_seconds,
            "baseline_seconds": self.baseline_seconds,
            "matches_truncation": (
                "" if self.matches_truncation is None else self.matches_truncation
            ),
        }


def _build_dataset(spec: ExperimentSpec, value: float) -> UncertainDatabase:
    """Build the dataset for one sweep point.

    Dataset-shaping parameters (``n_transactions`` and ``skew``) force a
    rebuild per point; threshold parameters reuse the kwargs untouched.
    """
    kwargs = dict(spec.dataset_kwargs)
    if spec.parameter == "n_transactions":
        kwargs["n_transactions"] = int(value)
    elif spec.parameter == "skew":
        kwargs["skew"] = float(value)
    return load_dataset(spec.dataset, **kwargs)


def _thresholds_for(spec: ExperimentSpec, value: float) -> Dict[str, float]:
    """Resolve the threshold keyword arguments for one sweep point."""
    thresholds: Dict[str, float] = dict(spec.fixed)
    if spec.parameter in ("min_esup", "min_sup", "pft"):
        thresholds[spec.parameter] = float(value)
    return thresholds


def _mine_point(
    database: UncertainDatabase,
    algorithm: str,
    thresholds: Dict[str, float],
    track_memory: bool,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    plan=None,
) -> MiningResult:
    info = get_algorithm(algorithm)
    if resolve_backend(backend) == "columnar":
        # Warm the shared columnar view (and, when sharding is requested,
        # the cached partition) outside the instrumented run so the one-time
        # build cost is not charged to whichever algorithm happens to mine
        # the database first (the sweep compares algorithms).
        database.columnar()
        resolved_shards = resolve_shards(shards, resolve_workers(workers))
        if resolved_shards > 1:
            database.partition(resolved_shards)
    kwargs: Dict[str, float] = {}
    if info.family == "expected":
        kwargs["min_esup"] = thresholds.get("min_esup", thresholds.get("min_sup", 0.5))
    else:
        kwargs["min_sup"] = thresholds.get("min_sup", thresholds.get("min_esup", 0.5))
        kwargs["pft"] = thresholds.get("pft", 0.9)
    return mine(
        database,
        algorithm=algorithm,
        track_memory=track_memory,
        backend=backend,
        workers=workers,
        shards=shards,
        plan=plan,
        **kwargs,
    )


@_with_bitset_knob
def run_experiment(
    spec: ExperimentSpec,
    max_points: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    plan=None,
) -> List[SweepPoint]:
    """Run the full sweep of ``spec`` and return one row per (algorithm, value).

    ``max_points`` truncates the sweep (used by the smoke tests and by
    benchmark quick modes).  ``backend`` selects the probability-evaluation
    engine for every mined point (``"rows"`` / ``"columnar"``; ``None``
    uses the database default, columnar).  ``workers`` / ``shards`` engage
    the partition-parallel engine for every mined point (``None`` consults
    ``REPRO_WORKERS`` / ``REPRO_SHARDS``); results are byte-identical for
    any setting, only the timings change.
    """
    values = list(spec.values)
    if max_points is not None:
        values = values[:max_points]

    points: List[SweepPoint] = []
    shared_database: Optional[UncertainDatabase] = None
    if spec.parameter not in ("n_transactions", "skew"):
        shared_database = _build_dataset(spec, values[0]) if values else None

    for value in values:
        database = shared_database or _build_dataset(spec, value)
        thresholds = _thresholds_for(spec, value)
        for algorithm in spec.algorithms:
            result = _mine_point(
                database,
                algorithm,
                thresholds,
                spec.track_memory,
                backend,
                workers,
                shards,
                plan=plan,
            )
            points.append(
                SweepPoint(
                    experiment_id=spec.experiment_id,
                    dataset=spec.dataset,
                    algorithm=algorithm,
                    parameter=spec.parameter,
                    value=float(value),
                    elapsed_seconds=result.statistics.elapsed_seconds,
                    peak_memory_bytes=result.statistics.peak_memory_bytes,
                    n_itemsets=len(result),
                )
            )
    return points


@_with_bitset_knob
def run_streaming_scenario(
    spec: StreamingScenario,
    verify: bool = False,
    max_slides: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    plan=None,
) -> List[StreamPoint]:
    """Replay ``spec``'s dataset through a sliding window and mine every slide.

    The dataset's transactions become the arrival stream; the first point is
    the initial window fill, subsequent points are slides of ``spec.step``
    arrivals.  With ``verify=True`` every slide is additionally batch-mined
    from scratch over the window contents (``BATCH_EQUIVALENTS`` names the
    static counterpart; ``backend``/``workers``/``shards`` parameterise that
    batch run), recording the batch wall-clock and whether the frequent sets
    agree — the incremental-vs-recompute comparison of the windowed
    benchmark, available on live scenarios.
    """
    database = load_dataset(spec.dataset, **spec.dataset_kwargs)
    stream = TransactionStream.from_database(database)
    miner = make_streaming_miner(spec.algorithm, spec.window, plan=plan, **spec.thresholds)

    slides = spec.max_slides if max_slides is None else min(spec.max_slides, max_slides)
    points: List[StreamPoint] = []
    for slide in range(slides + 1):
        step = spec.window if slide == 0 else spec.step
        result = miner.advance(stream, step)
        if result is None:
            break
        batch_seconds = math.nan
        matches: Optional[bool] = None
        if verify:
            contents = miner.window.contents()
            batch_algorithm = BATCH_EQUIVALENTS[spec.algorithm]
            started = time.perf_counter()
            batch = _mine_point(
                contents,
                batch_algorithm,
                dict(spec.thresholds),
                False,
                backend,
                workers,
                shards,
                plan=plan,
            )
            batch_seconds = time.perf_counter() - started
            matches = {r.itemset.items for r in result} == {
                r.itemset.items for r in batch
            }
        points.append(
            StreamPoint(
                scenario_id=spec.scenario_id,
                dataset=spec.dataset,
                algorithm=spec.algorithm,
                slide=slide,
                window_fill=len(miner.window),
                n_itemsets=len(result),
                elapsed_seconds=result.statistics.elapsed_seconds,
                batch_seconds=batch_seconds,
                matches_batch=matches,
            )
        )
    return points


@_with_bitset_knob
def run_topk_scenario(
    spec: TopKScenario,
    verify: bool = False,
    max_points: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    plan=None,
) -> List[TopKPoint]:
    """Run the k-sweep of ``spec`` and return one row per value of k.

    With ``verify=True`` every point is additionally mined through the
    corresponding *threshold* miner (everything above a floor self-calibrated
    just below the k-th best score), truncated to k, and compared against the
    top-k result — recording the baseline wall-clock and the agreement flag.
    ``max_points`` truncates the k grid (smoke runs).
    """
    database = load_dataset(spec.dataset, **spec.dataset_kwargs)
    if resolve_backend(backend) == "columnar":
        # Warm the shared view (and partition) outside the timed mining, as
        # the sweep runner does for the threshold algorithms.
        database.columnar()
        resolved_shards = resolve_shards(shards, resolve_workers(workers))
        if resolved_shards > 1:
            database.partition(resolved_shards)

    ks = list(spec.ks)
    if max_points is not None:
        ks = ks[:max_points]

    points: List[TopKPoint] = []
    for k in ks:
        result = mine_topk(
            database,
            int(k),
            algorithm=spec.algorithm,
            min_sup=spec.min_sup,
            backend=backend,
            workers=workers,
            shards=shards,
            plan=plan,
        )
        scores = result.scores()
        baseline_seconds = math.nan
        matches: Optional[bool] = None
        if verify:
            started = time.perf_counter()
            baseline = truncation_baseline(
                database,
                int(k),
                spec.algorithm,
                min_sup=spec.min_sup,
                reference=result,
                backend=backend,
                workers=workers,
                shards=shards,
                plan=plan,
            )
            baseline_seconds = time.perf_counter() - started
            matches = result.ranked_keys() == baseline.ranked_keys()
        points.append(
            TopKPoint(
                scenario_id=spec.scenario_id,
                dataset=spec.dataset,
                algorithm=spec.algorithm,
                k=int(k),
                n_itemsets=len(result),
                kth_score=scores[-1] if scores else math.nan,
                elapsed_seconds=result.statistics.elapsed_seconds,
                baseline_seconds=baseline_seconds,
                matches_truncation=matches,
            )
        )
    return points


@_with_bitset_knob
def run_accuracy_experiment(
    spec: ExperimentSpec,
    reference_algorithm: str = "dcb",
    max_points: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    plan=None,
) -> List[AccuracyPoint]:
    """Run an accuracy sweep (Tables 8/9): approximate miners vs an exact reference."""
    values = list(spec.values)
    if max_points is not None:
        values = values[:max_points]

    points: List[AccuracyPoint] = []
    shared_database: Optional[UncertainDatabase] = None
    if spec.parameter not in ("n_transactions", "skew"):
        shared_database = _build_dataset(spec, values[0]) if values else None

    for value in values:
        database = shared_database or _build_dataset(spec, value)
        thresholds = _thresholds_for(spec, value)
        exact = _mine_point(
            database,
            reference_algorithm,
            thresholds,
            False,
            backend,
            workers,
            shards,
            plan=plan,
        )
        for algorithm in spec.algorithms:
            approximate = _mine_point(
                database,
                algorithm,
                thresholds,
                False,
                backend,
                workers,
                shards,
                plan=plan,
            )
            report = compare_results(approximate, exact)
            points.append(
                AccuracyPoint(
                    experiment_id=spec.experiment_id,
                    dataset=spec.dataset,
                    algorithm=algorithm,
                    parameter=spec.parameter,
                    value=float(value),
                    precision=report.precision,
                    recall=report.recall,
                )
            )
    return points
