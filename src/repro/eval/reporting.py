"""Formatting sweep results as text tables, CSV files and summary matrices.

The benchmark scripts print the same rows/series the paper reports:
time/memory curves per algorithm (Figures 4-6), precision/recall tables
(Tables 8-9) and the winner matrix of Table 10.
"""

from __future__ import annotations

import csv
import os
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Sequence, Union

from .runner import AccuracyPoint, SweepPoint

__all__ = [
    "format_table",
    "sweep_to_series",
    "format_sweep_table",
    "format_accuracy_table",
    "write_csv",
    "summary_matrix",
    "format_summary_matrix",
]

Row = Mapping[str, object]
Point = Union[SweepPoint, AccuracyPoint]


def format_table(rows: Sequence[Row], columns: Sequence[str], float_format: str = "{:.4g}") -> str:
    """Render dictionaries as a fixed-width text table."""
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[index]) for line in rendered) for index in range(len(columns))]
    lines = []
    for line_index, cells in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def sweep_to_series(points: Iterable[SweepPoint], measure: str = "elapsed_seconds") -> Dict[str, List[tuple]]:
    """Group sweep points into per-algorithm series ``[(value, measure), ...]``."""
    series: Dict[str, List[tuple]] = defaultdict(list)
    for point in points:
        series[point.algorithm].append((point.value, getattr(point, measure)))
    for values in series.values():
        values.sort()
    return dict(series)


def format_sweep_table(points: Sequence[SweepPoint], measure: str = "elapsed_seconds") -> str:
    """Render a sweep as one row per parameter value, one column per algorithm.

    This is the textual analogue of one figure panel of the paper.
    """
    if not points:
        return "(no data)"
    parameter = points[0].parameter
    algorithms = sorted({point.algorithm for point in points})
    by_value: Dict[float, Dict[str, float]] = defaultdict(dict)
    for point in points:
        by_value[point.value][point.algorithm] = getattr(point, measure)
    rows = []
    for value in sorted(by_value):
        row: Dict[str, object] = {parameter: value}
        row.update(by_value[value])
        rows.append(row)
    return format_table(rows, [parameter] + algorithms)


def format_accuracy_table(points: Sequence[AccuracyPoint]) -> str:
    """Render an accuracy sweep in the layout of the paper's Tables 8 and 9."""
    if not points:
        return "(no data)"
    parameter = points[0].parameter
    algorithms = sorted({point.algorithm for point in points})
    by_value: Dict[float, Dict[str, str]] = defaultdict(dict)
    for point in points:
        by_value[point.value][point.algorithm] = (
            f"P={point.precision:.2f} R={point.recall:.2f}"
        )
    rows = []
    for value in sorted(by_value):
        row: Dict[str, object] = {parameter: value}
        row.update(by_value[value])
        rows.append(row)
    return format_table(rows, [parameter] + algorithms)


def write_csv(points: Sequence[Point], path: Union[str, os.PathLike]) -> None:
    """Write sweep or accuracy points to a CSV file."""
    points = list(points)
    if not points:
        raise ValueError("no points to write")
    rows = [point.as_dict() for point in points]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def summary_matrix(points: Iterable[SweepPoint], measure: str = "elapsed_seconds") -> Dict[str, str]:
    """Winner per experiment: the analogue of the paper's Table 10.

    For every experiment id, the algorithm with the smallest *total* value of
    ``measure`` across the sweep is declared the winner.
    """
    totals: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for point in points:
        totals[point.experiment_id][point.algorithm] += getattr(point, measure)
    winners: Dict[str, str] = {}
    for experiment_id, by_algorithm in totals.items():
        winners[experiment_id] = min(by_algorithm, key=by_algorithm.get)
    return winners


def format_summary_matrix(winners: Mapping[str, str]) -> str:
    """Render the winner matrix as a text table."""
    rows = [
        {"experiment": experiment_id, "winner": winner}
        for experiment_id, winner in sorted(winners.items())
    ]
    return format_table(rows, ["experiment", "winner"])
